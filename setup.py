"""Setuptools shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only enables
legacy editable installs (`pip install -e .`) in fully offline environments
where PEP 660 editable wheels cannot be built.
"""
from setuptools import setup

setup()
