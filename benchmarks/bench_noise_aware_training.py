"""Noise-aware training benchmark: robustness recovery plus training cost.

Runs the EXP 3 smoke configuration (baseline and noise-aware training on
identical data/init/batch order, then the Monte Carlo evaluation sweep) and
asserts the subsystem's load-bearing property:

* **recovery** — the noise-aware model's mean Monte Carlo hardware accuracy
  at the trained sigma beats the baseline model's by at least
  ``REPRO_ROBUST_RECOVERY_FLOOR`` (default 5 percentage points), without
  giving up nominal accuracy;

and reports the wall-clock cost of the two trainings so regressions of the
injected-noise step (K stacked draws per minibatch + periodic hardware
recompilation) show up next to the accuracy numbers.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.experiments.exp3_robust_training import (
    BASELINE,
    robust_label,
    run_exp3,
    train_baseline_model,
    train_noise_aware_model,
)
from repro.experiments.registry import get_experiment
from repro.onn.builder import prepare_feature_sets

#: Required mean-accuracy recovery (fraction) at the trained sigma.
ROBUST_RECOVERY_FLOOR = float(os.environ.get("REPRO_ROBUST_RECOVERY_FLOOR", "0.05"))

#: Maximum admissible loss of nominal (variation-free) accuracy.
NOMINAL_ACCURACY_TOLERANCE = 0.03

#: Wall-clock ceiling for the noise-aware smoke training (seconds); shared
#: CI runners can relax it, same idiom as the other timing floors.
ROBUST_TRAINING_SECONDS_CEILING = float(
    os.environ.get("REPRO_ROBUST_TRAINING_SECONDS_CEILING", "120")
)


def test_noise_aware_training_recovers_accuracy(bench_workers):
    """EXP 3 smoke: recovery floor at the trained sigma, any worker count."""
    config = get_experiment("robust").smoke_config
    if bench_workers:
        config = dataclasses.replace(config, workers=bench_workers)
    result = run_exp3(config)

    sigma = config.train_sigmas[0]
    key = robust_label(sigma)
    baseline_mean = result.mean_accuracy(BASELINE, sigma)
    robust_mean = result.mean_accuracy(key, sigma)
    recovery = robust_mean - baseline_mean
    print(
        f"\nEXP 3 smoke @ sigma {sigma}: baseline {100 * baseline_mean:.2f}%, "
        f"noise-aware {100 * robust_mean:.2f}%, recovery {100 * recovery:+.2f}%"
    )
    assert recovery >= ROBUST_RECOVERY_FLOOR, (
        f"noise-aware hardware accuracy must beat the baseline by "
        f">= {100 * ROBUST_RECOVERY_FLOOR:.0f}% at the trained sigma, "
        f"measured {100 * recovery:+.2f}%"
    )
    assert (
        result.nominal_accuracy[key]
        >= result.nominal_accuracy[BASELINE] - NOMINAL_ACCURACY_TOLERANCE
    ), "hardening must not sacrifice nominal accuracy"


def test_noise_aware_training_cost_report():
    """Wall-clock of noise-aware vs. plain training at smoke scale.

    No floor is asserted (the K-draw estimator plus periodic recompilation
    is legitimately more expensive than the plain loop); the printed ratio
    is the regression-tracking artifact.
    """
    config = get_experiment("robust").smoke_config
    train_x, train_y, _, _ = prepare_feature_sets(config.training)

    start = time.perf_counter()
    train_baseline_model(train_x, train_y, config)
    baseline_seconds = time.perf_counter() - start

    start = time.perf_counter()
    train_noise_aware_model(train_x, train_y, config, config.train_sigmas[0])
    robust_seconds = time.perf_counter() - start

    print(
        f"\ntraining cost: baseline {baseline_seconds:.2f}s, "
        f"noise-aware {robust_seconds:.2f}s "
        f"(x{robust_seconds / max(baseline_seconds, 1e-9):.1f}, "
        f"K={config.draws} draws, recompile every {config.recompile_every} steps)"
    )
    assert robust_seconds < ROBUST_TRAINING_SECONDS_CEILING, (
        "noise-aware smoke training must stay laptop-friendly "
        f"(measured {robust_seconds:.1f}s, ceiling {ROBUST_TRAINING_SECONDS_CEILING:.0f}s)"
    )
