"""Noise-aware training benchmark: robustness recovery plus training speed.

Runs the EXP 3 smoke configuration (baseline and noise-aware training on
identical data/init/batch order, then the Monte Carlo evaluation sweep) and
asserts the subsystem's load-bearing properties:

* **recovery** — the noise-aware model's mean Monte Carlo hardware accuracy
  at the trained sigma beats the baseline model's by at least
  ``REPRO_ROBUST_RECOVERY_FLOOR`` (default 5 percentage points), without
  giving up nominal accuracy;
* **speed** — the optimized noise-aware step (incremental recompilation +
  window-amortized draws + shared workspace) is at least
  ``REPRO_NOISE_STEP_SPEEDUP_FLOOR`` times (default 3x) faster than the
  original per-step-draw, from-scratch-recompile path at the same smoke
  configuration;

and reports the wall-clock cost of the trainings so regressions of the
injected-noise step show up next to the accuracy numbers.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.experiments.exp3_robust_training import (
    BASELINE,
    robust_label,
    run_exp3,
    train_baseline_model,
    train_noise_aware_model,
)
from repro.experiments.registry import get_experiment
from repro.nn.optim import Adam
from repro.nn.trainer import TrainerConfig
from repro.onn.builder import build_software_model, prepare_feature_sets
from repro.training import (
    NoiseAwareTrainer,
    NoiseInjector,
    PerturbationSchedule,
    VectorizedWorkspace,
)
from repro.utils.rng import ensure_rng
from repro.variation.models import UncertaintyModel

#: Required mean-accuracy recovery (fraction) at the trained sigma.
ROBUST_RECOVERY_FLOOR = float(os.environ.get("REPRO_ROBUST_RECOVERY_FLOOR", "0.05"))

#: Maximum admissible loss of nominal (variation-free) accuracy.
NOMINAL_ACCURACY_TOLERANCE = 0.03

#: Wall-clock ceiling for the noise-aware smoke training (seconds); shared
#: CI runners can relax it, same idiom as the other timing floors.
ROBUST_TRAINING_SECONDS_CEILING = float(
    os.environ.get("REPRO_ROBUST_TRAINING_SECONDS_CEILING", "120")
)

#: Required per-step speedup of the optimized noise-aware path over the
#: original (PR 3) path.  The acceptance target is 3x (measured ~3.5-4x on
#: an unloaded core); shared CI runners relax it through the env knob.
NOISE_STEP_SPEEDUP_FLOOR = float(os.environ.get("REPRO_NOISE_STEP_SPEEDUP_FLOOR", "3.0"))

#: Epochs of pure full-sigma injection timed per path in the speed scenario.
#: Long enough that the one-time initial compile (identical for both paths)
#: does not dominate the optimized path's per-step average.
SPEEDUP_TIMING_EPOCHS = 8


def test_noise_aware_training_recovers_accuracy(bench_workers):
    """EXP 3 smoke: recovery floor at the trained sigma, any worker count."""
    config = get_experiment("robust").smoke_config
    if bench_workers:
        config = dataclasses.replace(config, workers=bench_workers)
    result = run_exp3(config)

    sigma = config.train_sigmas[0]
    key = robust_label(sigma)
    baseline_mean = result.mean_accuracy(BASELINE, sigma)
    robust_mean = result.mean_accuracy(key, sigma)
    recovery = robust_mean - baseline_mean
    print(
        f"\nEXP 3 smoke @ sigma {sigma}: baseline {100 * baseline_mean:.2f}%, "
        f"noise-aware {100 * robust_mean:.2f}%, recovery {100 * recovery:+.2f}%"
    )
    assert recovery >= ROBUST_RECOVERY_FLOOR, (
        f"noise-aware hardware accuracy must beat the baseline by "
        f">= {100 * ROBUST_RECOVERY_FLOOR:.0f}% at the trained sigma, "
        f"measured {100 * recovery:+.2f}%"
    )
    assert (
        result.nominal_accuracy[key]
        >= result.nominal_accuracy[BASELINE] - NOMINAL_ACCURACY_TOLERANCE
    ), "hardening must not sacrifice nominal accuracy"


def _timed_noise_aware_fit(config, train_x, train_y, epochs, optimized):
    """Seconds per training step of pure full-sigma noise-aware epochs.

    Both paths share data, initialization and batch order; the constant
    full-sigma schedule makes every step a noise-injected one, so the
    measured ratio is the per-step cost of the injection machinery itself
    (sampling + recompilation + the K-draw forward/backward), not diluted
    by the noise-free epochs of the curriculum.
    """
    training = config.training
    gen = ensure_rng(training.seed)
    model = build_software_model(training.architecture, rng=gen)
    injector = NoiseInjector(
        UncertaintyModel.for_case(config.case, config.train_sigmas[0]),
        draws=config.draws,
        recompile_every=config.recompile_every,
        scheme=training.architecture.scheme,
        rng=config.noise_seed,
        incremental=optimized,
        reuse_draws=optimized,
    )
    trainer = NoiseAwareTrainer(
        model,
        Adam(model.parameters(), lr=training.learning_rate),
        injector,
        schedule=PerturbationSchedule.constant(1.0),
        config=TrainerConfig(epochs=epochs, batch_size=training.batch_size),
        rng=gen,
        workspace=VectorizedWorkspace() if optimized else None,
    )
    start = time.perf_counter()
    trainer.fit(train_x, train_y)
    elapsed = time.perf_counter() - start
    steps = epochs * -(-len(train_x) // training.batch_size)
    return elapsed / steps


def test_noise_aware_step_speedup():
    """Tentpole floor: optimized noise-aware steps >= 3x the PR 3 path.

    The optimized path flips the injector's ``incremental`` (warm-started
    SVD + in-place Clements retune with exact fallback) and ``reuse_draws``
    (one K-draw batch per recompile window) knobs and shares a workspace
    arena — exactly what EXP 3 runs with.  Both paths compute the same
    expected-loss estimator; only the wall clock differs.
    """
    config = get_experiment("robust").smoke_config
    train_x, train_y, _, _ = prepare_feature_sets(config.training)

    # Interleaved warmup (JIT-free Python, but caches/allocator state still
    # matter on shared runners), then one timed fit per path.
    _timed_noise_aware_fit(config, train_x, train_y, 1, optimized=True)
    _timed_noise_aware_fit(config, train_x, train_y, 1, optimized=False)
    baseline_step = _timed_noise_aware_fit(
        config, train_x, train_y, SPEEDUP_TIMING_EPOCHS, optimized=False
    )
    optimized_step = _timed_noise_aware_fit(
        config, train_x, train_y, SPEEDUP_TIMING_EPOCHS, optimized=True
    )
    speedup = baseline_step / optimized_step
    print(
        f"\nnoise-aware step: original {1e3 * baseline_step:.2f}ms, "
        f"optimized {1e3 * optimized_step:.2f}ms ({speedup:.2f}x, "
        f"K={config.draws} draws, recompile every {config.recompile_every} steps)"
    )
    assert speedup >= NOISE_STEP_SPEEDUP_FLOOR, (
        f"optimized noise-aware step must be >= {NOISE_STEP_SPEEDUP_FLOOR:.1f}x faster "
        f"than the original path, measured {speedup:.2f}x"
    )


def test_noise_aware_training_cost_report():
    """Wall-clock of noise-aware vs. plain training at smoke scale.

    No floor is asserted (the K-draw estimator plus periodic recompilation
    is legitimately more expensive than the plain loop); the printed ratio
    is the regression-tracking artifact.
    """
    config = get_experiment("robust").smoke_config
    train_x, train_y, _, _ = prepare_feature_sets(config.training)

    start = time.perf_counter()
    train_baseline_model(train_x, train_y, config)
    baseline_seconds = time.perf_counter() - start

    start = time.perf_counter()
    train_noise_aware_model(train_x, train_y, config, config.train_sigmas[0])
    robust_seconds = time.perf_counter() - start

    print(
        f"\ntraining cost: baseline {baseline_seconds:.2f}s, "
        f"noise-aware {robust_seconds:.2f}s "
        f"(x{robust_seconds / max(baseline_seconds, 1e-9):.1f}, "
        f"K={config.draws} draws, recompile every {config.recompile_every} steps)"
    )
    assert robust_seconds < ROBUST_TRAINING_SECONDS_CEILING, (
        "noise-aware smoke training must stay laptop-friendly "
        f"(measured {robust_seconds:.1f}s, ceiling {ROBUST_TRAINING_SECONDS_CEILING:.0f}s)"
    )
