"""Ablation: independent Gaussian phase noise vs explicit thermal crosstalk.

The paper folds thermal crosstalk into its Gaussian phase-error model.  This
ablation compares the layer-level deviation (RVD) caused by (i) the
deterministic crosstalk model alone, (ii) independent random noise alone and
(iii) both combined, on the compiled unitary meshes of the trained SPNN.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import rvd
from repro.mesh import MeshPerturbation
from repro.utils.serialization import format_table
from repro.variation import ThermalCrosstalkModel, UncertaintyModel, sample_mesh_perturbation

COUPLING = 0.03
SIGMA = 0.02
ITERATIONS = 20


def test_ablation_thermal_crosstalk(benchmark, spnn_task):
    mesh = dict(spnn_task.spnn.unitary_meshes())["U_L0"]
    reference = mesh.ideal_matrix()
    crosstalk = ThermalCrosstalkModel(coupling=COUPLING)
    random_model = UncertaintyModel.phase_only(SIGMA)

    def run():
        deterministic = crosstalk.perturbation(mesh)
        crosstalk_only = rvd(mesh.matrix(deterministic), reference)
        random_only, combined = [], []
        for seed in range(ITERATIONS):
            random_part = sample_mesh_perturbation(mesh, random_model, rng=seed)
            random_only.append(rvd(mesh.matrix(random_part), reference))
            merged = MeshPerturbation(
                delta_theta=deterministic.delta_theta + random_part.delta_theta,
                delta_phi=deterministic.delta_phi + random_part.delta_phi,
            )
            combined.append(rvd(mesh.matrix(merged), reference))
        return {
            "crosstalk only": crosstalk_only,
            "random only": float(np.mean(random_only)),
            "crosstalk + random": float(np.mean(combined)),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"Ablation — thermal crosstalk (coupling {COUPLING}) vs independent phase noise "
        f"(sigma_PhS = {SIGMA}) on U_L0"
    )
    print(format_table(["model", "mean RVD"], [[k, v] for k, v in result.items()]))

    assert result["crosstalk only"] > 0.0
    # Adding systematic crosstalk on top of random noise cannot reduce the
    # average deviation below the crosstalk-free case by a wide margin.
    assert result["crosstalk + random"] > 0.5 * result["random only"]
