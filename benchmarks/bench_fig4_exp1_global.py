"""Benchmark / reproduction harness for Fig. 4 (EXP 1, global uncertainties).

Regenerates the accuracy-vs-sigma series for the three uncertainty cases
(PhS only, BeS only, both) and checks the paper's qualitative shape:
steep collapse with sigma, saturation near random-guess accuracy, and
phase-shifter uncertainties dominating beam-splitter ones.
"""

from __future__ import annotations

from repro.experiments import Exp1Config, run_exp1

SIGMAS = (0.0, 0.01, 0.025, 0.05, 0.075, 0.1, 0.15)

#: Reduced Monte Carlo iteration count (the paper uses 1000 per point).
BENCH_MC_ITERATIONS = 25


def test_fig4_exp1_global_uncertainties(benchmark, spnn_task, bench_workers):
    config = Exp1Config(
        sigmas=SIGMAS, iterations=BENCH_MC_ITERATIONS, seed=7, workers=bench_workers
    )
    result = benchmark.pedantic(run_exp1, args=(config,), kwargs={"task": spnn_task}, rounds=1, iterations=1)
    print()
    print(result.report())

    both = result.mean_accuracy("both")
    phs = result.mean_accuracy("phs")
    bes = result.mean_accuracy("bes")

    # Shape check 1: nominal accuracy is recovered at sigma = 0.
    assert both[0] == result.nominal_accuracy

    # Shape check 2: accuracy collapses as sigma grows and saturates near the
    # 10% random-guess level by the end of the sweep (paper: < 10% at ~0.075).
    assert both[-1] < 0.2
    assert result.saturation_sigma("both", threshold=0.2) is not None

    # Shape check 3: severe loss at sigma = 0.05 (paper: 69.98% loss).
    assert result.loss_at_sigma("both", 0.05) > 0.3

    # Shape check 4: PhS uncertainties hurt more than BeS uncertainties.
    mid = len(SIGMAS) // 2
    assert phs[mid] < bes[mid]
