#!/usr/bin/env python
"""Compare the accumulated ``BENCH_*.json`` perf-trajectory artifacts.

Every PR's :mod:`benchmarks.record` run leaves one labelled artifact at the
repo root (``BENCH_pr4.json``, ``BENCH_pr5.json``, ...).  This tool lines
them up: one row per recorded metric, one column per label, so a perf
regression (or win) across the PR history is visible at a glance.

Usage::

    python benchmarks/trajectory.py                  # repo-root artifacts
    python benchmarks/trajectory.py --dir artifacts  # e.g. CI downloads
    python benchmarks/trajectory.py --json           # machine-readable merge
    python benchmarks/trajectory.py --check          # CI regression gate
    python benchmarks/trajectory.py --plot           # trajectory.png artifact

Artifacts recorded by different PRs cover different scenario sets (the
suite grows); missing cells print as ``-``.

``--check`` turns the table into a regression gate: for every headline
*ratio* metric (speedups and payload reductions — dimensionless, so
comparable across runner generations, unlike raw seconds), the newest
artifact must reach at least ``tolerance x`` the best value any earlier
artifact recorded.  The default tolerance (``REPRO_TRAJECTORY_TOLERANCE``,
0.6) leaves the usual noisy-shared-runner headroom; a genuine perf
regression (a 10x speedup collapsing to 1x) still fails loudly.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Metrics promoted into the comparison table, as (scenario, key) pairs;
#: anything numeric not listed here still lands in the --json merge.
HEADLINE_METRICS: Tuple[Tuple[str, str], ...] = (
    ("noise_aware_step", "speedup"),
    ("layer_recompile", "speedup"),
    ("mc_engine", "speedup"),
    ("plain_training", "seconds"),
    ("shared_network_payload", "reduction"),
    ("stream_payload", "reduction"),
    ("drift_timeline", "renull_speedup"),
    ("device_engine", "seconds"),
    ("mesh_megakernel", "speedup"),
    ("fleet_round_trip", "seconds"),
    ("artifact_cache_hit", "reduction"),
    ("artifact_cache_hit", "stream_floor_headroom"),
    ("adaptive_dispatch", "speedup"),
    ("adaptive_dispatch", "small_shape_speedup"),
    ("weighted_fleet", "speedup"),
)

#: Metric keys the --check gate enforces: dimensionless ratios only.  Raw
#: seconds depend on the runner and are recorded for context, never gated.
RATIO_KEYS = (
    "speedup",
    "reduction",
    "renull_speedup",
    "stream_floor_headroom",
    "small_shape_speedup",
)

#: Absolute floors the newest artifact must clear whenever it records the
#: metric — hard acceptance criteria, independent of earlier artifacts and
#: of the relative tolerance.  The megakernel floor is the PR 7 acceptance
#: bar: the fused sweep must stay at least 2x the looped reference.  The
#: artifact-cache floors are the PR 9 bars: a warm repeat request must ship
#: at least 3x fewer wire bytes than the cold one, and its per-chunk task
#: payload must stay within 2x of the bare StreamSlice recipe (headroom =
#: ``2 * floor / per_chunk`` staying >= 1).
ABSOLUTE_FLOORS: Dict[Tuple[str, str], float] = {
    ("mesh_megakernel", "speedup"): 2.0,
    ("artifact_cache_hit", "reduction"): 3.0,
    ("artifact_cache_hit", "stream_floor_headroom"): 1.0,
    # PR 10 bar: on a skewed 2-worker fleet (one link ~4x slower) the
    # weighted scheduler must beat FIFO-uniform by at least 1.3x.
    ("weighted_fleet", "speedup"): 1.3,
}

#: Parity floors gated at the *run tolerance* rather than a fixed value:
#: these ratios compare calibrated dispatch against the static order on
#: the same run, so 1.0 means "never slower"; the tolerance absorbs timer
#: noise exactly as it does for cross-artifact comparisons.  The PR 10
#: acceptance bar: autotuned kernel choice must not lose to the static
#: order anywhere on the recorded grid, and the small (n=8, batch=1)
#: shape must not pay the fused kernel when the looped one wins.
TOLERANCE_FLOORS: frozenset = frozenset(
    {
        ("adaptive_dispatch", "speedup"),
        ("adaptive_dispatch", "small_shape_speedup"),
    }
)

#: Fraction of the best earlier value the newest artifact must reach.
DEFAULT_TOLERANCE = float(os.environ.get("REPRO_TRAJECTORY_TOLERANCE", "0.6"))


def _label_sort_key(label: str) -> Tuple[int, str]:
    match = re.fullmatch(r"pr(\d+)", label)
    return (int(match.group(1)) if match else sys.maxsize, label)


def load_artifacts(directory: Path) -> Dict[str, dict]:
    """Label -> report for every ``BENCH_*.json`` under ``directory``."""
    artifacts: Dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping {path.name}: {error}", file=sys.stderr)
            continue
        label = report.get("label") or path.stem.replace("BENCH_", "")
        artifacts[label] = report
    return dict(sorted(artifacts.items(), key=lambda item: _label_sort_key(item[0])))


def missing_labels(artifacts: Dict[str, dict]) -> List[str]:
    """PR labels absent from an otherwise contiguous ``prN`` sequence.

    The trajectory is built from one artifact per PR, but not every PR
    records one (PR 8's refactor shipped no benchmark run, so there is no
    ``BENCH_pr8.json``).  A gap is expected history, not an error — the
    comparison simply has fewer columns — but it should be *visible*, or a
    missing upload silently weakens the regression gate's reference set.
    """
    numbers = []
    for label in artifacts:
        match = re.fullmatch(r"pr(\d+)", label)
        if match:
            numbers.append(int(match.group(1)))
    if len(numbers) < 2:
        return []
    present = set(numbers)
    return [
        f"pr{number}"
        for number in range(min(present), max(present) + 1)
        if number not in present
    ]


def metric_rows(artifacts: Dict[str, dict]) -> List[Tuple[str, Dict[str, float]]]:
    """``(metric_name, {label: value})`` rows for the headline metrics."""
    rows = []
    for scenario, key in HEADLINE_METRICS:
        values = {}
        for label, report in artifacts.items():
            value = report.get("scenarios", {}).get(scenario, {}).get(key)
            if isinstance(value, (int, float)):
                values[label] = float(value)
        if values:
            rows.append((f"{scenario}.{key}", values))
    return rows


def format_table(artifacts: Dict[str, dict]) -> str:
    labels = list(artifacts)
    rows = metric_rows(artifacts)
    header = ["metric"] + labels
    table = [header, ["-" * len(cell) for cell in header]]
    for name, values in rows:
        table.append(
            [name] + [f"{values[label]:.2f}" if label in values else "-" for label in labels]
        )
    widths = [max(len(row[col]) for row in table) for col in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in table
    )


def check_regressions(
    artifacts: Dict[str, dict], tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regression findings for the newest artifact, empty when it passes.

    Gates only the dimensionless :data:`RATIO_KEYS` metrics: the newest
    artifact (highest PR label) must reach ``tolerance`` times the best
    value any earlier artifact recorded for the same metric.  Metrics the
    newest artifact does not record are skipped (the scenario suite grows
    over time), as are metrics with no earlier reference.  On top of the
    relative gate, any metric listed in :data:`ABSOLUTE_FLOORS` that the
    newest artifact records must clear its absolute floor outright.
    """
    labels = list(artifacts)
    if not labels:
        return []
    newest = labels[-1]
    failures = []
    for name, values in metric_rows(artifacts):
        if name.rsplit(".", 1)[-1] not in RATIO_KEYS:
            continue
        if newest not in values:
            continue
        scenario, key = name.rsplit(".", 1)
        absolute = ABSOLUTE_FLOORS.get((scenario, key))
        if absolute is not None and values[newest] < absolute:
            failures.append(
                f"{name}: {newest} measured {values[newest]:.2f}, below the "
                f"absolute floor {absolute:.2f}"
            )
        if (scenario, key) in TOLERANCE_FLOORS and values[newest] < tolerance:
            failures.append(
                f"{name}: {newest} measured {values[newest]:.2f}, below the "
                f"parity floor {tolerance:.2f} (calibrated dispatch must not "
                f"lose to the static order beyond the run tolerance)"
            )
        earlier = [value for label, value in values.items() if label != newest]
        if not earlier:
            continue
        reference = max(earlier)
        floor = tolerance * reference
        if values[newest] < floor:
            failures.append(
                f"{name}: {newest} measured {values[newest]:.2f}, below "
                f"{floor:.2f} ({tolerance:.0%} of the best earlier {reference:.2f})"
            )
    return failures


def plot_trajectory(artifacts: Dict[str, dict], output: Path) -> bool:
    """Write the headline-ratio trajectory as a PNG; False without matplotlib.

    One line per ratio metric, one x-tick per artifact label, log-scaled y
    (the ratios span 1x..25x).  Matplotlib is an optional dependency — CI
    runners without it skip the artifact instead of failing the run.
    """
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; skipping --plot", file=sys.stderr)
        return False

    labels = list(artifacts)
    fig, axis = plt.subplots(figsize=(8, 4.5))
    for name, values in metric_rows(artifacts):
        if name.rsplit(".", 1)[-1] not in RATIO_KEYS:
            continue
        xs = [index for index, label in enumerate(labels) if label in values]
        axis.plot(xs, [values[labels[x]] for x in xs], marker="o", label=name)
    axis.set_xticks(range(len(labels)))
    axis.set_xticklabels(labels)
    axis.set_yscale("log")
    axis.set_ylabel("ratio (x, log scale)")
    axis.set_title("perf trajectory: headline ratios per BENCH artifact")
    axis.grid(True, which="both", alpha=0.3)
    axis.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(output, dpi=120)
    plt.close(fig)
    print(f"wrote {output}")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the BENCH_*.json artifacts (default: repo root)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the merged artifacts as JSON instead of a table",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "regression gate: fail (exit 1) when the newest artifact's ratio "
            "metrics fall below the tolerance of the best earlier artifact"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=(
            "fraction of the best earlier ratio the newest artifact must reach "
            "(default: REPRO_TRAJECTORY_TOLERANCE or 0.6)"
        ),
    )
    parser.add_argument(
        "--plot",
        nargs="?",
        type=Path,
        const=REPO_ROOT / "trajectory.png",
        default=None,
        metavar="PNG",
        help=(
            "write the headline-ratio trajectory as a PNG (default path: "
            "trajectory.png at the repo root); skipped gracefully when "
            "matplotlib is not installed"
        ),
    )
    args = parser.parse_args(argv)

    artifacts = load_artifacts(args.dir)
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {args.dir}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(artifacts, indent=2))
        return 0
    if args.plot is not None:
        plot_trajectory(artifacts, args.plot)
    gaps = missing_labels(artifacts)
    if gaps:
        print(
            f"warning: no BENCH artifact for {', '.join(gaps)} — that PR "
            f"recorded no benchmark run; comparing across the gap",
            file=sys.stderr,
        )
    print(f"perf trajectory across {len(artifacts)} artifact(s): {', '.join(artifacts)}")
    print()
    print(format_table(artifacts))
    if args.check:
        if not 0.0 < args.tolerance <= 1.0:
            print(f"tolerance must be in (0, 1], got {args.tolerance}", file=sys.stderr)
            return 2
        failures = check_regressions(artifacts, args.tolerance)
        print()
        if failures:
            print("perf regression gate FAILED:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        newest = list(artifacts)[-1]
        print(
            f"perf regression gate passed: {newest} holds >= {args.tolerance:.0%} "
            f"of every earlier headline ratio"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
