#!/usr/bin/env python
"""Compare the accumulated ``BENCH_*.json`` perf-trajectory artifacts.

Every PR's :mod:`benchmarks.record` run leaves one labelled artifact at the
repo root (``BENCH_pr4.json``, ``BENCH_pr5.json``, ...).  This tool lines
them up: one row per recorded metric, one column per label, so a perf
regression (or win) across the PR history is visible at a glance.

Usage::

    python benchmarks/trajectory.py                  # repo-root artifacts
    python benchmarks/trajectory.py --dir artifacts  # e.g. CI downloads
    python benchmarks/trajectory.py --json           # machine-readable merge
    python benchmarks/trajectory.py --check          # CI regression gate

Artifacts recorded by different PRs cover different scenario sets (the
suite grows); missing cells print as ``-``.

``--check`` turns the table into a regression gate: for every headline
*ratio* metric (speedups and payload reductions — dimensionless, so
comparable across runner generations, unlike raw seconds), the newest
artifact must reach at least ``tolerance x`` the best value any earlier
artifact recorded.  The default tolerance (``REPRO_TRAJECTORY_TOLERANCE``,
0.6) leaves the usual noisy-shared-runner headroom; a genuine perf
regression (a 10x speedup collapsing to 1x) still fails loudly.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Metrics promoted into the comparison table, as (scenario, key) pairs;
#: anything numeric not listed here still lands in the --json merge.
HEADLINE_METRICS: Tuple[Tuple[str, str], ...] = (
    ("noise_aware_step", "speedup"),
    ("layer_recompile", "speedup"),
    ("mc_engine", "speedup"),
    ("plain_training", "seconds"),
    ("shared_network_payload", "reduction"),
    ("stream_payload", "reduction"),
    ("drift_timeline", "renull_speedup"),
    ("device_engine", "seconds"),
)

#: Metric keys the --check gate enforces: dimensionless ratios only.  Raw
#: seconds depend on the runner and are recorded for context, never gated.
RATIO_KEYS = ("speedup", "reduction", "renull_speedup")

#: Fraction of the best earlier value the newest artifact must reach.
DEFAULT_TOLERANCE = float(os.environ.get("REPRO_TRAJECTORY_TOLERANCE", "0.6"))


def _label_sort_key(label: str) -> Tuple[int, str]:
    match = re.fullmatch(r"pr(\d+)", label)
    return (int(match.group(1)) if match else sys.maxsize, label)


def load_artifacts(directory: Path) -> Dict[str, dict]:
    """Label -> report for every ``BENCH_*.json`` under ``directory``."""
    artifacts: Dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping {path.name}: {error}", file=sys.stderr)
            continue
        label = report.get("label") or path.stem.replace("BENCH_", "")
        artifacts[label] = report
    return dict(sorted(artifacts.items(), key=lambda item: _label_sort_key(item[0])))


def metric_rows(artifacts: Dict[str, dict]) -> List[Tuple[str, Dict[str, float]]]:
    """``(metric_name, {label: value})`` rows for the headline metrics."""
    rows = []
    for scenario, key in HEADLINE_METRICS:
        values = {}
        for label, report in artifacts.items():
            value = report.get("scenarios", {}).get(scenario, {}).get(key)
            if isinstance(value, (int, float)):
                values[label] = float(value)
        if values:
            rows.append((f"{scenario}.{key}", values))
    return rows


def format_table(artifacts: Dict[str, dict]) -> str:
    labels = list(artifacts)
    rows = metric_rows(artifacts)
    header = ["metric"] + labels
    table = [header, ["-" * len(cell) for cell in header]]
    for name, values in rows:
        table.append(
            [name] + [f"{values[label]:.2f}" if label in values else "-" for label in labels]
        )
    widths = [max(len(row[col]) for row in table) for col in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in table
    )


def check_regressions(
    artifacts: Dict[str, dict], tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regression findings for the newest artifact, empty when it passes.

    Gates only the dimensionless :data:`RATIO_KEYS` metrics: the newest
    artifact (highest PR label) must reach ``tolerance`` times the best
    value any earlier artifact recorded for the same metric.  Metrics the
    newest artifact does not record are skipped (the scenario suite grows
    over time), as are metrics with no earlier reference.
    """
    labels = list(artifacts)
    if len(labels) < 2:
        return []
    newest = labels[-1]
    failures = []
    for name, values in metric_rows(artifacts):
        if name.rsplit(".", 1)[-1] not in RATIO_KEYS:
            continue
        if newest not in values:
            continue
        earlier = [value for label, value in values.items() if label != newest]
        if not earlier:
            continue
        reference = max(earlier)
        floor = tolerance * reference
        if values[newest] < floor:
            failures.append(
                f"{name}: {newest} measured {values[newest]:.2f}, below "
                f"{floor:.2f} ({tolerance:.0%} of the best earlier {reference:.2f})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the BENCH_*.json artifacts (default: repo root)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the merged artifacts as JSON instead of a table",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "regression gate: fail (exit 1) when the newest artifact's ratio "
            "metrics fall below the tolerance of the best earlier artifact"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=(
            "fraction of the best earlier ratio the newest artifact must reach "
            "(default: REPRO_TRAJECTORY_TOLERANCE or 0.6)"
        ),
    )
    args = parser.parse_args(argv)

    artifacts = load_artifacts(args.dir)
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {args.dir}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(artifacts, indent=2))
        return 0
    print(f"perf trajectory across {len(artifacts)} artifact(s): {', '.join(artifacts)}")
    print()
    print(format_table(artifacts))
    if args.check:
        if not 0.0 < args.tolerance <= 1.0:
            print(f"tolerance must be in (0, 1], got {args.tolerance}", file=sys.stderr)
            return 2
        failures = check_regressions(artifacts, args.tolerance)
        print()
        if failures:
            print("perf regression gate FAILED:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        newest = list(artifacts)[-1]
        print(
            f"perf regression gate passed: {newest} holds >= {args.tolerance:.0%} "
            f"of every earlier headline ratio"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
