"""Ablation: Monte Carlo iteration count vs margin of error.

The paper justifies 1000 iterations with a 95% confidence margin of error of
6.27% on the mean inferencing accuracy.  This bench measures the empirical
margin of error of the accuracy estimate at several iteration counts and
checks it shrinks as 1/sqrt(N), reproducing that methodological argument.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import margin_of_error, worst_case_margin_of_error
from repro.onn import monte_carlo_accuracy
from repro.utils.serialization import format_table
from repro.variation import UncertaintyModel

ITERATION_COUNTS = (10, 40, 160)
SIGMA = 0.025


def test_ablation_mc_iterations(benchmark, spnn_task):
    model = UncertaintyModel.both(SIGMA)
    features = spnn_task.test_features[:200]
    labels = spnn_task.test_labels[:200]

    def run():
        margins = {}
        for count in ITERATION_COUNTS:
            samples = monte_carlo_accuracy(
                spnn_task.spnn, features, labels, model, iterations=count, rng=0
            )
            margins[count] = margin_of_error(samples)
        return margins

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"Ablation — empirical 95% margin of error of the mean accuracy (sigma = {SIGMA})")
    rows = [
        [count, moe, worst_case_margin_of_error(count)]
        for count, moe in result.items()
    ]
    print(format_table(["iterations", "empirical MoE", "worst-case MoE"], rows))
    print(
        "paper: 1000 iterations -> maximum margin of error 6.27% "
        f"(worst-case model here: {2 * 100 * worst_case_margin_of_error(1000):.2f}% full width)"
    )

    # Margin of error must shrink with the iteration count (~1/sqrt(N)).
    assert result[ITERATION_COUNTS[-1]] < result[ITERATION_COUNTS[0]]
