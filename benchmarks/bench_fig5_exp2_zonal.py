"""Benchmark / reproduction harness for Fig. 5 (EXP 2, zonal perturbations).

Regenerates accuracy-loss heatmaps under 2x2-MZI zonal perturbations
(zone sigma 0.1, background 0.05, Sigma stages error-free).  The full paper
run covers all six unitary multipliers; the benchmark covers the first and
last linear layers' multipliers to bound runtime — extend ``MESH_NAMES`` to
all six names for the full figure.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import Exp2Config, run_exp2

#: Unitary multipliers benchmarked by default (subset of the six in Fig. 5).
MESH_NAMES = ["U_L0", "U_L2"]

#: Reduced Monte Carlo iteration count (the paper uses 1000 per zone).
ITERATIONS = 8


def test_fig5_exp2_zonal_perturbations(benchmark, spnn_task, bench_workers):
    config = Exp2Config(
        iterations=ITERATIONS, zone_sigma=0.10, background_sigma=0.05, seed=11,
        workers=bench_workers,
    )
    result = benchmark.pedantic(
        run_exp2,
        args=(config,),
        kwargs={"task": spnn_task, "mesh_names": MESH_NAMES},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.report())
    for name, heatmap in result.heatmaps.items():
        print(f"\n{name} accuracy-loss heatmap [%] (rows x cols of 2x2-MZI zones):")
        with np.printoptions(precision=1, suppress=True):
            print(100.0 * heatmap.accuracy_loss)

    # Shape check 1: every zonal loss stays in the neighbourhood of the
    # global-uncertainty loss (the paper's 69.98% reference line).
    for heatmap in result.heatmaps.values():
        finite = heatmap.finite_losses()
        assert finite.size > 0
        assert np.all(np.abs(finite - result.global_loss) < 0.4)

    # Shape check 2: the impact is non-uniform across zones.
    assert max(h.spread for h in result.heatmaps.values()) > 0.0
