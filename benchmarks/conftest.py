"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every figure / headline number of the paper at a
reduced-but-representative scale (fewer Monte Carlo iterations and a smaller
synthetic test set than the paper's 1000 x 10000), so the whole suite runs
in minutes on a laptop.  The experiment configs are the single place where
the scale is set; crank them up to paper scale by editing the constants
below or by running the CLI without ``--smoke``.
"""

from __future__ import annotations

import os

import pytest

from repro.onn import SPNNArchitecture, SPNNTrainingConfig, build_trained_spnn

#: Monte Carlo iterations used by the benchmark-scale experiments.
BENCH_MC_ITERATIONS = 25

#: Synthetic test-set size used by the benchmark-scale experiments.
BENCH_NUM_TEST = 400

@pytest.fixture(scope="session")
def bench_workers():
    """Worker processes for the experiment-level benchmarks (None = serial).

    Samples are bit-identical at every worker count, so this knob only
    changes wall-clock time: ``REPRO_BENCH_WORKERS=4`` shards every
    experiment benchmark's Monte Carlo runs over 4 processes.
    """
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None


@pytest.fixture(scope="session")
def spnn_task():
    """Trained + compiled paper-architecture SPNN shared by all benchmarks."""
    config = SPNNTrainingConfig(
        architecture=SPNNArchitecture(layer_dims=(16, 16, 16, 10)),
        num_train=1500,
        num_test=BENCH_NUM_TEST,
        epochs=40,
        seed=2021,
    )
    return build_trained_spnn(config)
