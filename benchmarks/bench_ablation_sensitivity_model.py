"""Ablation: first-order sensitivity model (Eq. 4) vs exact re-evaluation.

Fig. 2 uses the first-order expansion of the MZI transfer matrix.  This
ablation quantifies how far the linearized deviation is from the exact one
over the (theta, phi) grid, at the paper's K = 0.05 and at a larger K where
the linearization visibly degrades.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import first_order_model_error
from repro.utils.serialization import format_table


def test_ablation_first_order_vs_exact(benchmark):
    def run():
        return {
            "K=0.02": first_order_model_error(k=0.02, grid_points=48),
            "K=0.05": first_order_model_error(k=0.05, grid_points=48),
            "K=0.20": first_order_model_error(k=0.20, grid_points=48),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation — max |first-order - exact| relative deviation per element")
    rows = [[k] + [v[label] for label in ("T11", "T12", "T21", "T22")] for k, v in result.items()]
    print(format_table(["K", "T11", "T12", "T21", "T22"], rows))

    def worst(errors):
        finite = [v for v in errors.values() if np.isfinite(v)]
        return max(finite)

    # The linearization error must grow with K (it is a first-order model).
    assert worst(result["K=0.02"]) < worst(result["K=0.20"])
