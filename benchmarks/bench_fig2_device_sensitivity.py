"""Benchmark / reproduction harness for Fig. 2 (device-level sensitivity).

Regenerates the four |dT_ij|/|T_ij| surfaces over the (theta, phi) grid with
K = 0.05 and reports the per-element peaks plus the paper's qualitative
claim (deviation grows with the tuned angles).
"""

from __future__ import annotations

from repro.analysis import ELEMENT_LABELS
from repro.experiments import Fig2Config, run_fig2


def test_fig2_device_sensitivity(benchmark):
    result = benchmark.pedantic(
        run_fig2, args=(Fig2Config(grid_points=64, k=0.05),), rounds=1, iterations=1
    )
    print()
    print(result.report())
    # Paper shape checks: every element's sensitivity grows with (theta, phi).
    assert all(result.monotonic[label] for label in ELEMENT_LABELS)
    assert all(result.peak_deviation[label] > 0 for label in ELEMENT_LABELS)


def test_fig2_grid_scaling(benchmark):
    """Micro-benchmark: sensitivity-map computation cost at a finer grid."""
    result = benchmark(run_fig2, Fig2Config(grid_points=128, k=0.05))
    assert result.sensitivity.relative_deviation.shape == (128, 128, 2, 2)
