"""Parallel-scaling benchmark: the Monte Carlo engine across worker processes.

Measures the paper-scale scenario (B=1000 uncertainty realizations of the
16-16-16-10 SPNN) on the serial backend and on the multiprocess backend
with 2 and 4 workers, asserting two things:

* **bit-identity** — the sharded samples equal the serial samples exactly,
  for every worker count (the execution layer's load-bearing guarantee);
* **scaling** — with 4 workers the engine-dominated scenario (64-sample
  evaluation subset, so per-iteration mesh/forward cost dominates) runs at
  least ``REPRO_PARALLEL_SPEEDUP_FLOOR`` (default 1.6x) faster than serial.

The scaling assertion only makes sense where 4 CPUs actually exist, so it
is gated on the process's CPU affinity; single/dual-core boxes (and
severely throttled CI runners) still run the bit-identity checks and
report the measured ratios.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
import pytest

from repro.execution import available_workers
from repro.execution.shared import SharedNetwork, shared_memory_available
from repro.observability import Stopwatch, active, active_collector, observe
from repro.onn import monte_carlo_accuracy
from repro.onn.inference import NetworkAccuracyBatchTrial
from repro.utils.rng import StreamSlice, spawn_rngs
from repro.variation import UncertaintyModel

#: Monte Carlo iterations of the paper's experiments (the acceptance scenario).
PAPER_MC_ITERATIONS = int(os.environ.get("REPRO_PARALLEL_BENCH_ITERATIONS", "1000"))

#: Required 4-worker speedup on a machine with >= 4 CPUs.  1.6x leaves
#: headroom under the ~2.5x a quiet 4-core box measures; CI smoke jobs on
#: shared runners can override it down if wall-clock ratios get noisy.
PARALLEL_SPEEDUP_FLOOR = float(os.environ.get("REPRO_PARALLEL_SPEEDUP_FLOOR", "1.6"))

#: Worker counts swept by the scaling scenario.
WORKER_COUNTS = (2, 4)


def _engine_dominated_scenario(spnn_task):
    """B=1000 on a 64-sample evaluation subset: engine cost dominates."""
    return dict(
        spnn=spnn_task.spnn,
        features=spnn_task.test_features[:64],
        labels=spnn_task.test_labels[:64],
        model=UncertaintyModel.both(0.05),
        iterations=PAPER_MC_ITERATIONS,
        rng=7,
    )


def test_multiprocess_smoke_bit_identical(spnn_task):
    """Fast guard: a small sharded run equals serial exactly (2 workers)."""
    kwargs = {**_engine_dominated_scenario(spnn_task), "iterations": 50}
    serial = monte_carlo_accuracy(**kwargs)
    sharded = monte_carlo_accuracy(workers=2, **kwargs)
    assert np.array_equal(serial, sharded)


def measure_shared_network_payload(spnn_task) -> dict:
    """Per-chunk task payload bytes: compiled SPNN vs shared-memory handle.

    The multiprocess backend pickles the trial into the workers for every
    chunk; hosting the compiled mesh parameters in shared memory
    (:class:`repro.execution.shared.SharedNetwork`) shrinks that payload to
    segment names plus the perturbation-draw generators.  Returns the two
    sizes and their ratio (also recorded in ``BENCH_pr5.json``).
    """
    scenario = _engine_dominated_scenario(spnn_task)
    spnn = scenario["spnn"]
    features, labels = scenario["features"], scenario["labels"]
    model = scenario["model"]
    full_trial = NetworkAccuracyBatchTrial(
        spnn=spnn, features=features, labels=labels, model=model
    )
    full_bytes = len(pickle.dumps(full_trial))
    handle = SharedNetwork.create(spnn)
    try:
        shared_trial = NetworkAccuracyBatchTrial(
            spnn=handle, features=features, labels=labels, model=model
        )
        shared_bytes = len(pickle.dumps(shared_trial))
    finally:
        handle.close()
        handle.unlink()
    return {
        "full_trial_bytes": full_bytes,
        "shared_trial_bytes": shared_bytes,
        "reduction": full_bytes / shared_bytes,
    }


@pytest.mark.skipif(not shared_memory_available(), reason="no shared memory here")
def test_shared_network_payload_reduction(spnn_task):
    """Hosting the mesh parameters must shrink the per-chunk payload a lot.

    On the paper architecture the pickled compiled SPNN is dominated by the
    six tuned meshes (687 MZIs of structural bookkeeping); the shared
    handle carries segment names instead.  A 5x floor leaves generous slack
    under the >20x a paper-size network measures — shrinking below it means
    the handle started dragging compiled state along again.
    """
    payload = measure_shared_network_payload(spnn_task)
    print(
        f"\nper-chunk payload: full {payload['full_trial_bytes']} B, "
        f"shared {payload['shared_trial_bytes']} B "
        f"({payload['reduction']:.1f}x smaller)"
    )
    assert payload["reduction"] >= 5.0


def measure_stream_payload(iterations: int = 250) -> dict:
    """Per-chunk stream payload bytes: pickled generators vs seed recipe.

    A chunk of ``spawn_rngs`` children is fully determined by its parent
    seed plus the spawn-index range, so the scheduler ships the compact
    :class:`repro.utils.rng.StreamSlice` ``(seed, count)`` recipe instead
    of one pickled generator per realization.  Returns both sizes and
    their ratio (also recorded in ``BENCH_pr6.json``).
    """
    generators = tuple(spawn_rngs(7, iterations))
    generator_bytes = len(pickle.dumps(generators))
    compact = StreamSlice.from_generators(generators)
    assert compact is not None, "freshly spawned children must compress"
    compact_bytes = len(pickle.dumps(compact))
    return {
        "iterations": iterations,
        "generator_payload_bytes": generator_bytes,
        "stream_slice_bytes": compact_bytes,
        "reduction": generator_bytes / compact_bytes,
    }


def test_stream_payload_compression():
    """The seed recipe must stay O(100) bytes per chunk and rebuild exactly.

    250 pickled PCG64 generators weigh ~19 KB; the recipe names the same
    seed material in a few hundred bytes no matter how many realizations
    the chunk holds.  A 20x floor (and an absolute 1 KB cap) means the
    compression broke if either regresses.
    """
    payload = measure_stream_payload()
    generators = spawn_rngs(7, payload["iterations"])
    rebuilt = StreamSlice.from_generators(generators).generators()
    assert all(
        original.bit_generator.state == copy.bit_generator.state
        for original, copy in zip(generators, rebuilt)
    ), "rebuilt streams must be bit-identical to the spawned children"
    print(
        f"\nper-chunk streams (B={payload['iterations']}): "
        f"generators {payload['generator_payload_bytes']} B, "
        f"recipe {payload['stream_slice_bytes']} B "
        f"({payload['reduction']:.1f}x smaller)"
    )
    assert payload["stream_slice_bytes"] <= 1024
    assert payload["reduction"] >= 20.0


#: Ceiling on the disabled-instrumentation overhead (fraction of engine time).
NULL_OVERHEAD_CEILING = float(os.environ.get("REPRO_NULL_OVERHEAD_CEILING", "0.02"))


def measure_null_overhead(spnn_task) -> dict:
    """Cost of the *disabled* observability path on the acceptance workload.

    A direct traced-vs-untraced A/B measures noise, not overhead — the
    disabled path is a few hundred no-op calls against seconds of mesh
    math.  So measure it deterministically instead:

    1. one traced run counts exactly how many instrumented-seam visits the
       workload performs (spans opened, ``map_chunks`` reads, frames that
       would not be built, kernel-dispatch collector reads) — counts are
       deterministic for a deterministic workload;
    2. a microbenchmark prices one disabled-seam visit (module-global read
       + no-op span context + collector read, attr kwargs included);
    3. the product, against the measured untraced engine time, is the
       structural overhead bound.
    """
    kwargs = {**_engine_dominated_scenario(spnn_task), "iterations": 50}
    with observe() as recorder:
        traced = monte_carlo_accuracy(**kwargs)
    dispatch_calls = recorder.dispatches.total_calls + sum(
        entry.calls for frame in recorder.frames for entry in frame.dispatches
    )
    # Seam visits of the disabled path: every span site, every map_chunks
    # enablement check (one per frame's chunk), every sweep-dispatch
    # collector read.
    seam_visits = len(recorder.spans) + len(recorder.frames) + dispatch_calls

    repeats = 50_000
    null_recorder = active()  # the NullRecorder — observe() has exited
    assert not null_recorder.enabled
    watch = Stopwatch()
    for _ in range(repeats):
        with active().span("bench", label="mc", iterations=50):
            pass
        active_collector()
    per_visit_seconds = watch.seconds / repeats

    engine_seconds, untraced = _best_of(2, lambda: monte_carlo_accuracy(**kwargs))
    assert np.array_equal(traced, untraced), "tracing must not change samples"
    overhead_seconds = seam_visits * per_visit_seconds
    return {
        "seam_visits": seam_visits,
        "per_visit_seconds": per_visit_seconds,
        "overhead_seconds": overhead_seconds,
        "engine_seconds": engine_seconds,
        "overhead_fraction": overhead_seconds / engine_seconds,
    }


def test_null_recorder_overhead_within_ceiling(spnn_task):
    """Disabled observability must cost < 2% of engine time, structurally."""
    measured = measure_null_overhead(spnn_task)
    print(
        f"\nnull-path overhead: {measured['seam_visits']} seam visits x "
        f"{1e9 * measured['per_visit_seconds']:.0f} ns = "
        f"{1e3 * measured['overhead_seconds']:.3f} ms over "
        f"{measured['engine_seconds']:.2f}s engine time "
        f"({100 * measured['overhead_fraction']:.4f}%)"
    )
    assert measured["overhead_fraction"] <= NULL_OVERHEAD_CEILING


def _best_of(repeats, fn):
    """Minimum wall clock over ``repeats`` runs (de-noises shared runners)."""
    best_seconds, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - start
        best_seconds = seconds if best_seconds is None else min(best_seconds, seconds)
    return best_seconds, result


def test_parallel_scaling_wall_clock(spnn_task):
    """Acceptance scenario: serial vs 2- and 4-worker wall clock at B=1000."""
    kwargs = _engine_dominated_scenario(spnn_task)

    # Warm caches / lazy BLAS initialisation outside the measured windows.
    monte_carlo_accuracy(**{**kwargs, "iterations": 20})

    serial_seconds, serial = _best_of(2, lambda: monte_carlo_accuracy(**kwargs))

    speedups = {}
    for workers in WORKER_COUNTS:
        seconds, sharded = _best_of(
            2, lambda workers=workers: monte_carlo_accuracy(workers=workers, **kwargs)
        )
        assert np.array_equal(serial, sharded), (
            f"{workers}-worker samples must be bit-identical to serial"
        )
        speedups[workers] = serial_seconds / seconds
        print(
            f"\nMC B={PAPER_MC_ITERATIONS}: serial {serial_seconds:.2f}s, "
            f"{workers} workers {seconds:.2f}s, speedup {speedups[workers]:.2f}x"
        )

    cpus = available_workers()
    if cpus < max(WORKER_COUNTS):
        pytest.skip(
            f"only {cpus} CPU(s) available — bit-identity verified, "
            f"scaling floor needs >= {max(WORKER_COUNTS)} cores"
        )
    assert speedups[4] >= PARALLEL_SPEEDUP_FLOOR, (
        f"expected >= {PARALLEL_SPEEDUP_FLOOR:.1f}x speedup with 4 workers, "
        f"measured {speedups[4]:.2f}x"
    )
