"""Benchmark / reproduction harness for Fig. 3 (layer-level RVD).

Regenerates the average-RVD-per-MZI series for random 5x5 unitaries with
sigma_PhS = sigma_BeS = 0.05, one perturbed MZI at a time.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import Fig3Config, run_fig3

#: Reduced Monte Carlo iteration count (the paper uses 1000).
ITERATIONS = 100


def test_fig3_layer_rvd(benchmark):
    config = Fig3Config(iterations=ITERATIONS, num_matrices=4, sigma=0.05, seed=42)
    result = benchmark.pedantic(run_fig3, args=(config,), rounds=1, iterations=1)
    print()
    print(result.report())

    table = result.rvd_table()
    assert table.shape == (4, 10)
    # Paper shape checks: impact differs across MZIs of the same unitary and
    # the per-MZI pattern differs across unitaries.
    assert np.all(result.spread_per_matrix() > 0.1)
    patterns = [np.argsort(row) for row in table]
    assert any(not np.array_equal(patterns[0], p) for p in patterns[1:])
