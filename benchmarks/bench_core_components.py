"""Micro-benchmarks of the core computational kernels.

These are plain performance benchmarks (not paper reproductions): the
Clements decomposition of a 16x16 unitary, perturbed mesh evaluation
(single and batched), and the Monte Carlo accuracy engine of the full SPNN
in both its looped and vectorized forms — the operations every experiment
in the paper loops over.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.mesh import MZIMesh, clements_decompose
from repro.onn import monte_carlo_accuracy
from repro.utils import random_unitary
from repro.utils.rng import spawn_rngs
from repro.variation import (
    UncertaintyModel,
    sample_mesh_perturbation,
    sample_mesh_perturbation_batch,
    sample_network_perturbation,
)

#: Monte Carlo iterations of the paper's experiments (and of the speedup scenario).
PAPER_MC_ITERATIONS = 1000

#: Required batched-vs-looped speedup.  The acceptance target is 5x (what a
#: quiet development machine measures with ~40% margin); CI smoke jobs on
#: shared runners override this down (wall-clock ratios are noisy there)
#: so the assertion stays a regression guard without flaking the pipeline.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_SPEEDUP_FLOOR", "5.0"))


def test_clements_decompose_16(benchmark):
    unitary = random_unitary(16, rng=0)
    decomposition = benchmark(clements_decompose, unitary)
    assert decomposition.num_mzis == 120


def test_perturbed_mesh_matrix_16(benchmark):
    mesh = MZIMesh.from_unitary(random_unitary(16, rng=1))
    model = UncertaintyModel.both(0.05)
    perturbation = sample_mesh_perturbation(mesh, model, rng=2)
    matrix = benchmark(mesh.matrix, perturbation)
    assert matrix.shape == (16, 16)


def test_spnn_monte_carlo_trial(benchmark, spnn_task):
    """One EXP 1 Monte Carlo iteration: sample a network perturbation + evaluate accuracy."""
    model = UncertaintyModel.both(0.05)
    spnn = spnn_task.spnn
    features, labels = spnn_task.test_features, spnn_task.test_labels
    counter = {"seed": 0}

    def trial():
        counter["seed"] += 1
        perturbation = sample_network_perturbation(spnn.photonic_layers, model, counter["seed"])
        return spnn.accuracy(features, labels, perturbations=perturbation)

    accuracy = benchmark(trial)
    assert 0.0 <= accuracy <= 1.0


def test_perturbed_mesh_matrix_batch_16(benchmark):
    """Batched evaluation of 256 perturbed 16x16 mesh realizations at once."""
    mesh = MZIMesh.from_unitary(random_unitary(16, rng=1))
    model = UncertaintyModel.both(0.05)
    batch = sample_mesh_perturbation_batch(mesh, model, spawn_rngs(2, 256))
    matrices = benchmark(mesh.matrix_batch, batch)
    assert matrices.shape == (256, 16, 16)


def test_hardware_inference_throughput(benchmark, spnn_task):
    """Nominal hardware inference over the benchmark test set."""
    spnn = spnn_task.spnn
    features = spnn_task.test_features
    log_probs = benchmark(spnn.forward_hardware, features)
    assert log_probs.shape == (len(features), 10)
    assert np.allclose(np.exp(log_probs).sum(axis=-1), 1.0)


def test_spnn_monte_carlo_batched_1000(benchmark, spnn_task):
    """The paper-scale Monte Carlo scenario (B=1000) on the vectorized engine."""
    model = UncertaintyModel.both(0.05)
    spnn = spnn_task.spnn
    features, labels = spnn_task.test_features, spnn_task.test_labels

    accuracies = benchmark(
        monte_carlo_accuracy,
        spnn,
        features,
        labels,
        model,
        iterations=PAPER_MC_ITERATIONS,
        rng=0,
        vectorized=True,
    )
    assert accuracies.shape == (PAPER_MC_ITERATIONS,)
    assert np.all((accuracies >= 0) & (accuracies <= 1))


def test_spnn_monte_carlo_batched_speedup(spnn_task):
    """Acceptance scenario: B=1000, paper architecture — batched vs looped.

    Uses an engine-dominated evaluation subset (64 samples) so the measured
    ratio reflects the per-iteration mesh-rebuild cost the vectorized path
    removes; the two paths must also agree sample for sample.
    """
    model = UncertaintyModel.both(0.05)
    spnn = spnn_task.spnn
    features = spnn_task.test_features[:64]
    labels = spnn_task.test_labels[:64]
    kwargs = dict(
        spnn=spnn, features=features, labels=labels, model=model,
        iterations=PAPER_MC_ITERATIONS, rng=7,
    )

    # Warm caches / lazy BLAS initialisation outside the measured windows.
    monte_carlo_accuracy(**{**kwargs, "iterations": 20})

    start = time.perf_counter()
    looped = monte_carlo_accuracy(vectorized=False, **kwargs)
    looped_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = monte_carlo_accuracy(vectorized=True, **kwargs)
    batched_seconds = time.perf_counter() - start

    assert np.array_equal(looped, batched), "batched MC path must be bit-identical to the loop"
    speedup = looped_seconds / batched_seconds
    print(
        f"\nMC B={PAPER_MC_ITERATIONS}: looped {looped_seconds:.2f}s, "
        f"batched {batched_seconds:.2f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >= {SPEEDUP_FLOOR:.1f}x speedup, measured {speedup:.1f}x"
    )
