"""Micro-benchmarks of the core computational kernels.

These are plain performance benchmarks (not paper reproductions): the
Clements decomposition of a 16x16 unitary, one perturbed mesh evaluation,
and one Monte Carlo accuracy trial of the full SPNN — the three operations
every experiment in the paper loops over.
"""

from __future__ import annotations

import numpy as np

from repro.mesh import MZIMesh, clements_decompose
from repro.utils import random_unitary
from repro.variation import UncertaintyModel, sample_mesh_perturbation, sample_network_perturbation


def test_clements_decompose_16(benchmark):
    unitary = random_unitary(16, rng=0)
    decomposition = benchmark(clements_decompose, unitary)
    assert decomposition.num_mzis == 120


def test_perturbed_mesh_matrix_16(benchmark):
    mesh = MZIMesh.from_unitary(random_unitary(16, rng=1))
    model = UncertaintyModel.both(0.05)
    perturbation = sample_mesh_perturbation(mesh, model, rng=2)
    matrix = benchmark(mesh.matrix, perturbation)
    assert matrix.shape == (16, 16)


def test_spnn_monte_carlo_trial(benchmark, spnn_task):
    """One EXP 1 Monte Carlo iteration: sample a network perturbation + evaluate accuracy."""
    model = UncertaintyModel.both(0.05)
    spnn = spnn_task.spnn
    features, labels = spnn_task.test_features, spnn_task.test_labels
    counter = {"seed": 0}

    def trial():
        counter["seed"] += 1
        perturbation = sample_network_perturbation(spnn.photonic_layers, model, counter["seed"])
        return spnn.accuracy(features, labels, perturbations=perturbation)

    accuracy = benchmark(trial)
    assert 0.0 <= accuracy <= 1.0


def test_hardware_inference_throughput(benchmark, spnn_task):
    """Nominal hardware inference over the benchmark test set."""
    spnn = spnn_task.spnn
    features = spnn_task.test_features
    log_probs = benchmark(spnn.forward_hardware, features)
    assert log_probs.shape == (len(features), 10)
    assert np.allclose(np.exp(log_probs).sum(axis=-1), 1.0)
