"""Benchmark / reproduction harness for the §III-D baseline-accuracy numbers.

The paper quotes 94.12% accuracy with full 28x28 FFT features and a 6.77%
loss after compressing to the 4x4 center crop.  This bench trains both
variants on the synthetic corpus and reports the pair (absolute values
differ from the paper — see EXPERIMENTS.md — but the compression loss must
stay modest).
"""

from __future__ import annotations

from repro.experiments import BaselineConfig, run_baseline


def test_baseline_feature_compression(benchmark):
    config = BaselineConfig(num_train=1200, num_test=400, epochs=30, seed=2021)
    result = benchmark.pedantic(run_baseline, args=(config,), rounds=1, iterations=1)
    print()
    print(result.report())

    # Shape checks: both pipelines learn well above chance and the 49x
    # feature compression costs only a modest amount of accuracy (at this
    # reduced training scale the compressed model can even come out ahead,
    # which satisfies the paper's claim a fortiori).
    assert result.full_feature_accuracy > 0.45
    assert result.cropped_feature_accuracy > 0.45
    assert result.compression_loss < 0.25
