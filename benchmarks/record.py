"""Record the performance trajectory: run key scenarios, write ``BENCH_pr10.json``.

The benchmark suite asserts floors; this script *records* the measured
numbers so the repo carries its own perf history.  It times the load-bearing
scenarios of the current optimization work — the noise-aware training step
(original vs. optimized), the warm vs. exact layer recompile, the batched
vs. looped Monte Carlo engine, the per-chunk payload of the shared-memory
network hosting and of the compact stream recipes, the drift timeline sweep
with its warm re-null price, the device-resident engine behind
``--device gpu``, the fused mesh column-sweep megakernel against the looped
reference, and the distributed fleet — a full round trip over a localhost
2-worker fleet plus the cold-vs-warm transfer bytes of its spec-hash
artifact cache — the calibrated shape-aware kernel dispatch against the
static preference order, and the throughput-weighted fleet scheduler
against FIFO-uniform on a skewed 2-worker fleet — and writes one JSON
artifact with per-scenario timings and ratios at the repo root.  CI
uploads the file so every run of the pipeline leaves a comparable data
point; compare artifacts across PRs with ``python benchmarks/trajectory.py``
(and gate them with ``--check``).

Usage::

    PYTHONPATH=src python benchmarks/record.py [--output BENCH_pr10.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import numpy as np  # noqa: E402

from bench_noise_aware_training import SPEEDUP_TIMING_EPOCHS, _timed_noise_aware_fit  # noqa: E402
from repro.experiments.exp3_robust_training import train_baseline_model  # noqa: E402
from repro.experiments.registry import get_experiment  # noqa: E402
from repro.mesh.svd_layer import PhotonicLinearLayer  # noqa: E402
from repro.onn.builder import build_trained_spnn, prepare_feature_sets  # noqa: E402
from repro.onn.inference import monte_carlo_accuracy  # noqa: E402
from repro.variation.models import UncertaintyModel  # noqa: E402

#: Artifact label — bump per PR so the trajectory files line up with history.
LABEL = "pr10"


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds of ``fn()`` (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def record_noise_aware_step(config, train_x, train_y) -> dict:
    """Per-step cost of the original vs. optimized noise-aware training."""
    # warmup
    _timed_noise_aware_fit(config, train_x, train_y, 1, optimized=True)
    original = _timed_noise_aware_fit(
        config, train_x, train_y, SPEEDUP_TIMING_EPOCHS, optimized=False
    )
    optimized = _timed_noise_aware_fit(
        config, train_x, train_y, SPEEDUP_TIMING_EPOCHS, optimized=True
    )
    return {
        "original_step_seconds": original,
        "optimized_step_seconds": optimized,
        "speedup": original / optimized,
    }


def record_layer_recompile() -> dict:
    """Exact layer compile vs. warm in-place retune (16x16, paper-size mesh)."""
    gen = np.random.default_rng(0)
    weight = (gen.standard_normal((16, 16)) + 1j * gen.standard_normal((16, 16))) / 4.0
    moved = weight + 0.01 * (gen.standard_normal((16, 16)) + 1j * gen.standard_normal((16, 16)))
    layer = PhotonicLinearLayer(weight)
    exact = _time(lambda: PhotonicLinearLayer(moved))
    warm = _time(lambda: layer.retune_from_weight(moved))
    return {"exact_seconds": exact, "warm_seconds": warm, "speedup": exact / warm}


def record_mc_engine(config) -> dict:
    """Looped vs. batched Monte Carlo accuracy on a small trained SPNN.

    The scalar reference is pinned to the ``looped`` sweep kernel: the
    ratio measures the batched engine against the fixed original loop, and
    the sweep-kernel registry accelerates the scalar path too — letting the
    reference float with the registry default would shrink the recorded
    ratio every time the kernel layer improves.
    """
    import os

    from repro.arrays import SWEEP_KERNEL_ENV

    task = build_trained_spnn(config.training)
    features = task.test_features[:64]
    labels = task.test_labels[:64]
    model = UncertaintyModel.both(0.01)
    kwargs = dict(iterations=200, rng=7)
    previous = os.environ.get(SWEEP_KERNEL_ENV)
    os.environ[SWEEP_KERNEL_ENV] = "looped"
    try:
        looped = _time(
            lambda: monte_carlo_accuracy(
                task.spnn, features, labels, model, vectorized=False, **kwargs
            ),
            repeats=1,
        )
    finally:
        if previous is None:
            os.environ.pop(SWEEP_KERNEL_ENV, None)
        else:
            os.environ[SWEEP_KERNEL_ENV] = previous
    batched = _time(
        lambda: monte_carlo_accuracy(task.spnn, features, labels, model, **kwargs),
        repeats=1,
    )
    return {"looped_seconds": looped, "batched_seconds": batched, "speedup": looped / batched}


def record_plain_training(config, train_x, train_y) -> dict:
    """The plain software loop — the denominator of the overhead headline."""
    seconds = _time(lambda: train_baseline_model(train_x, train_y, config), repeats=1)
    return {"seconds": seconds}


def record_shared_network_payload(config) -> dict:
    """Per-chunk task payload: compiled SPNN vs the shared-memory handle."""
    from bench_parallel_scaling import measure_shared_network_payload

    task = build_trained_spnn(config.training)
    return measure_shared_network_payload(task)


def record_stream_payload() -> dict:
    """Per-chunk stream payload: pickled generators vs the seed recipe."""
    from bench_parallel_scaling import measure_stream_payload

    return measure_stream_payload()


def record_drift_timeline(config) -> dict:
    """The drift timeline sweep (EXP 4) plus the warm re-null event price."""
    from repro.experiments.registry import get_experiment

    drift_config = get_experiment("drift").smoke_config
    task = build_trained_spnn(drift_config.training)
    from repro.experiments.drift_experiment import run_drift

    start = time.perf_counter()
    result = run_drift(drift_config, task=task)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "timelines": result.baseline.timelines,
        "num_steps": result.baseline.num_steps,
        "baseline_mean_accuracy": result.baseline.mean_served_accuracy,
        "recalibrated_mean_accuracy": result.recalibrated.mean_served_accuracy,
        "accuracy_recovered": result.accuracy_recovered,
        "renull_warm_seconds": result.renull_cost.warm_seconds,
        "renull_exact_seconds": result.renull_cost.exact_seconds,
        "renull_speedup": result.renull_cost.speedup,
    }


def record_device_engine(config) -> dict:
    """The device-resident engine (``--device gpu``) vs the serial CPU path.

    On GPU machines this exercises CuPy; CPU-only machines fall back to the
    strict mock namespace, where the value of the record is the invariance
    check (mock results are bit-identical by contract) plus the overhead of
    the seam, not a speedup.
    """
    from repro.arrays import available_array_backends
    from repro.execution import GpuBackend, default_gpu_array_backend

    preferred = default_gpu_array_backend()
    available = available_array_backends()
    array_backend = preferred if preferred in available else "mock_device"

    task = build_trained_spnn(config.training)
    features = task.test_features[:64]
    labels = task.test_labels[:64]
    model = UncertaintyModel.both(0.01)
    kwargs = dict(iterations=200, rng=7)
    serial_samples = monte_carlo_accuracy(task.spnn, features, labels, model, **kwargs)
    backend = GpuBackend(array_backend=array_backend)
    start = time.perf_counter()
    device_samples = monte_carlo_accuracy(
        task.spnn, features, labels, model, backend=backend, **kwargs
    )
    device_seconds = time.perf_counter() - start
    return {
        "array_backend": array_backend,
        "seconds": device_seconds,
        "matches_serial": bool(np.allclose(device_samples, serial_samples)),
        "bit_identical_to_serial": bool(np.array_equal(device_samples, serial_samples)),
    }


def record_mesh_megakernel() -> dict:
    """Direct column-sweep timing: the looped reference vs the fused kernel.

    Times :func:`repro.arrays.apply_column_sweep` alone — the megakernel
    regime the registry optimizes — on a paper-plus-size 32x32 Clements
    mesh with a 2048-realization perturbation batch (the sigma-folded
    Monte Carlo scale: a 4-sigma yield study over 512 draws each lands
    exactly here).  Each kernel gets the whole batch in one call, so the
    fused kernel's internal cache blocking is fully visible against the
    looped reference's column-major streaming.  Also asserts the two
    kernels agree bit for bit on the timed inputs.
    """
    from scipy.stats import unitary_group

    from repro.arrays import active_array_backend, apply_column_sweep, available_sweep_kernels
    from repro.mesh.mesh import MZIMesh
    from repro.utils.rng import spawn_rngs
    from repro.variation.sampler import sample_mesh_perturbation_batch

    n, batch, repeats = 32, 4096, 3
    mesh = MZIMesh.from_unitary(unitary_group.rvs(n, random_state=3), scheme="clements")
    perturbation = sample_mesh_perturbation_batch(
        mesh, UncertaintyModel.both(0.01), spawn_rngs(11, batch)
    )
    backend = active_array_backend()
    components, _ = mesh._blocks_and_phases(perturbation, backend)
    program = mesh.column_program(backend)
    sorted_components = tuple(c[..., program.perm] for c in components)
    eye = np.broadcast_to(np.eye(n, dtype=np.complex128), (batch, n, n))
    work = np.empty((batch, n, n), dtype=np.complex128)

    def sweep_seconds(kernel: str) -> float:
        samples = []
        for _ in range(repeats):
            work[...] = eye
            start = time.perf_counter()
            apply_column_sweep(backend, work, sorted_components, program, kernel=kernel)
            samples.append(time.perf_counter() - start)
        return float(np.median(samples))

    def sweep_result(kernel: str) -> np.ndarray:
        out = eye.copy()
        apply_column_sweep(backend, out, sorted_components, program, kernel=kernel)
        return out

    bit_identical = bool(np.array_equal(sweep_result("looped"), sweep_result("fused")))
    sweep_seconds("fused")  # warm the fused kernel's column plan
    looped = sweep_seconds("looped")
    fused = sweep_seconds("fused")
    return {
        "n": n,
        "batch": batch,
        "looped_seconds": looped,
        "fused_seconds": fused,
        "speedup": looped / fused,
        "bit_identical": bit_identical,
        "available_kernels": list(available_sweep_kernels(backend)),
    }


def record_fleet_round_trip(config) -> dict:
    """A Monte Carlo accuracy sweep over a localhost 2-worker fleet vs serial.

    The number that matters here is not a speedup (a localhost fleet adds
    socket hops to the same two cores ``--workers 2`` would use) but the
    bit-identity flag and the absolute round-trip price of the distributed
    path: coordinator bind, worker dial-in, dehydrated chunks out, samples
    back in task order.
    """
    from repro.execution.fleet import local_fleet

    task = build_trained_spnn(config.training)
    features = task.test_features[:64]
    labels = task.test_labels[:64]
    model = UncertaintyModel.both(0.01)
    kwargs = dict(iterations=200, rng=7)
    start = time.perf_counter()
    serial_samples = monte_carlo_accuracy(task.spnn, features, labels, model, **kwargs)
    serial_seconds = time.perf_counter() - start
    with local_fleet(workers=2) as fleet:
        start = time.perf_counter()
        fleet_samples = monte_carlo_accuracy(
            task.spnn, features, labels, model, backend=fleet, **kwargs
        )
        fleet_seconds = time.perf_counter() - start
        workers = fleet.server.worker_count
    return {
        "workers": workers,
        "serial_seconds": serial_seconds,
        "seconds": fleet_seconds,
        "bit_identical_to_serial": bool(np.array_equal(fleet_samples, serial_samples)),
    }


def record_artifact_cache_hit(config) -> dict:
    """Cold vs. warm transfer bytes for a repeat request on one fleet.

    The cold request pushes the content-addressed blobs (the pickled trial
    with its compiled network parameters and eval arrays) to each worker
    link; a warm repeat of the same spec ships only digests and seed
    recipes.  ``reduction`` is total cold wire bytes over warm wire bytes
    — the headline the trajectory gate holds at >= 3x.
    ``stream_floor_headroom`` checks the ISSUE's payload bound the same
    way the tests do: warm per-chunk task bytes must stay within 2x of
    what a bare ``(start, TrialRef, StreamSlice)`` chunk task pickles to,
    so the ratio ``2 * floor / per_chunk`` must stay >= 1.
    """
    import pickle

    from repro.execution.fleet import TrialRef, local_fleet
    from repro.utils.rng import StreamSlice, spawn_rngs

    task = build_trained_spnn(config.training)
    features = task.test_features[:64]
    labels = task.test_labels[:64]
    model = UncertaintyModel.both(0.01)
    kwargs = dict(iterations=200, rng=7)

    def wire_bytes(entry: dict) -> int:
        return entry["task_bytes"] + entry["fn_bytes"] + entry["artifact_bytes"]

    with local_fleet(workers=2) as fleet:
        cold_samples = monte_carlo_accuracy(
            task.spnn, features, labels, model, backend=fleet, **kwargs
        )
        cold_bytes = sum(wire_bytes(entry) for entry in fleet.request_log)
        cold_artifact_bytes = sum(
            entry["artifact_bytes"] for entry in fleet.request_log
        )
        warm = fleet.request_log[-1]
        for _ in range(4):  # links warm lazily; a couple of repeats saturate
            warm_samples = monte_carlo_accuracy(
                task.spnn, features, labels, model, backend=fleet, **kwargs
            )
            warm = fleet.request_log[-1]
            if warm["artifact_bytes"] == 0:
                break
        matches = bool(np.array_equal(cold_samples, warm_samples))
    warm_bytes = wire_bytes(warm)
    per_chunk = warm["task_bytes"] / warm["tasks"]
    recipe = StreamSlice.from_generators(
        tuple(spawn_rngs(np.random.default_rng(0), kwargs["iterations"])),
        trust_fresh=True,
    )
    floor = len(
        pickle.dumps((0, TrialRef("0" * 32), recipe), protocol=pickle.HIGHEST_PROTOCOL)
    )
    return {
        "workers": 2,
        "cold_bytes": cold_bytes,
        "cold_artifact_bytes": cold_artifact_bytes,
        "warm_bytes": warm_bytes,
        "warm_artifact_bytes": warm["artifact_bytes"],
        "reduction": cold_bytes / warm_bytes,
        "stream_slice_floor_bytes": floor,
        "warm_task_bytes_per_chunk": per_chunk,
        "stream_floor_headroom": (2 * floor) / per_chunk,
        "cold_and_warm_match": matches,
    }


def record_adaptive_dispatch() -> dict:
    """Calibrated shape-aware kernel choice vs. the static preference order.

    Calibrates the per-machine cost table (the same ``spnn-repro
    calibrate`` one-shot), installs it, and then — for each grid shape —
    times the kernel the static order would pick against the kernel the
    hinted dispatch actually chooses.  ``speedup`` is the *worst* ratio
    across the grid (the acceptance bar is "never slower than static
    beyond the tolerance", not "faster somewhere"), and
    ``small_shape_speedup`` isolates the (n=8, batch=1) point the static
    order historically over-paid: when the looped kernel wins there the
    table must route to it; when the fused kernel genuinely wins on this
    machine both ratios sit at 1.0.
    """
    import os

    from scipy.stats import unitary_group

    from repro.arrays import HOST_BACKEND, apply_column_sweep
    from repro.arrays.sweep import SweepShape, select_sweep_kernel
    from repro.tuning import install_table, reset_tuning_state, run_calibration
    from repro.utils.rng import spawn_rngs
    from repro.variation.sampler import sample_mesh_perturbation_batch

    shapes = ((8, 1), (8, 32), (16, 256), (32, 2048))
    backend = HOST_BACKEND
    previous = os.environ.get("REPRO_AUTOTUNE")
    os.environ["REPRO_AUTOTUNE"] = "on"
    try:
        reset_tuning_state()
        table = run_calibration()
        install_table(table)

        def sweep_seconds(kernel_name, program, components, eye, batch, repeats=5):
            work = np.empty((batch, program.n, program.n), dtype=np.complex128)
            samples = []
            # loop tiny shapes so each sample is well above timer resolution
            iterations = max(1, 2048 // (batch * program.n))
            for _ in range(repeats):
                work[...] = eye
                start = time.perf_counter()
                for _ in range(iterations):
                    apply_column_sweep(backend, work, components, program, kernel=kernel_name)
                samples.append((time.perf_counter() - start) / iterations)
            return float(np.median(samples))

        per_shape = {}
        for n, batch in shapes:
            mesh_unitary = unitary_group.rvs(n, random_state=n)
            from repro.mesh.mesh import MZIMesh

            mesh = MZIMesh.from_unitary(mesh_unitary, scheme="clements")
            perturbation = sample_mesh_perturbation_batch(
                mesh, UncertaintyModel.both(0.01), spawn_rngs(11, batch)
            )
            components, _ = mesh._blocks_and_phases(perturbation, backend)
            program = mesh.column_program(backend)
            components = tuple(c[..., program.perm] for c in components)
            eye = np.broadcast_to(np.eye(n, dtype=np.complex128), (batch, n, n))

            os.environ["REPRO_AUTOTUNE"] = "off"
            static_name = select_sweep_kernel(
                backend, SweepShape(n, batch, program.num_columns, "clements")
            ).name
            os.environ["REPRO_AUTOTUNE"] = "on"
            chosen_name = select_sweep_kernel(
                backend, SweepShape(n, batch, program.num_columns, "clements")
            ).name
            static_seconds = sweep_seconds(static_name, program, components, eye, batch)
            chosen_seconds = (
                static_seconds
                if chosen_name == static_name
                else sweep_seconds(chosen_name, program, components, eye, batch)
            )
            entry = {
                "static_kernel": static_name,
                "chosen_kernel": chosen_name,
                "static_seconds": static_seconds,
                "chosen_seconds": chosen_seconds,
                "speedup": static_seconds / chosen_seconds,
            }
            if (n, batch) == (8, 1):
                fused_seconds = (
                    static_seconds
                    if static_name == "fused"
                    else sweep_seconds("fused", program, components, eye, batch)
                )
                entry["fused_seconds"] = fused_seconds
                small_shape_speedup = fused_seconds / chosen_seconds
            per_shape[f"n{n}_b{batch}"] = entry
        return {
            "grid_points": len(table.grid.get("fused", {})),
            "shapes": per_shape,
            "speedup": min(entry["speedup"] for entry in per_shape.values()),
            "small_shape_speedup": small_shape_speedup,
        }
    finally:
        if previous is None:
            os.environ.pop("REPRO_AUTOTUNE", None)
        else:
            os.environ["REPRO_AUTOTUNE"] = previous
        reset_tuning_state()


def record_weighted_fleet() -> dict:
    """Throughput-weighted chunk assignment vs. FIFO on a skewed fleet.

    Two workers, one slowed ~4x via a per-worker ``REPRO_SYNTH_SLEEP``
    overlay, evaluating sleep chunks whose cost is purely the configured
    delay — the cleanest stand-in for a heterogeneous fleet.  After a
    warm-up request measures both links, the same task list runs under
    ``fifo`` (every idle link claims the head, so the slow link strands
    one ~1.2s chunk on the critical path) and under ``weighted`` (the
    slow link abstains and the fast link drains the queue).  The headline
    ``speedup`` is FIFO wall time over weighted wall time; the trajectory
    gate holds it at >= 1.3x.  Both runs must stay bit-identical to the
    serial evaluation.
    """
    from repro.execution.fleet import local_fleet
    from repro.execution.fleet.synthetic import SYNTH_SLEEP_ENV, SleepChunkEvaluator

    evaluator = SleepChunkEvaluator(default_seconds=0.15)
    tasks = [("chunk", index) for index in range(4)]
    expected = [("synth", task) for task in tasks]
    overlay = [{SYNTH_SLEEP_ENV: "1.2"}, None]
    with local_fleet(workers=2, worker_env=overlay) as fleet:
        # Warm-up: cold links always claim, so both get measured here.  The
        # warm-up map can return early (the fast link duplicates the slow
        # link's straggling chunk), so wait until the slow link has actually
        # posted its result — i.e. both links are measured AND idle — before
        # timing, or the FIFO run would start with the slow worker still
        # busy and degenerate into a single-worker fleet.
        warmup = [("warm", index) for index in range(2)]
        assert fleet.map(evaluator, warmup) == [("synth", task) for task in warmup]
        deadline = time.monotonic() + 30.0
        while (
            any(rate is None for rate in fleet.server.worker_rates().values())
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)

        fleet.server.scheduling = "fifo"
        start = time.perf_counter()
        fifo_results = fleet.map(evaluator, tasks)
        fifo_seconds = time.perf_counter() - start

        fleet.server.scheduling = "weighted"
        start = time.perf_counter()
        weighted_results = fleet.map(evaluator, tasks)
        weighted_seconds = time.perf_counter() - start
        duplicates = fleet.request_log[-1]["duplicates"]
    return {
        "workers": 2,
        "slow_sleep_seconds": 1.2,
        "fast_sleep_seconds": 0.15,
        "tasks": len(tasks),
        "fifo_seconds": fifo_seconds,
        "weighted_seconds": weighted_seconds,
        "speedup": fifo_seconds / weighted_seconds,
        "weighted_duplicates": duplicates,
        "bit_identical_to_serial": bool(
            fifo_results == expected and weighted_results == expected
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / f"BENCH_{LABEL}.json",
        help="where to write the JSON artifact (default: repo root)",
    )
    parser.add_argument(
        "--recorded-at",
        type=float,
        default=None,
        help=(
            "unix timestamp to stamp into the artifact instead of the wall "
            "clock (reproducible artifacts, e.g. for fixture generation)"
        ),
    )
    args = parser.parse_args(argv)

    config = get_experiment("robust").smoke_config
    train_x, train_y, _, _ = prepare_feature_sets(config.training)

    scenarios = {}
    print("recording noise-aware step timings ...")
    scenarios["noise_aware_step"] = record_noise_aware_step(config, train_x, train_y)
    print("recording layer recompile timings ...")
    scenarios["layer_recompile"] = record_layer_recompile()
    print("recording Monte Carlo engine timings ...")
    scenarios["mc_engine"] = record_mc_engine(config)
    print("recording plain training baseline ...")
    scenarios["plain_training"] = record_plain_training(config, train_x, train_y)
    print("recording shared-network payload ...")
    scenarios["shared_network_payload"] = record_shared_network_payload(config)
    print("recording stream payload ...")
    scenarios["stream_payload"] = record_stream_payload()
    print("recording drift timeline sweep ...")
    scenarios["drift_timeline"] = record_drift_timeline(config)
    print("recording device-resident engine ...")
    scenarios["device_engine"] = record_device_engine(config)
    print("recording mesh megakernel sweep ...")
    scenarios["mesh_megakernel"] = record_mesh_megakernel()
    print("recording fleet round trip ...")
    scenarios["fleet_round_trip"] = record_fleet_round_trip(config)
    print("recording artifact cache hit ...")
    scenarios["artifact_cache_hit"] = record_artifact_cache_hit(config)
    print("recording adaptive kernel dispatch ...")
    scenarios["adaptive_dispatch"] = record_adaptive_dispatch()
    print("recording weighted fleet scheduling ...")
    scenarios["weighted_fleet"] = record_weighted_fleet()

    report = {
        "schema": 1,
        "label": LABEL,
        "recorded_at_unix": args.recorded_at if args.recorded_at is not None else time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenarios": scenarios,
        "speedups": {
            name: values["speedup"]
            for name, values in scenarios.items()
            if "speedup" in values
        },
    }

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for name, ratio in report["speedups"].items():
        print(f"  {name}: {ratio:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
