"""Ablation: Clements (rectangular) vs Reck (triangular) mesh topology.

The paper uses the Clements design.  This ablation compiles the same random
unitaries onto both topologies and compares their robustness (mean RVD under
identical global uncertainties), illustrating how the mesh floorplan changes
error accumulation along optical paths.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import rvd
from repro.mesh import MZIMesh
from repro.utils import random_unitary
from repro.utils.serialization import format_table
from repro.variation import UncertaintyModel, sample_mesh_perturbation

MATRIX_SIZE = 8
NUM_UNITARIES = 4
ITERATIONS = 50
SIGMA = 0.05


def _mean_rvd(scheme: str) -> float:
    model = UncertaintyModel.both(SIGMA)
    values = []
    for seed in range(NUM_UNITARIES):
        unitary = random_unitary(MATRIX_SIZE, rng=seed)
        mesh = MZIMesh.from_unitary(unitary, scheme=scheme)
        reference = mesh.ideal_matrix()
        for iteration in range(ITERATIONS):
            perturbation = sample_mesh_perturbation(mesh, model, rng=seed * 1000 + iteration)
            values.append(rvd(mesh.matrix(perturbation), reference))
    return float(np.mean(values))


def test_ablation_clements_vs_reck(benchmark):
    def run():
        return {"clements": _mean_rvd("clements"), "reck": _mean_rvd("reck")}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"Ablation — mesh topology robustness (sigma = {SIGMA}, {MATRIX_SIZE}x{MATRIX_SIZE} unitaries)")
    print(format_table(["scheme", "mean RVD"], [[k, v] for k, v in result.items()]))

    # Both topologies use the same number of MZIs, so under i.i.d. per-device
    # noise the mean RVD must be in the same ballpark (within 2x).
    ratio = result["reck"] / result["clements"]
    assert 0.5 < ratio < 2.0
