"""Shared scratch-buffer arena for the stacked ``(B, ...)`` hot paths.

Both vectorized evaluation engines of this library — the batched Monte
Carlo path (``B`` uncertainty realizations stacked along a leading axis)
and the noise-aware training step (``K`` perturbation draws stacked the
same way) — churn through the same kind of short-lived arrays every call:
stacked hardware matrices, activation blocks, modulus buffers, tiled
targets.  At smoke scale those allocations are a measurable slice of the
per-step cost; at the paper's 10k-MNIST scale they are tens of megabytes
of allocator traffic per Monte Carlo chunk.

:class:`VectorizedWorkspace` removes that churn: a keyed arena of reusable
buffers that callers request by ``(key, shape, dtype)``.  Buffers are
backed by capacity-tracked flat allocations, so a request for a *smaller*
shape under the same key (the partial tail chunk of a sweep) returns a
view of the existing allocation instead of reallocating, and the next
full-size chunk gets its old buffer back.

Contract
--------
* Buffers come back **uninitialized** (the previous contents of the key);
  callers must fully overwrite them.  Every workspace-aware kernel in this
  library writes its buffer with ``out=``-style full assignments, so the
  results are bit-identical with and without a workspace.
* A key hands out **one** buffer; requesting the same key twice without an
  intervening full overwrite aliases the two uses.  Hot paths therefore
  namespace their keys per pipeline stage (``("spnn/matmul", layer)``,
  ``("injector/offsets", layer)``, ...), which keeps every concurrently
  live intermediate on a distinct allocation.
* A workspace is **not** thread-safe and must not be shared across
  processes.  Worker processes of the multiprocess backend each use their
  own process-local arena (:func:`process_workspace`), which is what makes
  workspace reuse safe under the sharded Monte Carlo engine: the arena
  never travels through a pickle, it is re-created inside each worker.
"""

from __future__ import annotations

from math import prod
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

__all__ = ["VectorizedWorkspace", "process_workspace", "reset_process_workspace"]


class VectorizedWorkspace:
    """Keyed arena of reusable scratch buffers for stacked vectorized kernels."""

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[Hashable, np.ndarray] = {}

    def buffer(
        self,
        key: Hashable,
        shape: Tuple[int, ...],
        dtype: np.dtype = np.float64,
    ) -> np.ndarray:
        """An uninitialized reusable buffer of ``shape`` / ``dtype`` for ``key``.

        The backing allocation is grown only when the requested element
        count exceeds the key's current capacity (or the dtype changes);
        smaller requests return a contiguous leading view, so alternating
        full and partial chunk sizes never reallocates.
        """
        shape = tuple(int(extent) for extent in shape)
        if any(extent < 0 for extent in shape):
            raise ValueError(f"buffer shape must be non-negative, got {shape}")
        dtype = np.dtype(dtype)
        size = prod(shape)
        backing = self._buffers.get(key)
        if backing is None or backing.dtype != dtype or backing.size < size:
            backing = np.empty(max(size, 1), dtype=dtype)
            self._buffers[key] = backing
        return backing[:size].reshape(shape)

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena's backing allocations."""
        return sum(backing.nbytes for backing in self._buffers.values())

    def clear(self) -> None:
        """Drop every backing allocation (buffers handed out stay valid)."""
        self._buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"VectorizedWorkspace(buffers={self.num_buffers}, nbytes={self.nbytes})"


#: The per-process shared arena (lazily created; one per worker process).
_PROCESS_WORKSPACE: Optional[VectorizedWorkspace] = None


def process_workspace() -> VectorizedWorkspace:
    """The process-local shared arena.

    The trainer, the SPNN batched forward and the Monte Carlo batch trials
    all draw their scratch buffers from this single arena when workspace
    use is enabled, so one training-plus-evaluation pipeline recycles one
    set of allocations.  Worker processes of the multiprocess backend each
    lazily create their own instance on first use (module globals are
    per-process), which keeps buffer reuse free of any cross-process
    aliasing by construction.
    """
    global _PROCESS_WORKSPACE
    if _PROCESS_WORKSPACE is None:
        _PROCESS_WORKSPACE = VectorizedWorkspace()
    return _PROCESS_WORKSPACE


def reset_process_workspace() -> None:
    """Drop the process-local arena (tests and memory-pressure escape hatch)."""
    global _PROCESS_WORKSPACE
    _PROCESS_WORKSPACE = None
