"""Shared scratch-buffer arena for the stacked ``(B, ...)`` hot paths.

Both vectorized evaluation engines of this library — the batched Monte
Carlo path (``B`` uncertainty realizations stacked along a leading axis)
and the noise-aware training step (``K`` perturbation draws stacked the
same way) — churn through the same kind of short-lived arrays every call:
stacked hardware matrices, activation blocks, modulus buffers, tiled
targets.  At smoke scale those allocations are a measurable slice of the
per-step cost; at the paper's 10k-MNIST scale they are tens of megabytes
of allocator traffic per Monte Carlo chunk.

:class:`VectorizedWorkspace` removes that churn: a keyed arena of reusable
buffers that callers request by ``(key, shape, dtype)``.  Buffers are
backed by capacity-tracked flat allocations, so a request for a *smaller*
shape under the same key (the partial tail chunk of a sweep) returns a
view of the existing allocation instead of reallocating, and the next
full-size chunk gets its old buffer back.

Contract
--------
* Buffers come back **uninitialized** (the previous contents of the key);
  callers must fully overwrite them.  Every workspace-aware kernel in this
  library writes its buffer with ``out=``-style full assignments, so the
  results are bit-identical with and without a workspace.
* A key hands out **one** buffer; requesting the same key twice without an
  intervening full overwrite aliases the two uses.  Hot paths therefore
  namespace their keys per pipeline stage (``("spnn/matmul", layer)``,
  ``("injector/offsets", layer)``, ...), which keeps every concurrently
  live intermediate on a distinct allocation.
* A workspace is **not** thread-safe and must not be shared across
  processes.  Worker processes of the multiprocess backend each use their
  own process-local arena (:func:`process_workspace`), which is what makes
  workspace reuse safe under the sharded Monte Carlo engine: the arena
  never travels through a pickle, it is re-created inside each worker.
"""

from __future__ import annotations

from math import prod
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from ..arrays import ArrayBackend, HOST_BACKEND, active_array_backend

__all__ = ["VectorizedWorkspace", "process_workspace", "reset_process_workspace"]


class VectorizedWorkspace:
    """Keyed arena of reusable scratch buffers for stacked vectorized kernels.

    The arena is bound to an :class:`~repro.arrays.ArrayBackend` (the host
    NumPy backend by default): :meth:`buffer` allocates in that backend's
    namespace, which makes the workspace the single device-buffer
    allocation point of the stacked hot paths — activating a device backend
    turns every workspace-backed intermediate into a device-resident buffer
    with no kernel changes.  :meth:`host_buffer` always allocates host
    memory (staging buffers for host-side draws and stacking).
    """

    __slots__ = ("_buffers", "_host_buffers", "_backend")

    def __init__(self, backend: Optional[ArrayBackend] = None) -> None:
        self._backend = backend if backend is not None else HOST_BACKEND
        self._buffers: Dict[Hashable, object] = {}
        self._host_buffers: Dict[Hashable, np.ndarray] = {}

    @property
    def backend(self) -> ArrayBackend:
        """The array backend this arena allocates on."""
        return self._backend

    def buffer(
        self,
        key: Hashable,
        shape: Tuple[int, ...],
        dtype: np.dtype = np.float64,
    ):
        """An uninitialized reusable buffer of ``shape`` / ``dtype`` for ``key``.

        The backing allocation is grown only when the requested element
        count exceeds the key's current capacity (or the dtype changes);
        smaller requests return a contiguous leading view, so alternating
        full and partial chunk sizes never reallocates.
        """
        return self._allocate(self._buffers, self._backend, key, shape, dtype)

    def host_buffer(
        self,
        key: Hashable,
        shape: Tuple[int, ...],
        dtype: np.dtype = np.float64,
    ) -> np.ndarray:
        """Like :meth:`buffer` but always backed by host (NumPy) memory.

        On a host-bound arena this is the same key space as :meth:`buffer`
        (so existing keys keep their allocations); on a device-bound arena
        host staging buffers live in their own key space.
        """
        if self._backend.is_host:
            return self.buffer(key, shape, dtype)
        return self._allocate(self._host_buffers, HOST_BACKEND, key, shape, dtype)

    @staticmethod
    def _allocate(buffers: Dict, backend: ArrayBackend, key, shape, dtype):
        shape = tuple(int(extent) for extent in shape)
        if any(extent < 0 for extent in shape):
            raise ValueError(f"buffer shape must be non-negative, got {shape}")
        dtype = np.dtype(dtype)
        size = prod(shape)
        backing = buffers.get(key)
        if backing is None or backing.dtype != dtype or backing.size < size:
            backing = backend.empty((max(size, 1),), dtype)
            buffers[key] = backing
        return backing[:size].reshape(shape)

    @property
    def num_buffers(self) -> int:
        return len(self._buffers) + len(self._host_buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena's backing allocations."""
        return sum(backing.nbytes for backing in self._buffers.values()) + sum(
            backing.nbytes for backing in self._host_buffers.values()
        )

    def clear(self) -> None:
        """Drop every backing allocation (buffers handed out stay valid)."""
        self._buffers.clear()
        self._host_buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"VectorizedWorkspace(backend={self._backend.name!r}, "
            f"buffers={self.num_buffers}, nbytes={self.nbytes})"
        )


#: The per-process shared arenas, one per array backend (lazily created).
_PROCESS_WORKSPACES: Dict[str, VectorizedWorkspace] = {}


def process_workspace() -> VectorizedWorkspace:
    """The process-local shared arena for the active array backend.

    The trainer, the SPNN batched forward and the Monte Carlo batch trials
    all draw their scratch buffers from this single arena when workspace
    use is enabled, so one training-plus-evaluation pipeline recycles one
    set of allocations.  Worker processes of the multiprocess backend each
    lazily create their own instance on first use (module globals are
    per-process), which keeps buffer reuse free of any cross-process
    aliasing by construction; device execution gets its own arena per
    backend, so host and device buffers never share a key space.
    """
    backend = active_array_backend()
    workspace = _PROCESS_WORKSPACES.get(backend.name)
    if workspace is None:
        workspace = VectorizedWorkspace(backend)
        _PROCESS_WORKSPACES[backend.name] = workspace
    return workspace


def reset_process_workspace() -> None:
    """Drop the process-local arenas (tests and memory-pressure escape hatch)."""
    _PROCESS_WORKSPACES.clear()
