"""Perturbation schedules: how hard to shake the network per training epoch.

Noise-injected training does not have to apply the full target uncertainty
from epoch 0 — ramping the injected sigma in (or walking it through a
curriculum of levels) lets the network first learn the task and then harden
against variations, which is how in-situ-training work on MZI networks
stages its noise.  A :class:`PerturbationSchedule` maps ``(epoch,
total_epochs)`` to a *sigma scale factor* multiplied into the base
:class:`~repro.variation.models.UncertaintyModel` of the injector:

* ``constant`` — the same scale every epoch (1.0 trains at the target sigma
  throughout),
* ``linear`` — linear ramp from ``start_scale`` to ``end_scale`` across the
  epochs (first epoch gets ``start_scale``, last gets ``end_scale``),
* ``curriculum`` — an explicit staircase of scales split evenly over the
  epochs (e.g. ``(0.0, 0.5, 1.0, 1.5)`` trains the last quarter *above* the
  target sigma).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..exceptions import ConfigurationError

#: The schedule kinds accepted by :class:`PerturbationSchedule`.
SCHEDULE_KINDS = ("constant", "linear", "curriculum")


@dataclass(frozen=True)
class PerturbationSchedule:
    """Sigma scale factor as a function of the training epoch.

    Parameters
    ----------
    kind:
        One of :data:`SCHEDULE_KINDS`.
    start_scale, end_scale:
        Scale factors at the first / last epoch.  ``constant`` uses only
        ``end_scale``; ``linear`` interpolates between the two.
    levels:
        Scale staircase for ``curriculum`` (must be non-empty for that
        kind); epoch ``e`` of ``E`` uses ``levels[floor(e * len / E)]``.
    """

    kind: str = "constant"
    start_scale: float = 0.0
    end_scale: float = 1.0
    levels: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULE_KINDS:
            raise ConfigurationError(
                f"unknown schedule kind {self.kind!r}; expected one of {SCHEDULE_KINDS}"
            )
        if self.start_scale < 0 or self.end_scale < 0:
            raise ConfigurationError(
                f"schedule scales must be non-negative, got start={self.start_scale}, end={self.end_scale}"
            )
        if self.kind == "curriculum":
            if not self.levels:
                raise ConfigurationError("curriculum schedule requires at least one level")
            if any(level < 0 for level in self.levels):
                raise ConfigurationError(f"curriculum levels must be non-negative, got {self.levels}")
        elif self.levels:
            raise ConfigurationError(f"levels are only valid for the curriculum kind, got kind={self.kind!r}")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def constant(cls, scale: float = 1.0) -> "PerturbationSchedule":
        """The same sigma scale every epoch."""
        return cls(kind="constant", end_scale=scale)

    @classmethod
    def linear_ramp(cls, start_scale: float = 0.0, end_scale: float = 1.0) -> "PerturbationSchedule":
        """Linear ramp from ``start_scale`` (epoch 0) to ``end_scale`` (last epoch)."""
        return cls(kind="linear", start_scale=start_scale, end_scale=end_scale)

    @classmethod
    def curriculum(cls, levels: Tuple[float, ...]) -> "PerturbationSchedule":
        """Staircase of sigma scales split evenly over the epochs."""
        return cls(kind="curriculum", levels=tuple(float(level) for level in levels))

    @classmethod
    def named(cls, name: str) -> "PerturbationSchedule":
        """Default instance of a schedule kind, selected by name."""
        name = name.lower()
        if name == "constant":
            return cls.constant()
        if name == "linear":
            return cls.linear_ramp()
        if name == "curriculum":
            return cls.curriculum((0.0, 0.5, 1.0, 1.5))
        raise ConfigurationError(f"unknown schedule {name!r}; expected one of {SCHEDULE_KINDS}")

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def scale(self, epoch: int, total_epochs: int) -> float:
        """Sigma scale factor for ``epoch`` of a ``total_epochs``-epoch run."""
        if total_epochs < 1:
            raise ConfigurationError(f"total_epochs must be >= 1, got {total_epochs}")
        if not 0 <= epoch < total_epochs:
            raise ConfigurationError(f"epoch must be in [0, {total_epochs}), got {epoch}")
        if self.kind == "constant":
            return float(self.end_scale)
        if self.kind == "linear":
            if total_epochs == 1:
                return float(self.end_scale)
            fraction = epoch / (total_epochs - 1)
            return float(self.start_scale + fraction * (self.end_scale - self.start_scale))
        # curriculum: even segments, last level covers any remainder epochs.
        segment = min(len(self.levels) - 1, epoch * len(self.levels) // total_epochs)
        return float(self.levels[segment])

    def scales(self, total_epochs: int) -> Tuple[float, ...]:
        """The full per-epoch scale sequence (useful for reports and tests)."""
        return tuple(self.scale(epoch, total_epochs) for epoch in range(total_epochs))

    def change_epochs(self, total_epochs: int) -> Tuple[int, ...]:
        """Epochs whose sigma scale differs from the previous epoch's.

        These are the schedule's level boundaries — the only points where a
        draw-amortizing :class:`~repro.training.injector.NoiseInjector` has
        to rescale (built-in sampler) or redraw (custom sampler) its cached
        perturbations mid-window, so the length of this tuple bounds the
        extra draw work a schedule adds per training run.  Constant
        schedules return an empty tuple; a ``linear`` ramp changes at every
        epoch.
        """
        scales = self.scales(total_epochs)
        return tuple(
            epoch for epoch in range(1, total_epochs) if scales[epoch] != scales[epoch - 1]
        )
