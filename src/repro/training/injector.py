"""Noise injection: turning variation models into training-time weight noise.

The Monte Carlo experiments perturb a *finished* network; noise-aware
training needs the same perturbations *while the weights are still moving*.
:class:`NoiseInjector` bridges the two worlds: it periodically compiles the
current software weights onto photonic hardware (SVD + Clements, exactly the
mapping the finished network will undergo), draws ``K`` perturbation
realizations per training step from the existing :mod:`repro.variation`
models, and hands back the *effective weight offsets*

.. math::

    \\Delta W_k = M(\\text{hardware} \\mid \\text{perturbation}_k) - M(\\text{hardware} \\mid \\text{nominal})

so the trainer can optimize the expected loss over the hardware the weights
will actually become.  The offsets are stacked along a leading batch axis
``(K, out, in)`` — the same vectorization the batched Monte Carlo engine
uses — so one forward pass evaluates all ``K`` draws at once.

Reproducibility: the injector consumes its own generator through
:func:`repro.utils.rng.spawn_rngs` (one child stream per draw, exactly like
the Monte Carlo engine), so a fixed seed reproduces the injected noise
sequence bit for bit no matter how the surrounding evaluation is scheduled.

Custom variation structure (zonal maps, thermal crosstalk, correlated FPV)
plugs in through the ``sampler`` hook; :func:`per_mesh_sigma_sampler` builds
the zonal case from the ``U_L*``/``VH_L*`` sigma maps of
:class:`~repro.variation.zones.ZoneGrid`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..arrays import active_array_backend, get_array_backend, use_array_backend
from ..exceptions import ConfigurationError
from ..mesh.svd_layer import LayerPerturbationBatch, PhotonicLinearLayer
from ..utils.rng import RNGLike, ensure_rng, spawn_rngs
from ..variation.models import UncertaintyModel
from ..variation.process import IIDGaussianProcess, PerturbationProcess
from ..variation.sampler import (
    sample_diagonal_perturbation_batch,
    sample_layer_perturbation_batch,
    sample_mesh_perturbation_batch,
)
from .workspace import VectorizedWorkspace

#: Batched network sampler hook: ``(layers, model, generators) -> one
#: LayerPerturbationBatch per layer``.  The default is the global Gaussian
#: sampler; zonal/thermal variation structure plugs in here.
NetworkBatchSampler = Callable[
    [Sequence[PhotonicLinearLayer], UncertaintyModel, Sequence[np.random.Generator]],
    List[Optional[LayerPerturbationBatch]],
]


def global_network_sampler(
    layers: Sequence[PhotonicLinearLayer],
    model: UncertaintyModel,
    generators: Sequence[np.random.Generator],
) -> List[Optional[LayerPerturbationBatch]]:
    """The default sampler: i.i.d. Gaussian perturbations on every MZI."""
    return [sample_layer_perturbation_batch(layer, model, generators) for layer in layers]


def per_mesh_sigma_sampler(sigma_maps: Dict[str, np.ndarray]) -> NetworkBatchSampler:
    """Sampler with per-MZI normalized sigma overrides on selected meshes.

    ``sigma_maps`` maps paper-style unitary names (``"U_L0"``, ``"VH_L2"``,
    ...) to per-MZI normalized sigma arrays, e.g. the zonal maps produced by
    :meth:`repro.variation.zones.ZoneGrid.sigma_map`.  Meshes without an
    entry follow the injector's base model unchanged; Sigma stages always
    follow the base model.
    """
    sigma_maps = {name: np.asarray(values, dtype=np.float64) for name, values in sigma_maps.items()}

    def sampler(
        layers: Sequence[PhotonicLinearLayer],
        model: UncertaintyModel,
        generators: Sequence[np.random.Generator],
    ) -> List[Optional[LayerPerturbationBatch]]:
        batches: List[Optional[LayerPerturbationBatch]] = []
        for index, layer in enumerate(layers):
            u_map = sigma_maps.get(f"U_L{index}")
            v_map = sigma_maps.get(f"VH_L{index}")
            batches.append(
                LayerPerturbationBatch(
                    u=sample_mesh_perturbation_batch(
                        layer.mesh_u, model, generators,
                        sigma_phs_per_mzi=u_map, sigma_bes_per_mzi=u_map,
                    ),
                    v=sample_mesh_perturbation_batch(
                        layer.mesh_v, model, generators,
                        sigma_phs_per_mzi=v_map, sigma_bes_per_mzi=v_map,
                    ),
                    sigma=sample_diagonal_perturbation_batch(
                        layer.diagonal.num_mzis, model, generators
                    ),
                )
            )
        return batches

    return sampler


class NoiseInjector:
    """Draws training-time weight offsets from a hardware variation model.

    Parameters
    ----------
    model:
        Base component-level uncertainty model (the *target* sigma; the
        per-epoch schedule scales it).
    draws:
        Number of perturbation realizations ``K`` per training step.  The
        trainer averages the loss over the draws, giving a ``K``-sample
        estimator of the expected loss under variations.
    recompile_every:
        Training steps between hardware recompilations of the moving
        weights (SVD + mesh decomposition, the expensive part).  1 tracks
        the weights exactly; larger values reuse the perturbation geometry
        of a slightly stale snapshot — the offsets stay well-calibrated
        because the decomposition changes slowly between optimizer steps.
    scheme:
        Mesh topology used for the snapshot compilation.
    sampler:
        Optional :data:`NetworkBatchSampler` replacing the default
        perturbation process (zonal / thermal / correlated variation
        structure).  Mutually exclusive with ``process``.
    process:
        Optional :class:`~repro.variation.process.PerturbationProcess`
        supplying the ``K`` draws (the injector consumes the process's
        fabrication-draw marginal — training noise is i.i.d. across
        optimizer steps; *temporal* evolution belongs to the timeline
        sweep).  Defaults to
        :class:`~repro.variation.process.IIDGaussianProcess`, which is
        bit-identical to the historical raw-sampler path.  Mutually
        exclusive with ``sampler``.
    rng:
        Seed or generator for the injected noise (independent of the
        trainer's batch-shuffling stream).
    incremental:
        Recompile snapshots **incrementally**: instead of rebuilding every
        :class:`~repro.mesh.svd_layer.PhotonicLinearLayer` from scratch,
        the cached layers are warm-started in place
        (:meth:`~repro.mesh.svd_layer.PhotonicLinearLayer.retune_from_weight`:
        rotation-updated SVD in the cached basis + trusted fast Clements
        phase re-nulling + structural reuse).  Every incremental recompile
        is validated by reconstruction (``<= 1e-7``) and falls back to the
        exact path when the warm start diverges; ``drift_threshold``
        additionally promotes a refresh to an exact recompile when the
        weights jumped far since the previous snapshot (warm starts are
        built for the small moves between optimizer steps).  Off by
        default — the
        incremental snapshot is numerically equivalent but not bit-identical
        to a fresh compile, so the default training path stays byte-stable.
    drift_threshold:
        Maximum relative Frobenius move ``|W - W_snapshot| / |W_snapshot|``
        since the previous snapshot (the worst layer counts) tolerated
        before an incremental refresh is promoted to an exact one.
    reuse_draws:
        Amortize the ``K`` perturbation draws over the recompile window:
        the offsets depend only on the compiled snapshot and the scheduled
        sigma — not on the minibatch — so one draw per window is a valid
        estimator of the same expected loss with the per-step sampling and
        stacked mesh evaluation removed.  The cache is invalidated by every
        recompile; a sigma-scale change (a
        :class:`~repro.training.schedule.PerturbationSchedule` epoch
        boundary) rescales the cached draws in place for the built-in
        Gaussian sampler (its perturbations are exactly proportional to the
        jointly scaled sigmas) and redraws for custom samplers, whose scale
        response is theirs to define.  Off by default (bit-identical PR 3
        behavior: fresh draws every step).  In this mode the returned
        offset arrays are owned by the injector and valid until the next
        ``weight_offsets`` call.
    workspace:
        Optional :class:`~repro.training.workspace.VectorizedWorkspace`
        supplying reusable offset buffers on the non-amortized path
        (amortized draws already recycle their own cache).  Purely an
        allocation optimization; values are bit-identical.
    device:
        ``"gpu"`` runs the K-draw forward — the stacked mesh column sweeps
        and the offset subtraction — on the device array backend selected
        by ``REPRO_GPU_ARRAY_BACKEND`` (CuPy by default, ``mock_device``
        for the CPU-only stand-in), exactly like ``device="gpu"`` on the
        Monte Carlo engine.  Draw randomness stays on the host streams, so
        the mock backend is bit-identical and a real GPU matches to
        ``allclose``; the returned offsets are host arrays either way.
        ``"cpu"``/``None`` keeps the host path untouched.
    """

    def __init__(
        self,
        model: UncertaintyModel,
        draws: int = 1,
        recompile_every: int = 1,
        scheme: str = "clements",
        sampler: Optional[NetworkBatchSampler] = None,
        process: Optional[PerturbationProcess] = None,
        rng: RNGLike = None,
        incremental: bool = False,
        drift_threshold: float = 1.0,
        reuse_draws: bool = False,
        workspace: Optional[VectorizedWorkspace] = None,
        device: Optional[str] = None,
    ):
        if draws < 1:
            raise ConfigurationError(f"draws must be >= 1, got {draws}")
        if recompile_every < 1:
            raise ConfigurationError(f"recompile_every must be >= 1, got {recompile_every}")
        if drift_threshold <= 0:
            raise ConfigurationError(f"drift_threshold must be positive, got {drift_threshold}")
        if sampler is not None and process is not None:
            raise ConfigurationError(
                "sampler and process are mutually exclusive: a custom sampler "
                "replaces the perturbation process outright"
            )
        self.model = model
        self.draws = int(draws)
        self.recompile_every = int(recompile_every)
        self.scheme = scheme
        #: Custom sampler hook, or ``None`` when drawing through ``process``.
        self.sampler: Optional[NetworkBatchSampler] = sampler
        #: The perturbation process serving the K-draw path (``None`` only
        #: when a custom ``sampler`` replaces the seam).
        self.process: Optional[PerturbationProcess] = (
            process if process is not None else (IIDGaussianProcess() if sampler is None else None)
        )
        self.rng = ensure_rng(rng)
        self.incremental = bool(incremental)
        self.drift_threshold = float(drift_threshold)
        self.reuse_draws = bool(reuse_draws)
        self.workspace = workspace
        if device is not None and device not in ("cpu", "gpu"):
            raise ConfigurationError(f"device must be 'cpu', 'gpu' or None, got {device!r}")
        self.device = device
        if device == "gpu":
            # Resolve eagerly so a missing CuPy fails at configuration time.
            from ..execution.backends import default_gpu_array_backend

            self._array_backend = get_array_backend(default_gpu_array_backend())
            self._device_workspace: Optional[VectorizedWorkspace] = VectorizedWorkspace(
                self._array_backend
            )
        else:
            self._array_backend = None
            self._device_workspace = None
        self._layers: List[PhotonicLinearLayer] = []
        self._nominal: List[np.ndarray] = []
        self._steps_since_compile: Optional[int] = None  # None = no snapshot yet
        #: Weights of the previous snapshot (the drift-threshold anchor).
        self._anchor_weights: List[np.ndarray] = []
        # Amortized-draw cache: offsets + the perturbation batches that
        # produced them, keyed by the sigma scale they were drawn at.
        self._cached_offsets: Optional[List[np.ndarray]] = None
        self._cached_batches: Optional[List[Optional[LayerPerturbationBatch]]] = None
        self._cached_scale: Optional[float] = None
        #: Exact recompiles / warm recompiles performed (observability).
        self.exact_recompiles = 0
        self.incremental_recompiles = 0

    # ------------------------------------------------------------------ #
    # snapshot management
    # ------------------------------------------------------------------ #
    @property
    def snapshot_layers(self) -> List[PhotonicLinearLayer]:
        """The photonic layers of the current hardware snapshot (may be empty)."""
        return list(self._layers)

    def refresh_snapshot(self, weights: Sequence[np.ndarray]) -> None:
        """Recompile the hardware snapshot from the given weight matrices."""
        self._layers = [PhotonicLinearLayer(weight, scheme=self.scheme) for weight in weights]
        self._nominal = [layer.ideal_matrix() for layer in self._layers]
        self._steps_since_compile = 0
        self._anchor_weights = [np.array(weight, dtype=np.complex128, copy=True) for weight in weights]
        self._invalidate_draw_cache()
        self.exact_recompiles += 1

    def _relative_drift(self, weights: Sequence[np.ndarray]) -> float:
        """Worst-layer relative Frobenius move since the previous snapshot."""
        drift = 0.0
        for weight, anchor in zip(weights, self._anchor_weights):
            denominator = float(np.linalg.norm(anchor))
            if denominator == 0.0:
                return float("inf")
            drift = max(drift, float(np.linalg.norm(weight - anchor)) / denominator)
        return drift

    def _refresh_snapshot_incremental(self, weights: Sequence[np.ndarray]) -> None:
        """Warm-start the cached layers in place; exact recompile on any doubt."""
        if (
            len(self._layers) != len(weights)
            or not self._anchor_weights
            or any(
                layer.weight.shape != np.shape(weight)
                for layer, weight in zip(self._layers, weights)
            )
            or self._relative_drift(weights) > self.drift_threshold
        ):
            self.refresh_snapshot(weights)
            return
        for layer, weight in zip(self._layers, weights):
            if not layer.retune_from_weight(weight):
                # The warm start diverged; rebuild the whole snapshot
                # exactly (retune leaves the failed layer unspecified).
                self.refresh_snapshot(weights)
                return
        self._nominal = [layer.ideal_matrix() for layer in self._layers]
        self._steps_since_compile = 0
        self._anchor_weights = [np.array(weight, dtype=np.complex128, copy=True) for weight in weights]
        self._invalidate_draw_cache()
        self.incremental_recompiles += 1

    def _maybe_refresh(self, weights: Sequence[np.ndarray]) -> None:
        if (
            self._steps_since_compile is None
            or self._steps_since_compile >= self.recompile_every
            or len(self._layers) != len(weights)
        ):
            if self.incremental and self._steps_since_compile is not None:
                self._refresh_snapshot_incremental(weights)
            else:
                self.refresh_snapshot(weights)

    # ------------------------------------------------------------------ #
    # amortized-draw cache
    # ------------------------------------------------------------------ #
    def _invalidate_draw_cache(self) -> None:
        self._cached_offsets = None
        self._cached_batches = None
        self._cached_scale = None

    # ------------------------------------------------------------------ #
    # offset sampling
    # ------------------------------------------------------------------ #
    def weight_offsets(
        self, weights: Sequence[np.ndarray], sigma_scale: float = 1.0
    ) -> Optional[List[np.ndarray]]:
        """``K`` stacked effective-weight offsets per layer, or ``None``.

        Parameters
        ----------
        weights:
            Current software weight matrices, one per linear layer.
        sigma_scale:
            Schedule multiplier applied to the base model's sigmas; 0 (or a
            null base model) skips the draw entirely and returns ``None``
            (train this step noise-free).

        Returns
        -------
        list of numpy.ndarray or None
            One ``(K, out, in)`` complex offset array per layer: realization
            ``k`` of layer ``l`` is ``perturbed_matrix - nominal_matrix`` of
            the current hardware snapshot, to be *added* to the live weight.
        """
        if sigma_scale < 0:
            raise ConfigurationError(f"sigma_scale must be non-negative, got {sigma_scale}")
        scaled = self.model.with_sigma(
            self.model.sigma_phs * sigma_scale, self.model.sigma_bes * sigma_scale
        )
        if sigma_scale == 0.0 or scaled.is_null:
            # Still age the snapshot so the recompile cadence counts real
            # optimizer steps, not just noisy ones (a ramp's early epochs
            # must not freeze the snapshot at the initial weights).
            if self._steps_since_compile is not None:
                self._steps_since_compile += 1
            return None
        self._maybe_refresh(weights)
        if self._array_backend is None:
            offsets = self._resolve_offsets(scaled, sigma_scale)
        else:
            # The draws, the stacked mesh sweeps and the offset subtraction
            # all run device-resident; only the finished (K, out, in)
            # offsets come back for the autograd forward.
            with use_array_backend(self._array_backend) as backend:
                offsets = [
                    backend.to_host(offset)
                    for offset in self._resolve_offsets(scaled, sigma_scale)
                ]
        self._steps_since_compile += 1
        return offsets

    def _resolve_offsets(self, scaled: UncertaintyModel, sigma_scale: float) -> List[np.ndarray]:
        """The per-step offsets under the *active* array backend."""
        if not self.reuse_draws:
            return self._draw_offsets(scaled, use_workspace=True)
        if self._cached_offsets is not None and sigma_scale == self._cached_scale:
            # Same window, same schedule level: the draws only depend on the
            # snapshot and the sigma, both unchanged — reuse them verbatim.
            return self._cached_offsets
        if self._cached_offsets is not None and self._can_rescale_cache():
            self._rescale_draw_cache(sigma_scale / self._cached_scale)
            self._cached_scale = float(sigma_scale)
            return self._cached_offsets
        # New window (or a custom sampler crossing a schedule level):
        # one fresh draw serves every step until the next recompile.
        batches = self._sample_batches(scaled)
        self._cached_batches = batches
        self._cached_offsets = self._offsets_from_batches(batches, use_workspace=False)
        self._cached_scale = float(sigma_scale)
        return self._cached_offsets

    # ------------------------------------------------------------------ #
    # draw internals
    # ------------------------------------------------------------------ #
    def _sample_batches(self, scaled: UncertaintyModel) -> List[Optional[LayerPerturbationBatch]]:
        generators = spawn_rngs(self.rng, self.draws)
        if self.sampler is not None:
            batches = self.sampler(self._layers, scaled, generators)
        else:
            # Default path: the perturbation-process seam.  The i.i.d.
            # process consumes each generator exactly as the historical
            # raw-sampler call did, so the draws are bit-identical.
            batches = self.process.sample_batch(self._layers, scaled, generators)
        if len(batches) != len(self._layers):
            raise ConfigurationError(
                f"sampler returned {len(batches)} layer batches for {len(self._layers)} layers"
            )
        return batches

    def _offsets_from_batches(
        self,
        batches: Sequence[Optional[LayerPerturbationBatch]],
        use_workspace: bool,
    ) -> List[np.ndarray]:
        offsets: List[np.ndarray] = []
        backend = active_array_backend()
        xp = backend.xp
        if backend.is_host:
            workspace = self.workspace if use_workspace else None
        else:
            workspace = self._device_workspace if use_workspace else None
        for index, (layer, host_nominal, batch) in enumerate(zip(self._layers, self._nominal, batches)):
            nominal = host_nominal if backend.is_host else backend.asarray_cached(host_nominal)
            if workspace is not None:
                out = workspace.buffer(
                    ("injector/offsets", index), (self.draws,) + host_nominal.shape, np.complex128
                )
                if batch is None:
                    out[...] = 0.0
                else:
                    xp.subtract(layer.matrix_batch(batch, batch_size=self.draws), nominal, out=out)
                offsets.append(out)
            elif batch is None:
                offsets.append(xp.zeros((self.draws,) + host_nominal.shape, dtype=np.complex128))
            else:
                offsets.append(layer.matrix_batch(batch, batch_size=self.draws) - nominal)
        return offsets

    def _draw_offsets(self, scaled: UncertaintyModel, use_workspace: bool) -> List[np.ndarray]:
        return self._offsets_from_batches(self._sample_batches(scaled), use_workspace)

    def _can_rescale_cache(self) -> bool:
        """Whether cached draws may be rescaled across a schedule level.

        A process that declares
        :attr:`~repro.variation.process.PerturbationProcess.linear_in_sigma`
        produces perturbations exactly proportional to the (jointly scaled)
        model sigmas, so multiplying the cached fields by the scale ratio
        equals drawing the same standard normals at the new sigma.  Custom
        samplers make no such promise (e.g. zonal sigma maps override the
        model's sigma outright) and redraw instead.
        """
        return self.process is not None and self.process.linear_in_sigma

    def _rescale_draw_cache(self, ratio: float) -> None:
        """Scale the cached perturbation batches in place and re-evaluate."""
        for batch in self._cached_batches:
            if batch is None:
                continue
            for stage in (batch.u, batch.v, batch.sigma):
                if stage is not None:
                    stage.scale_in_place(ratio)
        backend = active_array_backend()
        xp = backend.xp
        for index, (layer, nominal, batch) in enumerate(
            zip(self._layers, self._nominal, self._cached_batches)
        ):
            if batch is None:
                self._cached_offsets[index][...] = 0.0
            else:
                xp.subtract(
                    layer.matrix_batch(batch, batch_size=self.draws),
                    nominal if backend.is_host else backend.asarray_cached(nominal),
                    out=self._cached_offsets[index],
                )

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"NoiseInjector(draws={self.draws}, recompile_every={self.recompile_every}, "
            f"sigma_phs={self.model.sigma_phs}, sigma_bes={self.model.sigma_bes}, "
            f"incremental={self.incremental}, reuse_draws={self.reuse_draws})"
        )
