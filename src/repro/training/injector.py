"""Noise injection: turning variation models into training-time weight noise.

The Monte Carlo experiments perturb a *finished* network; noise-aware
training needs the same perturbations *while the weights are still moving*.
:class:`NoiseInjector` bridges the two worlds: it periodically compiles the
current software weights onto photonic hardware (SVD + Clements, exactly the
mapping the finished network will undergo), draws ``K`` perturbation
realizations per training step from the existing :mod:`repro.variation`
models, and hands back the *effective weight offsets*

.. math::

    \\Delta W_k = M(\\text{hardware} \\mid \\text{perturbation}_k) - M(\\text{hardware} \\mid \\text{nominal})

so the trainer can optimize the expected loss over the hardware the weights
will actually become.  The offsets are stacked along a leading batch axis
``(K, out, in)`` — the same vectorization the batched Monte Carlo engine
uses — so one forward pass evaluates all ``K`` draws at once.

Reproducibility: the injector consumes its own generator through
:func:`repro.utils.rng.spawn_rngs` (one child stream per draw, exactly like
the Monte Carlo engine), so a fixed seed reproduces the injected noise
sequence bit for bit no matter how the surrounding evaluation is scheduled.

Custom variation structure (zonal maps, thermal crosstalk, correlated FPV)
plugs in through the ``sampler`` hook; :func:`per_mesh_sigma_sampler` builds
the zonal case from the ``U_L*``/``VH_L*`` sigma maps of
:class:`~repro.variation.zones.ZoneGrid`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..mesh.svd_layer import LayerPerturbationBatch, PhotonicLinearLayer
from ..utils.rng import RNGLike, ensure_rng, spawn_rngs
from ..variation.models import UncertaintyModel
from ..variation.sampler import (
    sample_diagonal_perturbation_batch,
    sample_layer_perturbation_batch,
    sample_mesh_perturbation_batch,
)

#: Batched network sampler hook: ``(layers, model, generators) -> one
#: LayerPerturbationBatch per layer``.  The default is the global Gaussian
#: sampler; zonal/thermal variation structure plugs in here.
NetworkBatchSampler = Callable[
    [Sequence[PhotonicLinearLayer], UncertaintyModel, Sequence[np.random.Generator]],
    List[Optional[LayerPerturbationBatch]],
]


def global_network_sampler(
    layers: Sequence[PhotonicLinearLayer],
    model: UncertaintyModel,
    generators: Sequence[np.random.Generator],
) -> List[Optional[LayerPerturbationBatch]]:
    """The default sampler: i.i.d. Gaussian perturbations on every MZI."""
    return [sample_layer_perturbation_batch(layer, model, generators) for layer in layers]


def per_mesh_sigma_sampler(sigma_maps: Dict[str, np.ndarray]) -> NetworkBatchSampler:
    """Sampler with per-MZI normalized sigma overrides on selected meshes.

    ``sigma_maps`` maps paper-style unitary names (``"U_L0"``, ``"VH_L2"``,
    ...) to per-MZI normalized sigma arrays, e.g. the zonal maps produced by
    :meth:`repro.variation.zones.ZoneGrid.sigma_map`.  Meshes without an
    entry follow the injector's base model unchanged; Sigma stages always
    follow the base model.
    """
    sigma_maps = {name: np.asarray(values, dtype=np.float64) for name, values in sigma_maps.items()}

    def sampler(
        layers: Sequence[PhotonicLinearLayer],
        model: UncertaintyModel,
        generators: Sequence[np.random.Generator],
    ) -> List[Optional[LayerPerturbationBatch]]:
        batches: List[Optional[LayerPerturbationBatch]] = []
        for index, layer in enumerate(layers):
            u_map = sigma_maps.get(f"U_L{index}")
            v_map = sigma_maps.get(f"VH_L{index}")
            batches.append(
                LayerPerturbationBatch(
                    u=sample_mesh_perturbation_batch(
                        layer.mesh_u, model, generators,
                        sigma_phs_per_mzi=u_map, sigma_bes_per_mzi=u_map,
                    ),
                    v=sample_mesh_perturbation_batch(
                        layer.mesh_v, model, generators,
                        sigma_phs_per_mzi=v_map, sigma_bes_per_mzi=v_map,
                    ),
                    sigma=sample_diagonal_perturbation_batch(
                        layer.diagonal.num_mzis, model, generators
                    ),
                )
            )
        return batches

    return sampler


class NoiseInjector:
    """Draws training-time weight offsets from a hardware variation model.

    Parameters
    ----------
    model:
        Base component-level uncertainty model (the *target* sigma; the
        per-epoch schedule scales it).
    draws:
        Number of perturbation realizations ``K`` per training step.  The
        trainer averages the loss over the draws, giving a ``K``-sample
        estimator of the expected loss under variations.
    recompile_every:
        Training steps between hardware recompilations of the moving
        weights (SVD + mesh decomposition, the expensive part).  1 tracks
        the weights exactly; larger values reuse the perturbation geometry
        of a slightly stale snapshot — the offsets stay well-calibrated
        because the decomposition changes slowly between optimizer steps.
    scheme:
        Mesh topology used for the snapshot compilation.
    sampler:
        Optional :data:`NetworkBatchSampler` replacing the global Gaussian
        sampler (zonal / thermal / correlated variation structure).
    rng:
        Seed or generator for the injected noise (independent of the
        trainer's batch-shuffling stream).
    """

    def __init__(
        self,
        model: UncertaintyModel,
        draws: int = 1,
        recompile_every: int = 1,
        scheme: str = "clements",
        sampler: Optional[NetworkBatchSampler] = None,
        rng: RNGLike = None,
    ):
        if draws < 1:
            raise ConfigurationError(f"draws must be >= 1, got {draws}")
        if recompile_every < 1:
            raise ConfigurationError(f"recompile_every must be >= 1, got {recompile_every}")
        self.model = model
        self.draws = int(draws)
        self.recompile_every = int(recompile_every)
        self.scheme = scheme
        self.sampler: NetworkBatchSampler = sampler if sampler is not None else global_network_sampler
        self.rng = ensure_rng(rng)
        self._layers: List[PhotonicLinearLayer] = []
        self._nominal: List[np.ndarray] = []
        self._steps_since_compile: Optional[int] = None  # None = no snapshot yet

    # ------------------------------------------------------------------ #
    # snapshot management
    # ------------------------------------------------------------------ #
    @property
    def snapshot_layers(self) -> List[PhotonicLinearLayer]:
        """The photonic layers of the current hardware snapshot (may be empty)."""
        return list(self._layers)

    def refresh_snapshot(self, weights: Sequence[np.ndarray]) -> None:
        """Recompile the hardware snapshot from the given weight matrices."""
        self._layers = [PhotonicLinearLayer(weight, scheme=self.scheme) for weight in weights]
        self._nominal = [layer.ideal_matrix() for layer in self._layers]
        self._steps_since_compile = 0

    def _maybe_refresh(self, weights: Sequence[np.ndarray]) -> None:
        if (
            self._steps_since_compile is None
            or self._steps_since_compile >= self.recompile_every
            or len(self._layers) != len(weights)
        ):
            self.refresh_snapshot(weights)

    # ------------------------------------------------------------------ #
    # offset sampling
    # ------------------------------------------------------------------ #
    def weight_offsets(
        self, weights: Sequence[np.ndarray], sigma_scale: float = 1.0
    ) -> Optional[List[np.ndarray]]:
        """``K`` stacked effective-weight offsets per layer, or ``None``.

        Parameters
        ----------
        weights:
            Current software weight matrices, one per linear layer.
        sigma_scale:
            Schedule multiplier applied to the base model's sigmas; 0 (or a
            null base model) skips the draw entirely and returns ``None``
            (train this step noise-free).

        Returns
        -------
        list of numpy.ndarray or None
            One ``(K, out, in)`` complex offset array per layer: realization
            ``k`` of layer ``l`` is ``perturbed_matrix - nominal_matrix`` of
            the current hardware snapshot, to be *added* to the live weight.
        """
        if sigma_scale < 0:
            raise ConfigurationError(f"sigma_scale must be non-negative, got {sigma_scale}")
        scaled = self.model.with_sigma(
            self.model.sigma_phs * sigma_scale, self.model.sigma_bes * sigma_scale
        )
        if sigma_scale == 0.0 or scaled.is_null:
            # Still age the snapshot so the recompile cadence counts real
            # optimizer steps, not just noisy ones (a ramp's early epochs
            # must not freeze the snapshot at the initial weights).
            if self._steps_since_compile is not None:
                self._steps_since_compile += 1
            return None
        self._maybe_refresh(weights)
        generators = spawn_rngs(self.rng, self.draws)
        batches = self.sampler(self._layers, scaled, generators)
        if len(batches) != len(self._layers):
            raise ConfigurationError(
                f"sampler returned {len(batches)} layer batches for {len(self._layers)} layers"
            )
        offsets: List[np.ndarray] = []
        for layer, nominal, batch in zip(self._layers, self._nominal, batches):
            if batch is None:
                offsets.append(np.zeros((self.draws,) + nominal.shape, dtype=np.complex128))
            else:
                offsets.append(layer.matrix_batch(batch, batch_size=self.draws) - nominal)
        self._steps_since_compile += 1
        return offsets

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"NoiseInjector(draws={self.draws}, recompile_every={self.recompile_every}, "
            f"sigma_phs={self.model.sigma_phs}, sigma_bes={self.model.sigma_bes})"
        )
