"""Noise-aware (variation-injected) training of the SPNN software model.

Standard training optimizes the loss of the *ideal* weight matrices; the
paper then shows that the compiled hardware realizing those matrices under
fabrication/thermal variations loses most of its accuracy.
:class:`NoiseAwareTrainer` closes that gap by optimizing the **expected loss
under variations**: every minibatch is evaluated through ``K`` perturbed
copies of the effective weight matrices,

.. math::

    L = \\frac{1}{K} \\sum_{k=1}^{K} \\ell\\bigl(f(x; W + \\Delta W_k), y\\bigr),

where the offsets :math:`\\Delta W_k` come from a
:class:`~repro.training.injector.NoiseInjector` (hardware-calibrated draws
of the :mod:`repro.variation` models) and a
:class:`~repro.training.schedule.PerturbationSchedule` scales the injected
sigma per epoch.  The ``K`` draws ride a leading batch axis through one
vectorized forward/backward pass — the same layout the batched Monte Carlo
engine established — and the gradients of all draws accumulate into the
single shared weight (the noise is a constant in the graph, so this is the
straight-through estimator of the expected-loss gradient).

The trainer subclasses :class:`repro.nn.trainer.Trainer` and overrides only
the :meth:`~repro.nn.trainer.Trainer.training_step` hook: epoch loop,
shuffling, gradient clipping, history, early stopping and evaluation are
shared with ordinary software training.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autograd.tensor import Tensor, as_tensor
from ..exceptions import ConfigurationError, ShapeError
from ..nn.layers import ComplexLinear
from ..nn.losses import CrossEntropyLoss
from ..nn.module import Module, Sequential
from ..nn.optim import Optimizer
from ..nn.trainer import Trainer, TrainerConfig
from ..observability.recorder import active as _active_recorder
from ..utils.rng import RNGLike
from .injector import NoiseInjector
from .schedule import PerturbationSchedule
from .workspace import VectorizedWorkspace


def complex_linear_modules(model: Sequential) -> List[ComplexLinear]:
    """The :class:`ComplexLinear` modules of a sequential model, in forward order."""
    if not isinstance(model, Sequential):
        raise ConfigurationError(
            f"noise-aware training requires a Sequential model (ordered layers), got {type(model)!r}"
        )
    return [module for module in model if isinstance(module, ComplexLinear)]


def forward_with_weight_offsets(
    model: Sequential,
    features: np.ndarray,
    offsets: Sequence[np.ndarray],
) -> Tensor:
    """Forward pass with additive per-draw offsets on every complex weight.

    Parameters
    ----------
    model:
        Sequential software model (the paper's SPNN pipeline).
    features:
        Minibatch of shape ``(batch, in_features)``.
    offsets:
        One ``(K, out, in)`` complex array per :class:`ComplexLinear`
        module, added to the live weight as a constant (gradients flow to
        the weight, not the noise).

    Returns
    -------
    Tensor
        Outputs of shape ``(K, batch, classes)`` — draw ``k`` is the model
        evaluated with every weight ``W_l`` replaced by ``W_l +
        offsets[l][k]``.
    """
    linears = complex_linear_modules(model)
    offsets = list(offsets)
    if len(offsets) != len(linears):
        raise ShapeError(
            f"expected {len(linears)} offset arrays (one per ComplexLinear), got {len(offsets)}"
        )
    draws = None
    for index, (module, offset) in enumerate(zip(linears, offsets)):
        offset = np.asarray(offset)
        expected = (module.out_features, module.in_features)
        if offset.ndim != 3 or offset.shape[1:] != expected:
            raise ShapeError(
                f"offsets[{index}] must have shape (K, {expected[0]}, {expected[1]}), got {offset.shape}"
            )
        if draws is None:
            draws = offset.shape[0]
        elif offset.shape[0] != draws:
            raise ShapeError(
                f"offsets[{index}] has {offset.shape[0]} draws, expected {draws}"
            )

    activations = as_tensor(features)
    linear_index = 0
    for module in model:
        if isinstance(module, ComplexLinear):
            # (K, out, in) -> (K, in, out); x @ W_eff^T broadcasts the
            # minibatch over the K draws in one stacked matmul, and the
            # matmul backward un-broadcasts the weight gradient by summing
            # over K — exactly the expected-loss gradient estimator.
            effective = module.weight + Tensor(offsets[linear_index])
            activations = activations @ effective.transpose((0, 2, 1))
            if module.bias is not None:
                activations = activations + module.bias
            linear_index += 1
        else:
            activations = module(activations)
    return activations


class NoiseAwareTrainer(Trainer):
    """Trains a software model against hardware-calibrated weight noise.

    Parameters
    ----------
    model:
        Sequential software model (its :class:`ComplexLinear` layers are
        the ones that receive injected noise).
    optimizer:
        Optimizer bound to ``model.parameters()``.
    injector:
        Source of the per-step weight offsets (variation model, draw count,
        recompile cadence).
    schedule:
        Per-epoch sigma scaling; defaults to constant full-sigma injection.
    loss_fn, config, rng:
        As in :class:`~repro.nn.trainer.Trainer`.
    reuse_draws, incremental_recompile:
        Opt-in performance modes forwarded onto the injector (``None``
        leaves the injector as configured): amortize the ``K`` perturbation
        draws over each recompile window, and recompile snapshots
        incrementally (warm-started SVD + in-place mesh retune with an
        exact fallback).  Both change only *which* equally valid noise the
        estimator sees, never the estimator itself; the default (both off)
        is bit-identical to the original per-step-draw, exact-recompile
        trainer.  See :class:`~repro.training.injector.NoiseInjector`.
        Note these knobs **reconfigure the passed injector in place**: an
        injector belongs to exactly one trainer anyway (it carries the
        noise RNG stream and the snapshot/draw caches, which sharing would
        interleave), so construct a fresh injector per trainer.
    workspace:
        Optional shared :class:`~repro.training.workspace.VectorizedWorkspace`
        backing the per-step scratch buffers (injected offsets, tiled
        targets) with reusable allocations.  Bit-identical; pass
        :func:`~repro.training.workspace.process_workspace` to share one
        arena with the batched Monte Carlo engine of the same process.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        injector: NoiseInjector,
        schedule: Optional[PerturbationSchedule] = None,
        loss_fn=None,
        config: Optional[TrainerConfig] = None,
        rng: RNGLike = None,
        reuse_draws: Optional[bool] = None,
        incremental_recompile: Optional[bool] = None,
        workspace: Optional[VectorizedWorkspace] = None,
    ):
        super().__init__(model, optimizer, loss_fn=loss_fn, config=config, rng=rng)
        self._linears = complex_linear_modules(model)  # validates the model shape
        self.injector = injector
        self.schedule = schedule if schedule is not None else PerturbationSchedule.constant()
        if reuse_draws is not None:
            injector.reuse_draws = bool(reuse_draws)
        if incremental_recompile is not None:
            injector.incremental = bool(incremental_recompile)
        self.workspace = workspace
        if workspace is not None and injector.workspace is None:
            injector.workspace = workspace
        if not isinstance(self.loss_fn, Module) and not callable(self.loss_fn):  # pragma: no cover
            raise ConfigurationError("loss_fn must be callable")

    # ------------------------------------------------------------------ #
    @property
    def current_sigma_scale(self) -> float:
        """The schedule's sigma scale for the epoch currently training."""
        return self.schedule.scale(self.epoch, self.config.epochs)

    def _weights(self) -> List[np.ndarray]:
        return [module.weight.data for module in self._linears]

    def _progress_extra(self) -> dict:
        return {
            "sigma_scale": self.current_sigma_scale,
            "exact_recompiles": self.injector.exact_recompiles,
            "incremental_recompiles": self.injector.incremental_recompiles,
        }

    def training_step(self, batch_x: np.ndarray, batch_y: np.ndarray):
        """Expected loss over ``K`` hardware-noise draws of this minibatch."""
        with _active_recorder().span(
            "train/noise_step", epoch=self.epoch, batch=len(batch_y)
        ) as span:
            offsets = self.injector.weight_offsets(self._weights(), self.current_sigma_scale)
            if offsets is None:
                # Scheduled-off epochs (e.g. the start of a ramp) fall back to
                # the ordinary noise-free step.
                span.set("draws", 0)
                return super().training_step(batch_x, batch_y)
            outputs = forward_with_weight_offsets(self.model, batch_x, offsets)
            draws, batch = outputs.shape[0], outputs.shape[1]
            span.set("draws", int(draws))
            flat = outputs.reshape(draws * batch, outputs.shape[-1])
            if self.workspace is not None:
                tiled_targets = self.workspace.buffer("noise-aware/targets", (draws * batch,), np.int64)
                tiled_targets.reshape(draws, batch)[:] = np.asarray(batch_y, dtype=np.int64)
            else:
                tiled_targets = np.tile(np.asarray(batch_y, dtype=np.int64), draws)
            loss = self.loss_fn(flat, tiled_targets)
            return loss, flat, tiled_targets


def make_noise_aware_trainer(
    model: Sequential,
    optimizer: Optimizer,
    injector: NoiseInjector,
    schedule: Optional[PerturbationSchedule] = None,
    epochs: int = 60,
    batch_size: int = 64,
    clip_grad_norm: Optional[float] = None,
    rng: RNGLike = None,
) -> NoiseAwareTrainer:
    """Convenience constructor mirroring the paper's training setup."""
    return NoiseAwareTrainer(
        model,
        optimizer,
        injector,
        schedule=schedule,
        loss_fn=CrossEntropyLoss(from_log_probs=True),
        config=TrainerConfig(epochs=epochs, batch_size=batch_size, clip_grad_norm=clip_grad_norm),
        rng=rng,
    )
