"""Variation-aware training: harden the SPNN against hardware uncertainties.

The characterization experiments (EXP 1 / EXP 2 / yield) *measure* how SPNN
accuracy collapses under fabrication and thermal variations; this subsystem
*mitigates* the collapse by injecting hardware-calibrated perturbations into
the software training loop:

* :class:`NoiseInjector` — compiles the moving weights onto photonic
  hardware and draws stacked effective-weight offsets from the
  :mod:`repro.variation` models,
* :class:`PerturbationSchedule` — constant / linear-ramp / curriculum
  scaling of the injected sigma over the epochs,
* :class:`NoiseAwareTrainer` — a :class:`repro.nn.Trainer` subclass whose
  training step averages the loss over ``K`` noise draws (vectorized along
  a leading batch axis),
* :class:`VectorizedWorkspace` — the shared scratch-buffer arena behind
  the stacked ``(K·B, ...)`` hot paths (also used by the batched Monte
  Carlo engine).

The injector's opt-in performance modes (``incremental`` warm-started
recompilation, ``reuse_draws`` window-amortized draws) are what make
noise-aware training cost a small multiple — not ~25x — of the plain loop;
see :class:`NoiseInjector` and the ``benchmarks/bench_noise_aware_training``
speed section.

The end-to-end workload lives in
:mod:`repro.experiments.exp3_robust_training` (CLI: ``spnn-repro robust``).
"""

from .injector import (
    NetworkBatchSampler,
    NoiseInjector,
    global_network_sampler,
    per_mesh_sigma_sampler,
)
from .noise_aware import (
    NoiseAwareTrainer,
    complex_linear_modules,
    forward_with_weight_offsets,
    make_noise_aware_trainer,
)
from .schedule import SCHEDULE_KINDS, PerturbationSchedule
from .workspace import VectorizedWorkspace, process_workspace, reset_process_workspace

__all__ = [
    "NoiseInjector",
    "NetworkBatchSampler",
    "global_network_sampler",
    "per_mesh_sigma_sampler",
    "PerturbationSchedule",
    "SCHEDULE_KINDS",
    "NoiseAwareTrainer",
    "make_noise_aware_trainer",
    "forward_with_weight_offsets",
    "complex_linear_modules",
    "VectorizedWorkspace",
    "process_workspace",
    "reset_process_workspace",
]
