"""Physical device models: phase shifters, beam splitters, MZIs, amplifiers."""

from . import constants
from .amplifier import GainStage, OpticalAmplifier
from .beam_splitter import BeamSplitter
from .mzi import (
    MZI,
    mzi_element_relative_deviation,
    mzi_first_order_deviation,
    mzi_jacobian,
    mzi_relative_deviation,
    mzi_transfer,
    mzi_transfer_nonideal,
)
from .phase_shifter import PhaseShifter, phase_from_temperature, temperature_for_phase

__all__ = [
    "constants",
    "PhaseShifter",
    "phase_from_temperature",
    "temperature_for_phase",
    "BeamSplitter",
    "MZI",
    "mzi_transfer",
    "mzi_transfer_nonideal",
    "mzi_jacobian",
    "mzi_first_order_deviation",
    "mzi_relative_deviation",
    "mzi_element_relative_deviation",
    "OpticalAmplifier",
    "GainStage",
]
