"""Physical constants and default device parameters for the photonic models.

Values follow the paper (§III-A) and its references: operation at the
1550 nm telecom wavelength, silicon thermo-optic coefficient
``dn/dT ~ 1.8e-4 K^-1`` at 300 K.
"""

from __future__ import annotations

#: Operating wavelength [m] (1550 nm, paper §III-A).
DEFAULT_WAVELENGTH = 1550e-9

#: Thermo-optic coefficient of silicon at 1550 nm and 300 K [1/K] (paper §III-A).
SILICON_THERMO_OPTIC_COEFFICIENT = 1.8e-4

#: Nominal operating temperature [K].
DEFAULT_TEMPERATURE = 300.0

#: Default thermo-optic phase-shifter length [m].  A few tens of microns is a
#: typical heater length on the SOI platform (Jacques et al., 2019 — paper [10]).
DEFAULT_PHASE_SHIFTER_LENGTH = 100e-6

#: Ideal 50:50 beam-splitter transmittance/reflectance amplitude (1/sqrt(2)).
IDEAL_SPLITTER_AMPLITUDE = 0.7071067811865476

#: Phase-angle standard error reported for mature fabrication processes
#: [radians] (Flamini et al. 2017 — paper [4], quoted in §III-A as ~0.21 rad).
MATURE_PROCESS_PHASE_ERROR = 0.21

#: The same error expressed as a fraction of the full 2*pi phase range
#: (0.21 / 2*pi ~ 3.34%, paper §III-A).
MATURE_PROCESS_PHASE_ERROR_FRACTION = 0.0334

#: Typical relative error expected in beam-splitter r/t parameters (1-2%,
#: paper §III-A citing [4]).
TYPICAL_SPLITTER_ERROR_FRACTION = 0.02

#: Number of classes / random-guess accuracy for the MNIST task (paper §III-D).
RANDOM_GUESS_ACCURACY = 0.10
