"""Thermo-optic phase-shifter model (paper §II-A, §III-A).

A phase shifter applies a configurable phase ``phi`` to the optical field in
one waveguide arm.  In the thermo-optic implementation the phase is set by a
micro-heater: the temperature change ``dT`` modifies the silicon refractive
index through the thermo-optic coefficient, giving::

    d_phi = (2 * pi * l / lambda0) * (dn/dT) * dT

Fabrication-process variations perturb the heater/waveguide length ``l`` and
thermal crosstalk perturbs ``dT``; both appear to the network as phase-angle
errors, which is exactly how the paper injects uncertainty (Gaussian noise
on the tuned phase angles).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..utils.validation import check_positive
from . import constants


def phase_from_temperature(
    delta_temperature: float,
    length: float = constants.DEFAULT_PHASE_SHIFTER_LENGTH,
    wavelength: float = constants.DEFAULT_WAVELENGTH,
    thermo_optic_coefficient: float = constants.SILICON_THERMO_OPTIC_COEFFICIENT,
) -> float:
    """Phase change [rad] produced by a heater temperature change [K].

    Implements the paper's expression ``d_phi = (2*pi*l/lambda0) (dn/dT) dT``.
    """
    check_positive(length, "length")
    check_positive(wavelength, "wavelength")
    check_positive(thermo_optic_coefficient, "thermo_optic_coefficient")
    return (2.0 * np.pi * length / wavelength) * thermo_optic_coefficient * float(delta_temperature)


def temperature_for_phase(
    phase: float,
    length: float = constants.DEFAULT_PHASE_SHIFTER_LENGTH,
    wavelength: float = constants.DEFAULT_WAVELENGTH,
    thermo_optic_coefficient: float = constants.SILICON_THERMO_OPTIC_COEFFICIENT,
) -> float:
    """Heater temperature change [K] required to reach ``phase`` [rad].

    Inverse of :func:`phase_from_temperature`; used by the thermal-crosstalk
    model to convert tuned phases into heater drive temperatures.
    """
    check_positive(length, "length")
    check_positive(wavelength, "wavelength")
    check_positive(thermo_optic_coefficient, "thermo_optic_coefficient")
    return float(phase) * wavelength / (2.0 * np.pi * length * thermo_optic_coefficient)


@dataclass(frozen=True)
class PhaseShifter:
    """A single thermo-optic phase shifter.

    Parameters
    ----------
    phase:
        Tuned (programmed) phase [rad].
    length:
        Physical heater/waveguide length [m]; FPVs act on this value.
    wavelength:
        Operating wavelength [m].
    thermo_optic_coefficient:
        dn/dT of the waveguide core material [1/K].
    """

    phase: float = 0.0
    length: float = constants.DEFAULT_PHASE_SHIFTER_LENGTH
    wavelength: float = constants.DEFAULT_WAVELENGTH
    thermo_optic_coefficient: float = constants.SILICON_THERMO_OPTIC_COEFFICIENT

    def __post_init__(self) -> None:
        check_positive(self.length, "length")
        check_positive(self.wavelength, "wavelength")
        check_positive(self.thermo_optic_coefficient, "thermo_optic_coefficient")

    # ------------------------------------------------------------------ #
    @property
    def transfer(self) -> complex:
        """Scalar field transfer function ``exp(i * phase)``."""
        return complex(np.exp(1j * self.phase))

    def transfer_matrix(self) -> np.ndarray:
        """2x2 transfer matrix of a phase shifter on the *upper* arm.

        Matches ``U_PhS`` in the paper's Eq. (1): ``diag(e^{i phase}, 1)``.
        """
        return np.array([[np.exp(1j * self.phase), 0.0], [0.0, 1.0]], dtype=np.complex128)

    # ------------------------------------------------------------------ #
    @property
    def drive_temperature(self) -> float:
        """Heater temperature change [K] needed to produce ``phase``."""
        return temperature_for_phase(
            self.phase, self.length, self.wavelength, self.thermo_optic_coefficient
        )

    def with_phase(self, phase: float) -> "PhaseShifter":
        """Return a copy tuned to a new phase."""
        return replace(self, phase=float(phase))

    def with_phase_error(self, delta_phase: float) -> "PhaseShifter":
        """Return a copy with an additive phase error (uncertainty injection)."""
        return replace(self, phase=self.phase + float(delta_phase))

    def with_length_variation(self, relative_error: float) -> "PhaseShifter":
        """Return a copy whose length deviates by ``relative_error`` (FPV).

        The *tuned* drive temperature is kept, so the realized phase scales
        with the length ratio — a length error therefore shows up as a phase
        error, exactly the FPV mechanism described in §III-A.
        """
        new_length = self.length * (1.0 + float(relative_error))
        check_positive(new_length, "perturbed length")
        realized_phase = self.phase * (new_length / self.length)
        return replace(self, length=new_length, phase=realized_phase)

    def with_temperature_crosstalk(self, delta_temperature: float) -> "PhaseShifter":
        """Return a copy heated by a neighbouring actuator (thermal crosstalk)."""
        extra_phase = phase_from_temperature(
            delta_temperature, self.length, self.wavelength, self.thermo_optic_coefficient
        )
        return self.with_phase_error(extra_phase)
