"""2x2 beam-splitter (directional-coupler) model (paper §II-A, §III-A).

A lossless beam splitter transmits a fraction of the input field and couples
the rest to the other output with a 90-degree phase shift (paper Eq. (2))::

    [E0_out]   [ r00   i*t10 ] [E0_in]
    [E1_out] = [ i*t01  r11  ] [E1_in]

with ``r00^2 + t01^2 = 1`` and ``r11^2 + t10^2 = 1``.  For the symmetric
ideal 50:50 splitter ``r = t = 1/sqrt(2)``.  Beam splitters are passive:
once fabricated, their splitting ratio cannot be retuned, so
fabrication-induced deviations in ``r``/``t`` are permanent uncertainties.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import VariationModelError
from . import constants


@dataclass(frozen=True)
class BeamSplitter:
    """A lossless, possibly asymmetric 2x2 beam splitter.

    Parameters
    ----------
    r00, r11:
        Reflectance amplitudes of the two bar paths.
    t01, t10:
        Transmittance amplitudes of the two cross paths.  When omitted they
        are derived from the corresponding reflectances through the lossless
        conditions ``r00^2 + t01^2 = 1`` and ``r11^2 + t10^2 = 1``.
    """

    r00: float = constants.IDEAL_SPLITTER_AMPLITUDE
    r11: float = constants.IDEAL_SPLITTER_AMPLITUDE
    t01: float | None = None
    t10: float | None = None

    def __post_init__(self) -> None:
        for name in ("r00", "r11"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise VariationModelError(f"{name} must be in [0, 1], got {value}")
        if self.t01 is None:
            object.__setattr__(self, "t01", float(np.sqrt(max(0.0, 1.0 - self.r00**2))))
        if self.t10 is None:
            object.__setattr__(self, "t10", float(np.sqrt(max(0.0, 1.0 - self.r11**2))))
        for name in ("t01", "t10"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise VariationModelError(f"{name} must be in [0, 1], got {value}")
        if not np.isclose(self.r00**2 + self.t01**2, 1.0, atol=1e-9):
            raise VariationModelError(
                f"lossless condition violated: r00^2 + t01^2 = {self.r00**2 + self.t01**2:.6f}"
            )
        if not np.isclose(self.r11**2 + self.t10**2, 1.0, atol=1e-9):
            raise VariationModelError(
                f"lossless condition violated: r11^2 + t10^2 = {self.r11**2 + self.t10**2:.6f}"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def ideal(cls) -> "BeamSplitter":
        """The ideal symmetric 50:50 splitter (r = t = 1/sqrt(2))."""
        return cls()

    @classmethod
    def symmetric(cls, reflectance: float) -> "BeamSplitter":
        """A symmetric splitter with equal reflectances ``r00 = r11``."""
        return cls(r00=float(reflectance), r11=float(reflectance))

    @classmethod
    def from_reflectance_error(cls, delta_r: float) -> "BeamSplitter":
        """A symmetric splitter whose reflectance deviates by ``delta_r`` from ideal.

        The deviated value is clipped to the physical range [0, 1]; the
        transmittance follows from the lossless condition, matching how the
        paper perturbs ``r`` with Gaussian noise around ``1/sqrt(2)``.
        """
        r = float(np.clip(constants.IDEAL_SPLITTER_AMPLITUDE + delta_r, 0.0, 1.0))
        return cls.symmetric(r)

    # ------------------------------------------------------------------ #
    # physics
    # ------------------------------------------------------------------ #
    def transfer_matrix(self) -> np.ndarray:
        """2x2 field transfer matrix of the paper's Eq. (2)."""
        return np.array(
            [
                [self.r00, 1j * self.t10],
                [1j * self.t01, self.r11],
            ],
            dtype=np.complex128,
        )

    @property
    def is_symmetric(self) -> bool:
        """True when both paths share the same reflectance/transmittance."""
        return bool(np.isclose(self.r00, self.r11) and np.isclose(self.t01, self.t10))

    @property
    def is_ideal(self, atol: float = 1e-12) -> bool:
        """True for an ideal 50:50 splitter."""
        return bool(
            np.isclose(self.r00, constants.IDEAL_SPLITTER_AMPLITUDE, atol=atol)
            and np.isclose(self.r11, constants.IDEAL_SPLITTER_AMPLITUDE, atol=atol)
        )

    @property
    def splitting_ratio(self) -> float:
        """Power splitting ratio ``r00^2`` (0.5 for the ideal splitter)."""
        return float(self.r00**2)

    def power_conservation_error(self) -> float:
        """Max deviation of ``B^H B`` from identity (0 for a symmetric lossless splitter)."""
        matrix = self.transfer_matrix()
        return float(np.max(np.abs(matrix.conj().T @ matrix - np.eye(2))))

    def with_variation(self, delta_r00: float, delta_r11: float | None = None) -> "BeamSplitter":
        """Return a splitter whose reflectances are perturbed (FPV injection)."""
        if delta_r11 is None:
            delta_r11 = delta_r00
        r00 = float(np.clip(self.r00 + delta_r00, 0.0, 1.0))
        r11 = float(np.clip(self.r11 + delta_r11, 0.0, 1.0))
        return BeamSplitter(r00=r00, r11=r11)
