"""Mach-Zehnder interferometer (MZI) device model (paper §II-A, §III-B).

An MZI consists of two tunable phase shifters (``phi`` at the input, ``theta``
between the splitters, both on the upper arm) and two nominally 50:50 beam
splitters.  Its ideal 2x2 transfer matrix is the paper's Eq. (1)::

    T(theta, phi) = [ e^{i phi}(e^{i theta}-1)/2      i (e^{i theta}+1)/2   ]
                    [ i e^{i phi}(e^{i theta}+1)/2   -(e^{i theta}-1)/2     ]

Under beam-splitter imperfections the matrix generalizes to the paper's
Eq. (5); under phase errors the first-order deviation is the paper's
Eqs. (3)-(4).  All three forms are implemented here, as closed-form
(vectorizable) functions plus an object-oriented :class:`MZI` built from the
component models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

import numpy as np

from ..arrays import get_namespace
from ..arrays.kernels import mzi_block_components, unit_phasor
from ..utils.validation import as_float_array
from . import constants
from .beam_splitter import BeamSplitter
from .phase_shifter import PhaseShifter

# --------------------------------------------------------------------------- #
# closed-form transfer matrices
# --------------------------------------------------------------------------- #


def _unit_phasor(angle: np.ndarray) -> np.ndarray:
    """``exp(1j * angle)`` assembled from real sin/cos into one buffer.

    Bit-identical to ``np.exp(1j * angle)`` (complex exp of a purely
    imaginary argument reduces to exactly this) while skipping the complex
    temporary and the slower complex-exp kernel on the Monte Carlo hot path.
    Device arrays evaluate through their own namespace (array seam).
    """
    return unit_phasor(get_namespace(angle), angle)


def mzi_transfer(theta, phi) -> np.ndarray:
    """Ideal MZI transfer matrix, Eq. (1) of the paper.

    ``theta`` and ``phi`` may be scalars or broadcastable arrays; the result
    has shape ``broadcast_shape + (2, 2)``.
    """
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    shape = np.broadcast_shapes(theta.shape, phi.shape)
    theta = np.broadcast_to(theta, shape)
    phi = np.broadcast_to(phi, shape)
    e_theta = np.exp(1j * theta)  # host-only path
    e_phi = np.exp(1j * phi)  # host-only path
    out = np.empty(shape + (2, 2), dtype=np.complex128)
    out[..., 0, 0] = e_phi * (e_theta - 1.0) / 2.0
    out[..., 0, 1] = 1j * (e_theta + 1.0) / 2.0
    out[..., 1, 0] = 1j * e_phi * (e_theta + 1.0) / 2.0
    out[..., 1, 1] = -(e_theta - 1.0) / 2.0
    return out


def mzi_transfer_nonideal(theta, phi, r1, t1=None, r2=None, t2=None) -> np.ndarray:
    """Non-ideal MZI transfer matrix with imperfect splitters, Eq. (5).

    Parameters
    ----------
    theta, phi:
        Phase-shifter angles [rad].
    r1, t1:
        Reflectance/transmittance amplitude of the *first* (input-side)
        splitter.  ``t1`` defaults to ``sqrt(1 - r1^2)`` (lossless).
    r2, t2:
        Same for the *second* (output-side) splitter; ``r2`` defaults to
        ``r1``.

    All arguments broadcast; the result has shape ``broadcast + (2, 2)``.
    """
    components = mzi_transfer_components(theta, phi, r1, t1=t1, r2=r2, t2=t2)
    shape = np.broadcast_shapes(*(c.shape for c in components))
    out = np.empty(shape + (2, 2), dtype=np.complex128)
    out[..., 0, 0] = components[0]
    out[..., 0, 1] = components[1]
    out[..., 1, 0] = components[2]
    out[..., 1, 1] = components[3]
    return out


def mzi_transfer_components(theta, phi, r1, t1=None, r2=None, t2=None) -> Tuple[np.ndarray, ...]:
    """The four elements of the non-ideal transfer matrix as separate arrays.

    Same physics as :func:`mzi_transfer_nonideal` but returned as the tuple
    ``(T00, T01, T10, T11)`` with each element of the broadcast shape.  The
    mesh evaluators consume this layout directly: keeping the elements in
    their own contiguous arrays avoids assembling (and later re-gathering)
    the strided ``(..., 2, 2)`` block array on the Monte Carlo hot path.

    The arithmetic lives in :func:`repro.arrays.kernels.mzi_block_components`
    and runs in the namespace of the operands, so device-resident parameter
    batches evaluate on the device while host arrays keep the exact
    historical NumPy call sequence.
    """
    return mzi_block_components(
        get_namespace(theta, phi, r1, t1, r2, t2), theta, phi, r1, t1=t1, r2=r2, t2=t2
    )


def mzi_jacobian(theta, phi) -> Tuple[np.ndarray, np.ndarray]:
    """Partial derivatives ``dT/dtheta`` and ``dT/dphi`` of the ideal MZI (Eq. 3).

    Returns a pair of arrays of shape ``broadcast + (2, 2)``.
    """
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    shape = np.broadcast_shapes(theta.shape, phi.shape)
    theta = np.broadcast_to(theta, shape)
    phi = np.broadcast_to(phi, shape)
    e_theta = np.exp(1j * theta)  # host-only path
    e_phi = np.exp(1j * phi)  # host-only path
    e_both = np.exp(1j * (theta + phi))  # host-only path

    d_theta = np.empty(shape + (2, 2), dtype=np.complex128)
    d_theta[..., 0, 0] = 1j * e_both / 2.0
    d_theta[..., 0, 1] = -e_theta / 2.0
    d_theta[..., 1, 0] = -e_both / 2.0
    d_theta[..., 1, 1] = -1j * e_theta / 2.0

    d_phi = np.empty(shape + (2, 2), dtype=np.complex128)
    d_phi[..., 0, 0] = 1j * e_phi * (e_theta - 1.0) / 2.0
    d_phi[..., 0, 1] = 0.0
    d_phi[..., 1, 0] = -e_phi * (e_theta + 1.0) / 2.0
    d_phi[..., 1, 1] = 0.0
    return d_theta, d_phi


def mzi_first_order_deviation(theta, phi, delta_theta, delta_phi) -> np.ndarray:
    """First-order deviation ``dT = dT/dtheta * dtheta + dT/dphi * dphi`` (Eq. 3)."""
    d_theta, d_phi = mzi_jacobian(theta, phi)
    delta_theta = np.asarray(delta_theta, dtype=np.float64)
    delta_phi = np.asarray(delta_phi, dtype=np.float64)
    return d_theta * delta_theta[..., np.newaxis, np.newaxis] + d_phi * delta_phi[..., np.newaxis, np.newaxis]


def mzi_relative_deviation(theta, phi, k: float) -> np.ndarray:
    """Deviation under a common relative phase error ``K`` (Eq. 4).

    ``K = delta_theta/theta = delta_phi/phi`` — the simplifying assumption the
    paper uses only for the device-level study of Fig. 2.
    """
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    return mzi_first_order_deviation(theta, phi, k * theta, k * phi)


def mzi_element_relative_deviation(theta, phi, k: float, eps: float = 1e-12) -> np.ndarray:
    """``|dT_ij| / |T_ij|`` for the four matrix elements (the quantity plotted in Fig. 2).

    Returns an array of shape ``broadcast + (2, 2)``; entries where the
    nominal element modulus is (numerically) zero are returned as ``nan`` so
    downstream plotting can mask them, mirroring the unbounded relative error
    at zeros of the nominal response.
    """
    nominal = mzi_transfer(theta, phi)
    deviation = mzi_relative_deviation(theta, phi, k)
    magnitude = np.abs(nominal)  # host-only path
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.abs(deviation) / magnitude  # host-only path
    rel = np.where(magnitude < eps, np.nan, rel)  # host-only path
    return rel


# --------------------------------------------------------------------------- #
# component-based device object
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class MZI:
    """A Mach-Zehnder interferometer assembled from component models.

    The transfer matrix is computed by composing the component matrices in
    propagation order ``B2 @ PhS(theta) @ B1 @ PhS(phi)`` (paper Eq. (1));
    with ideal splitters this equals :func:`mzi_transfer` exactly, and with
    symmetric non-ideal splitters it equals :func:`mzi_transfer_nonideal`.

    Parameters
    ----------
    theta_shifter, phi_shifter:
        The internal (``theta``) and input (``phi``) phase shifters.
    splitter_in, splitter_out:
        The two beam splitters (input side first).
    """

    theta_shifter: PhaseShifter = field(default_factory=PhaseShifter)
    phi_shifter: PhaseShifter = field(default_factory=PhaseShifter)
    splitter_in: BeamSplitter = field(default_factory=BeamSplitter.ideal)
    splitter_out: BeamSplitter = field(default_factory=BeamSplitter.ideal)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_angles(cls, theta: float, phi: float) -> "MZI":
        """Ideal-splitter MZI tuned to ``(theta, phi)``."""
        return cls(theta_shifter=PhaseShifter(phase=float(theta)), phi_shifter=PhaseShifter(phase=float(phi)))

    @classmethod
    def cross_state(cls) -> "MZI":
        """MZI in the full cross state (all power to the other port): theta = 0."""
        return cls.from_angles(theta=0.0, phi=0.0)

    @classmethod
    def bar_state(cls) -> "MZI":
        """MZI in the full bar state (all power stays): theta = pi."""
        return cls.from_angles(theta=np.pi, phi=0.0)

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #
    @property
    def theta(self) -> float:
        return float(self.theta_shifter.phase)

    @property
    def phi(self) -> float:
        return float(self.phi_shifter.phase)

    @property
    def angles(self) -> Tuple[float, float]:
        return (self.theta, self.phi)

    @property
    def is_ideal(self) -> bool:
        """True when both splitters are ideal 50:50 couplers."""
        return self.splitter_in.is_ideal and self.splitter_out.is_ideal

    # ------------------------------------------------------------------ #
    # physics
    # ------------------------------------------------------------------ #
    def transfer_matrix(self) -> np.ndarray:
        """2x2 complex transfer matrix of the device."""
        phi_stage = self.phi_shifter.transfer_matrix()
        theta_stage = self.theta_shifter.transfer_matrix()
        return (
            self.splitter_out.transfer_matrix()
            @ theta_stage
            @ self.splitter_in.transfer_matrix()
            @ phi_stage
        )

    def power_transmission(self) -> np.ndarray:
        """2x2 matrix of power transmission ``|T_ij|^2``."""
        return np.abs(self.transfer_matrix()) ** 2  # host-only path

    def insertion_error(self) -> float:
        """Deviation of the device from unitarity (non-zero only for asymmetric splitters)."""
        matrix = self.transfer_matrix()
        return float(np.max(np.abs(matrix.conj().T @ matrix - np.eye(2))))  # host-only path

    # ------------------------------------------------------------------ #
    # tuning and uncertainty injection
    # ------------------------------------------------------------------ #
    def with_angles(self, theta: float, phi: float) -> "MZI":
        """Return a copy re-tuned to new nominal phase angles."""
        return replace(
            self,
            theta_shifter=self.theta_shifter.with_phase(theta),
            phi_shifter=self.phi_shifter.with_phase(phi),
        )

    def with_phase_errors(self, delta_theta: float, delta_phi: float) -> "MZI":
        """Return a copy with additive phase errors on the two shifters."""
        return replace(
            self,
            theta_shifter=self.theta_shifter.with_phase_error(delta_theta),
            phi_shifter=self.phi_shifter.with_phase_error(delta_phi),
        )

    def with_splitter_errors(self, delta_r_in: float, delta_r_out: float) -> "MZI":
        """Return a copy whose splitter reflectances deviate from nominal."""
        return replace(
            self,
            splitter_in=self.splitter_in.with_variation(delta_r_in),
            splitter_out=self.splitter_out.with_variation(delta_r_out),
        )

    def with_variations(
        self,
        delta_theta: float = 0.0,
        delta_phi: float = 0.0,
        delta_r_in: float = 0.0,
        delta_r_out: float = 0.0,
    ) -> "MZI":
        """Return a copy with phase and splitter errors applied together."""
        return self.with_phase_errors(delta_theta, delta_phi).with_splitter_errors(delta_r_in, delta_r_out)
