"""Optical gain / attenuation elements for the diagonal (Sigma) stage.

Arbitrary diagonal matrices cannot be realized with passive, lossless MZIs
alone: each MZI attenuator reaches at most unity transmission.  The paper
(§II-B, Fig. 1) therefore normalizes the singular values to at most 1 and
restores the overall scale with a global optical amplification stage
``beta`` (a semiconductor optical amplifier per output, ref. [6]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class OpticalAmplifier:
    """A flat (wavelength-independent) field-gain element.

    Parameters
    ----------
    gain:
        Field gain ``beta`` (power gain is ``beta**2``).  Must be positive;
        values below 1 describe attenuation.
    """

    gain: float = 1.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ConfigurationError(f"gain must be positive, got {self.gain}")

    @property
    def power_gain(self) -> float:
        return float(self.gain**2)

    @property
    def gain_db(self) -> float:
        """Power gain in decibels."""
        return float(20.0 * np.log10(self.gain))

    def transfer(self, field):
        """Apply the gain to a field amplitude (scalar or array)."""
        return self.gain * np.asarray(field)

    def transfer_matrix(self, n: int) -> np.ndarray:
        """``n x n`` diagonal matrix ``beta * I`` (gain applied on every output)."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        return self.gain * np.eye(n, dtype=np.complex128)


@dataclass(frozen=True)
class GainStage:
    """Per-output amplifier bank (the ``beta`` layer of the paper's Fig. 1)."""

    gains: tuple

    def __post_init__(self) -> None:
        gains = tuple(float(g) for g in self.gains)
        if not gains:
            raise ConfigurationError("GainStage requires at least one output gain")
        if any(g <= 0 for g in gains):
            raise ConfigurationError(f"all gains must be positive, got {gains}")
        object.__setattr__(self, "gains", gains)

    @classmethod
    def uniform(cls, gain: float, n: int) -> "GainStage":
        """A stage applying the same gain to all ``n`` outputs."""
        return cls(gains=tuple([float(gain)] * int(n)))

    @property
    def size(self) -> int:
        return len(self.gains)

    def transfer_matrix(self) -> np.ndarray:
        """Diagonal complex matrix of the per-output field gains."""
        return np.diag(np.asarray(self.gains, dtype=np.complex128))

    def apply(self, fields: np.ndarray) -> np.ndarray:
        """Apply the gains to a batch of field vectors (last axis = outputs)."""
        fields = np.asarray(fields)
        if fields.shape[-1] != self.size:
            raise ConfigurationError(
                f"field vector length {fields.shape[-1]} does not match stage size {self.size}"
            )
        return fields * np.asarray(self.gains)
