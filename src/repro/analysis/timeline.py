"""Timeline sweep: served accuracy of many drifting devices over time.

The Monte Carlo engine answers the *static* question ("what accuracy does a
fresh fabrication draw serve?"); this runner answers the *operations*
question: advance ``B`` independent device timelines through ``T`` steps of
a temporal perturbation process (:mod:`repro.variation.process`), serve the
evaluation set at every step, optionally re-null drifting phases under a
:class:`~repro.analysis.recalibration.RecalibrationPolicy`, and report the
served-accuracy-vs-time curve plus the recalibration events that produced
it.

Scheduling mirrors :class:`~repro.analysis.monte_carlo.MonteCarloRunner`:
one child stream per *timeline* is spawned up front
(:func:`~repro.utils.rng.spawn_rngs`), timelines are sharded into
vectorized chunks through the execution backends
(:mod:`repro.execution`), and chunks ship the compact
:class:`~repro.utils.rng.StreamSlice` seed recipe to process backends.
Each timeline consumes only its own stream, in a fixed per-step stage
order, so the resulting curves are **bit-identical for every backend,
worker count and chunk size** — and recalibration consumes no randomness,
so policies cannot perturb the draws either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from contextlib import nullcontext

from ..arrays import active_array_backend, to_host
from ..execution import BackendLike, pool_scope, resolve_backend
from ..observability import map_chunks
from ..observability.recorder import active as _active_recorder
from ..execution.shared import (
    ArrayLike,
    is_hosted_array,
    is_hosted_network,
    resolve_array,
    resolve_network,
    shared_eval_arrays,
    shared_network,
)
from ..training.workspace import process_workspace
from ..utils.rng import RNGLike, StreamsLike, materialize_streams, spawn_rngs
from ..utils.serialization import format_table
from ..variation.models import UncertaintyModel
from ..variation.process import PerturbationProcess
from .monte_carlo import chunk_stream_payload, plan_chunk_size
from .recalibration import RecalibrationPolicy

__all__ = [
    "AccuracyTimelineTrial",
    "TimelineSweepResult",
    "evaluate_timeline_chunk",
    "timeline_sweep",
    "timeline_sweep_multi",
]

#: Matches the Monte Carlo chunk target: one scheduled chunk's working set
#: (forward activations, stacked matrices, state matrices) stays near this.
CHUNK_TARGET_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True, eq=False)
class AccuracyTimelineTrial:
    """Picklable chunk evaluator: ``B`` timelines through ``T`` steps.

    Advances one :class:`~repro.variation.process.DriftState` for its chunk
    of timelines and serves the evaluation set at every step.  Per step the
    order is: evolve the state; apply due recalibrations (schedule,
    drift threshold, and accuracy triggers raised by the *previous* step's
    served traffic); serve; measure.  ``spnn``/``features``/``labels``
    accept shared-memory handles exactly like the Monte Carlo trials.
    """

    spnn: object
    features: ArrayLike
    labels: ArrayLike
    model: UncertaintyModel
    process: PerturbationProcess
    num_steps: int
    policy: Optional[RecalibrationPolicy] = None
    #: Samples per forward-pass chunk inside ``accuracy_batch``; automatic
    #: when ``None``.  Never changes the curves.
    forward_chunk_size: Optional[int] = None
    #: Recycle forward-pass scratch through the process-local workspace
    #: arena (bit-identical; allocation reuse only).
    use_workspace: bool = False

    def preferred_chunk_size(self) -> int:
        """Timelines per chunk keeping one step's working set near target.

        Same estimate as the Monte Carlo batch trial — one timeline's
        forward-activation slice, stacked matrices and draw/state buffers
        — consulted by :func:`timeline_sweep` when no explicit
        ``chunk_size`` is given.
        """
        spnn = resolve_network(self.spnn)
        features = resolve_array(self.features)
        samples = int(features.shape[0]) if features.ndim > 1 else 1
        architecture = spnn.architecture
        width = max(architecture.layer_dims)
        activation_bytes = samples * width * 16  # complex128 forward block
        matrix_bytes = sum(out * inp for out, inp in architecture.weight_shapes()) * 16
        mzis = (
            sum(layer.num_mzis for layer in spnn.photonic_layers)
            if spnn.is_compiled
            else 0
        )
        # Draw matrix + state + compensation per parameter family.
        sampling_bytes = 3 * 4 * mzis * 8
        per_timeline = activation_bytes + matrix_bytes + sampling_bytes
        return max(1, CHUNK_TARGET_BYTES // max(1, per_timeline))

    def __call__(
        self, generators: Sequence[np.random.Generator]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(accuracy, events)`` blocks of shape ``(B, num_steps)``."""
        generators = list(generators)
        spnn = resolve_network(self.spnn)
        features = resolve_array(self.features)
        labels = resolve_array(self.labels)
        workspace = process_workspace() if self.use_workspace else None
        policy = self.policy if self.policy is not None else RecalibrationPolicy()
        state = self.process.init_state(spnn.photonic_layers, self.model, generators)
        batch_size = len(generators)
        accuracy = np.empty((batch_size, self.num_steps), dtype=np.float64)
        events = np.zeros((batch_size, self.num_steps), dtype=bool)
        # Accuracy-triggered re-nulls raised by the previous step's traffic.
        pending = np.zeros(batch_size, dtype=bool)
        for step in range(self.num_steps):
            state.advance()
            mask = pending.copy()
            if policy.scheduled(step):
                mask[:] = True
            if policy.drift_threshold is not None:
                drifted = state.drift_rms() >= policy.drift_threshold
                mask |= np.asarray(to_host(drifted), dtype=bool)
            if mask.all():
                state.renull()
                events[:, step] = True
            elif mask.any():
                state.renull(rows=active_array_backend().xp.asarray(mask))
                events[:, step] = mask
            served = spnn.accuracy_batch(
                features,
                labels,
                state.realize(),
                batch_size=batch_size,
                chunk_size=self.forward_chunk_size,
                workspace=workspace,
            )
            accuracy[:, step] = np.asarray(to_host(served), dtype=np.float64)
            if policy.accuracy_threshold is not None:
                pending = accuracy[:, step] < policy.accuracy_threshold
            else:
                pending[:] = False
        return accuracy, events


#: Worker payload: chunk's first timeline index, the trial, the chunk streams.
TimelineChunkTask = Tuple[int, AccuracyTimelineTrial, StreamsLike]


def evaluate_timeline_chunk(task: TimelineChunkTask) -> Tuple[int, Tuple[np.ndarray, np.ndarray]]:
    """Evaluate one chunk of timelines; module-level so workers can pickle it."""
    start, trial, streams = task
    return start, trial(materialize_streams(streams))


@dataclass
class TimelineSweepResult:
    """Served accuracy and recalibration events of a timeline sweep."""

    #: Per-timeline served accuracy, shape ``(timelines, num_steps)``.
    accuracy: np.ndarray = field(repr=False)
    #: Which timelines re-nulled at which step, same shape, boolean.
    recalibrations: np.ndarray = field(repr=False)
    num_steps: int = 0
    timelines: int = 0
    process: str = ""
    policy: Optional[RecalibrationPolicy] = None
    nominal_accuracy: float = 0.0

    def served_accuracy_curve(self) -> np.ndarray:
        """Mean served accuracy per step across timelines, shape ``(T,)``."""
        return self.accuracy.mean(axis=0)

    def recalibration_curve(self) -> np.ndarray:
        """Fraction of timelines re-nulling per step, shape ``(T,)``."""
        return self.recalibrations.mean(axis=0)

    @property
    def mean_served_accuracy(self) -> float:
        """Mean accuracy over every (timeline, step) service slot."""
        return float(self.accuracy.mean())

    @property
    def final_step_accuracy(self) -> float:
        """Mean served accuracy at the last step (the aged fleet)."""
        return float(self.accuracy[:, -1].mean())

    @property
    def total_recalibrations(self) -> int:
        """Recalibration events summed over all timelines and steps."""
        return int(self.recalibrations.sum())

    @property
    def recalibrations_per_timeline(self) -> float:
        """Mean recalibration events one timeline pays over the horizon."""
        return self.total_recalibrations / max(1, self.timelines)

    def report(self) -> str:
        """Compact served-accuracy-vs-time table (sub-sampled to ~12 rows)."""
        curve = self.served_accuracy_curve()
        recal = self.recalibration_curve()
        stride = max(1, self.num_steps // 12)
        steps = list(range(0, self.num_steps, stride))
        if steps[-1] != self.num_steps - 1:
            steps.append(self.num_steps - 1)
        rows = [
            [step, 100.0 * float(curve[step]), 100.0 * float(recal[step])]
            for step in steps
        ]
        header = (
            f"Timeline sweep — {self.timelines} device timelines x {self.num_steps} steps "
            f"under process {self.process!r} (nominal {100.0 * self.nominal_accuracy:.2f}%)"
        )
        footer = (
            f"mean served accuracy {100.0 * self.mean_served_accuracy:.2f}%, "
            f"final step {100.0 * self.final_step_accuracy:.2f}%, "
            f"{self.recalibrations_per_timeline:.2f} recalibrations per timeline"
        )
        table = format_table(["step", "served acc [%]", "recal [% of fleet]"], rows)
        return "\n".join([header, table, footer])


def timeline_sweep(
    spnn,
    features: ArrayLike,
    labels: ArrayLike,
    model: UncertaintyModel,
    process: PerturbationProcess,
    num_steps: int,
    timelines: int = 256,
    policy: Optional[RecalibrationPolicy] = None,
    rng: RNGLike = None,
    chunk_size: Optional[int] = None,
    backend: BackendLike = None,
    workers: Optional[int] = None,
    device: Optional[str] = None,
    forward_chunk_size: Optional[int] = None,
    use_workspace: bool = False,
) -> TimelineSweepResult:
    """Advance ``timelines`` independent devices ``num_steps`` steps and serve.

    Parameters
    ----------
    spnn:
        Compiled network under test (or a shared-memory
        :class:`~repro.execution.shared.SharedNetwork` handle).
    features, labels:
        Evaluation set served at every step (plain arrays or
        :class:`~repro.execution.shared.SharedArray` handles; plain arrays
        are hosted in shared memory automatically on process backends, as
        in :func:`~repro.analysis.yield_analysis.yield_sweep`).
    model:
        Component uncertainty model scaling the normalized drift state.
    process:
        Temporal perturbation process
        (:func:`~repro.variation.process.build_process` or an instance).
    num_steps:
        Timeline horizon ``T``.
    timelines:
        Number of independent device timelines ``B`` (the Monte Carlo axis;
        each gets its own child stream spawned from ``rng`` up front).
    policy:
        Optional :class:`~repro.analysis.recalibration.RecalibrationPolicy`;
        ``None`` (or a null policy) runs the no-maintenance baseline.
    rng:
        Seed; curves are reproducible and worker-count invariant at a
        fixed seed.
    chunk_size, backend, workers, device:
        Scheduling knobs, exactly as in the Monte Carlo engine: timelines
        are sharded into vectorized chunks across the selected execution
        backend; ``device="gpu"`` runs the chunks device-resident.
    forward_chunk_size, use_workspace:
        Forwarded to the per-step forward pass (memory knobs; never change
        the curves).

    Returns
    -------
    TimelineSweepResult
        Per-timeline served accuracy and recalibration events, with the
        fleet-level curves derived on demand.
    """
    if num_steps < 1:
        raise ValueError(f"num_steps must be >= 1, got {num_steps}")
    if timelines < 1:
        raise ValueError(f"timelines must be >= 1, got {timelines}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    nominal_accuracy = resolve_network(spnn).accuracy(
        resolve_array(features), resolve_array(labels), use_hardware=True
    )
    generators = spawn_rngs(rng, timelines)
    resolved = resolve_backend(backend, workers, device)
    already_hosted = is_hosted_array(features) or is_hosted_array(labels)
    hosting = (
        nullcontext((features, labels))
        if already_hosted
        else shared_eval_arrays(resolved, features, labels)
    )
    network_hosting = (
        nullcontext(spnn) if is_hosted_network(spnn) else shared_network(resolved, spnn)
    )
    accuracy = np.empty((timelines, num_steps), dtype=np.float64)
    events = np.zeros((timelines, num_steps), dtype=bool)
    with pool_scope(resolved), hosting as (eval_features, eval_labels), network_hosting as network:
        trial = AccuracyTimelineTrial(
            spnn=network,
            features=eval_features,
            labels=eval_labels,
            model=model,
            process=process,
            num_steps=num_steps,
            policy=policy,
            forward_chunk_size=forward_chunk_size,
            use_workspace=use_workspace,
        )
        chunk = plan_chunk_size(timelines, resolved, chunk_size, trial)
        tasks: List[TimelineChunkTask] = [
            (start, trial, chunk_stream_payload(generators[start : start + chunk], resolved))
            for start in range(0, timelines, chunk)
        ]
        with _active_recorder().span(
            "timeline/sweep",
            timelines=timelines,
            steps=num_steps,
            chunks=len(tasks),
            chunk_size=chunk,
            parallelism=resolved.parallelism,
        ):
            for start, (chunk_accuracy, chunk_events) in map_chunks(
                resolved, evaluate_timeline_chunk, tasks, label="timeline"
            ):
                stop = start + chunk_accuracy.shape[0]
                accuracy[start:stop] = chunk_accuracy
                events[start:stop] = chunk_events
    return TimelineSweepResult(
        accuracy=accuracy,
        recalibrations=events,
        num_steps=int(num_steps),
        timelines=int(timelines),
        process=getattr(process, "name", "") or type(process).__name__,
        policy=policy,
        nominal_accuracy=float(nominal_accuracy),
    )


def timeline_sweep_multi(
    spnn,
    features: ArrayLike,
    labels: ArrayLike,
    models: Sequence[UncertaintyModel],
    process: PerturbationProcess,
    num_steps: int,
    timelines: int = 256,
    policy: Optional[RecalibrationPolicy] = None,
    rng: RNGLike = None,
    chunk_size: Optional[int] = None,
    backend: BackendLike = None,
    workers: Optional[int] = None,
    device: Optional[str] = None,
    forward_chunk_size: Optional[int] = None,
    use_workspace: bool = False,
) -> Tuple[TimelineSweepResult, ...]:
    """Fold several uncertainty models into one scheduling pass.

    Runs ``timeline_sweep`` once per model in ``models`` — same network,
    process, policy and horizon — but hosts the evaluation set and the
    network **once**, spawns the worker pool **once**, and submits every
    model's timeline chunks through a single ``resolved.map`` call, so the
    pool never drains between models.  One child stream per model is split
    off ``rng`` up front; model ``i``'s curves are bit-identical to::

        streams = spawn_rngs(rng, len(models))
        timeline_sweep(..., model=models[i], rng=streams[i], ...)

    for every backend, worker count and chunk size.

    Returns one :class:`TimelineSweepResult` per model, in order.
    """
    models = tuple(models)
    if not models:
        raise ValueError("models must be non-empty")
    if num_steps < 1:
        raise ValueError(f"num_steps must be >= 1, got {num_steps}")
    if timelines < 1:
        raise ValueError(f"timelines must be >= 1, got {timelines}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    nominal_accuracy = resolve_network(spnn).accuracy(
        resolve_array(features), resolve_array(labels), use_hardware=True
    )
    model_streams = spawn_rngs(rng, len(models))
    resolved = resolve_backend(backend, workers, device)
    already_hosted = is_hosted_array(features) or is_hosted_array(labels)
    hosting = (
        nullcontext((features, labels))
        if already_hosted
        else shared_eval_arrays(resolved, features, labels)
    )
    network_hosting = (
        nullcontext(spnn) if is_hosted_network(spnn) else shared_network(resolved, spnn)
    )
    accuracy = np.empty((len(models) * timelines, num_steps), dtype=np.float64)
    events = np.zeros((len(models) * timelines, num_steps), dtype=bool)
    with pool_scope(resolved), hosting as (eval_features, eval_labels), network_hosting as network:
        tasks: List[TimelineChunkTask] = []
        chunk: Optional[int] = None
        for index, (model, stream) in enumerate(zip(models, model_streams)):
            generators = spawn_rngs(stream, timelines)
            trial = AccuracyTimelineTrial(
                spnn=network,
                features=eval_features,
                labels=eval_labels,
                model=model,
                process=process,
                num_steps=num_steps,
                policy=policy,
                forward_chunk_size=forward_chunk_size,
                use_workspace=use_workspace,
            )
            if chunk is None:
                chunk = plan_chunk_size(timelines, resolved, chunk_size, trial)
            offset = index * timelines
            tasks.extend(
                (
                    offset + start,
                    trial,
                    chunk_stream_payload(generators[start : start + chunk], resolved),
                )
                for start in range(0, timelines, chunk)
            )
        with _active_recorder().span(
            "timeline/sweep_multi",
            models=len(models),
            timelines=timelines,
            steps=num_steps,
            chunks=len(tasks),
            parallelism=resolved.parallelism,
        ):
            for start, (chunk_accuracy, chunk_events) in map_chunks(
                resolved, evaluate_timeline_chunk, tasks, label="timeline"
            ):
                stop = start + chunk_accuracy.shape[0]
                accuracy[start:stop] = chunk_accuracy
                events[start:stop] = chunk_events
    process_name = getattr(process, "name", "") or type(process).__name__
    return tuple(
        TimelineSweepResult(
            accuracy=accuracy[index * timelines : (index + 1) * timelines],
            recalibrations=events[index * timelines : (index + 1) * timelines],
            num_steps=int(num_steps),
            timelines=int(timelines),
            process=process_name,
            policy=policy,
            nominal_accuracy=float(nominal_accuracy),
        )
        for index in range(len(models))
    )
