"""Online recalibration policies: when to re-null a drifting mesh.

A deployed mesh accumulates phase drift (:mod:`repro.variation.process`);
an operator can periodically *re-null* the phase shifters — re-tune them
to cancel the accumulated drift — at the cost of taking the device out of
service for the duration of a retune.  This module provides:

* :class:`RecalibrationPolicy` — the trigger rules consumed by the
  timeline sweep (:mod:`repro.analysis.timeline`): a fixed schedule, a
  drift-magnitude threshold, a served-accuracy threshold, or any
  combination (a timeline re-nulls when *any* armed trigger fires).
* :func:`renull_network` — the real re-nulling machinery: warm-retunes
  every layer in place via :meth:`~repro.mesh.svd_layer.
  PhotonicLinearLayer.retune_from_weight` (falling back to an exact
  recompile when a warm start diverges), which is what a recalibration
  event physically is.
* :func:`measure_renull_cost` — warm-vs-exact retune seconds, the price
  of one recalibration event used for the budget accounting of the drift
  experiment (served accuracy vs recalibration budget).

The vectorized timeline sweep models a re-null as a state reset on the
tunable phase families (:meth:`~repro.variation.process.DriftState.renull`)
— the idealized effect of a successful warm retune, applied to thousands
of timelines at once — and uses the measured per-event cost to convert
event counts into a time budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..mesh.svd_layer import PhotonicLinearLayer
from ..observability.recorder import Stopwatch
from ..utils.serialization import format_table

__all__ = [
    "RecalibrationPolicy",
    "RenullReport",
    "RenullCost",
    "renull_network",
    "measure_renull_cost",
]


@dataclass(frozen=True)
class RecalibrationPolicy:
    """Trigger rules deciding when a timeline re-nulls its phases.

    Parameters
    ----------
    every:
        Scheduled maintenance: re-null every ``every`` steps, *including
        step 0* (re-nulling at deployment cancels the fabrication phase
        errors — often the single largest win).  ``None`` disarms the
        schedule.
    drift_threshold:
        Condition-based maintenance: re-null a timeline whose normalized
        tunable drift RMS (:meth:`~repro.variation.process.DriftState.
        drift_rms`, in units of the model sigma) reaches the threshold.
        Checked before serving each step; only the timelines that tripped
        re-null.  ``None`` disarms the trigger.
    accuracy_threshold:
        Reactive maintenance: a timeline whose *served* accuracy fell
        below the threshold re-nulls before the next step (the operator
        only observes accuracy on served traffic, so the reaction lags one
        step).  ``None`` disarms the trigger.

    A policy with every trigger disarmed (:attr:`is_null`) never
    recalibrates — the no-maintenance baseline.  Triggers compose with
    OR semantics.  Policies are frozen dataclasses and pickle cleanly
    into worker processes; deciding and applying triggers never consumes
    randomness, so recalibration cannot perturb any stream's draw
    sequence (timelines stay bit-identical for every worker count no
    matter what the policy does).
    """

    every: Optional[int] = None
    drift_threshold: Optional[float] = None
    accuracy_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.drift_threshold is not None and self.drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be positive, got {self.drift_threshold}"
            )
        if self.accuracy_threshold is not None and not 0.0 <= self.accuracy_threshold <= 1.0:
            raise ValueError(
                f"accuracy_threshold must be in [0, 1], got {self.accuracy_threshold}"
            )

    @property
    def is_null(self) -> bool:
        """True when no trigger is armed (the no-recalibration baseline)."""
        return (
            self.every is None
            and self.drift_threshold is None
            and self.accuracy_threshold is None
        )

    def scheduled(self, step: int) -> bool:
        """Whether the fixed schedule fires at ``step`` (step 0 counts)."""
        return self.every is not None and step % self.every == 0


# --------------------------------------------------------------------------- #
# the real re-nulling machinery (single device)
# --------------------------------------------------------------------------- #


@dataclass
class RenullReport:
    """Outcome of re-nulling one network's layers."""

    warm_retunes: int
    exact_recompiles: int
    seconds: float

    @property
    def layers(self) -> int:
        return self.warm_retunes + self.exact_recompiles


def renull_network(layers: Sequence[PhotonicLinearLayer]) -> Tuple[List[PhotonicLinearLayer], RenullReport]:
    """Re-null every layer of a network to its own weight.

    Each layer is warm-retuned in place
    (:meth:`~repro.mesh.svd_layer.PhotonicLinearLayer.retune_from_weight`
    — rotation-updated SVD in the cached basis plus fast Clements phase
    re-nulling, validated to 1e-7); a layer whose warm start diverges is
    rebuilt exactly (retune leaves a failed layer unspecified, so the
    fallback constructs a fresh one).  Returns the (possibly replaced)
    layers and a report of what happened — after the call every layer's
    hardware matrices match its weight to compile precision, i.e. all
    accumulated tuning drift is cancelled.
    """
    renulled: List[PhotonicLinearLayer] = []
    warm = exact = 0
    watch = Stopwatch()
    for layer in layers:
        if layer.retune_from_weight(layer.weight):
            renulled.append(layer)
            warm += 1
        else:
            renulled.append(PhotonicLinearLayer(layer.weight, scheme=layer.scheme))
            exact += 1
    return renulled, RenullReport(warm_retunes=warm, exact_recompiles=exact, seconds=watch.seconds)


@dataclass
class RenullCost:
    """Measured price of one recalibration event (one network re-null)."""

    warm_seconds: float
    exact_seconds: float
    layers: int
    repeats: int

    @property
    def speedup(self) -> float:
        """Exact-recompile seconds per warm-retune second."""
        return self.exact_seconds / self.warm_seconds if self.warm_seconds > 0 else float("inf")

    def report(self) -> str:
        headers = ["path", "seconds / event"]
        rows = [
            ["warm retune (incremental re-null)", self.warm_seconds],
            ["exact recompile (from scratch)", self.exact_seconds],
        ]
        footer = (
            f"warm re-null is {self.speedup:.1f}x cheaper per event "
            f"({self.layers} layers, best of {self.repeats})"
        )
        return "\n".join([format_table(headers, rows), footer])


def measure_renull_cost(layers: Sequence[PhotonicLinearLayer], repeats: int = 3) -> RenullCost:
    """Time one recalibration event: warm retune vs exact recompile.

    Both paths re-map the same weights; the warm path reuses the cached
    decomposition basis and structures (PR 4's incremental recompile
    machinery, here serving as the production re-null primitive).  Best of
    ``repeats`` to shed scheduler noise.  The measured layers are retuned
    in place (to their own weights, so their matrices are unchanged to
    compile precision).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    layers = list(layers)
    weights = [np.array(layer.weight, copy=True) for layer in layers]
    watch = Stopwatch()
    warm_seconds = float("inf")
    for _ in range(repeats):
        watch.restart()
        for layer, weight in zip(layers, weights):
            if not layer.retune_from_weight(weight):
                # A same-weight warm start should never diverge; rebuild so
                # the layer stays usable and time the honest total anyway.
                layer = PhotonicLinearLayer(weight, scheme=layer.scheme)
        warm_seconds = min(warm_seconds, watch.seconds)
    exact_seconds = float("inf")
    for _ in range(repeats):
        watch.restart()
        for layer, weight in zip(layers, weights):
            PhotonicLinearLayer(weight, scheme=layer.scheme)
        exact_seconds = min(exact_seconds, watch.seconds)
    return RenullCost(
        warm_seconds=warm_seconds,
        exact_seconds=exact_seconds,
        layers=len(layers),
        repeats=int(repeats),
    )
