"""Device-level sensitivity analysis of the MZI transfer matrix (Fig. 2).

The paper evaluates how much each element of the MZI transfer matrix
deviates — relative to its nominal magnitude — when the two phase angles
share a common relative error ``K`` (Eqs. 3-4), sweeping ``theta`` and
``phi`` over their tuning range.  The headline observation is that the
relative deviation grows monotonically with the tuned angles, i.e. MZIs
tuned to larger phases are intrinsically more sensitive.

This module computes that (theta, phi) sensitivity map with both the
paper's first-order model and an exact re-evaluation of the transfer
matrix, the latter feeding the model-accuracy ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..photonics.mzi import (
    mzi_element_relative_deviation,
    mzi_first_order_deviation,
    mzi_transfer,
)

#: Human-readable labels of the four transfer-matrix elements, in (row, col) order.
ELEMENT_LABELS = ("T11", "T12", "T21", "T22")


@dataclass
class SensitivityMap:
    """Relative-deviation surfaces over a (theta, phi) grid.

    Attributes
    ----------
    thetas, phis:
        1-D grids of the swept phase angles [rad].
    relative_deviation:
        Array of shape ``(len(thetas), len(phis), 2, 2)`` holding
        ``|dT_ij| / |T_ij|``; ``nan`` marks points where the nominal element
        magnitude vanishes.
    k:
        The common relative phase error used (0.05 in the paper).
    """

    thetas: np.ndarray
    phis: np.ndarray
    relative_deviation: np.ndarray
    k: float

    def element(self, row: int, col: int) -> np.ndarray:
        """Deviation surface of one matrix element (``(theta, phi)`` grid)."""
        return self.relative_deviation[:, :, row, col]

    def element_by_label(self, label: str) -> np.ndarray:
        """Deviation surface selected by its paper label (``"T11"`` ... ``"T22"``)."""
        label = label.upper()
        if label not in ELEMENT_LABELS:
            raise KeyError(f"unknown element label {label!r}; expected one of {ELEMENT_LABELS}")
        index = ELEMENT_LABELS.index(label)
        return self.element(index // 2, index % 2)

    def peak_deviation(self) -> Dict[str, float]:
        """Maximum finite relative deviation of each element over the grid."""
        peaks = {}
        for index, label in enumerate(ELEMENT_LABELS):
            surface = self.element(index // 2, index % 2)
            finite = surface[np.isfinite(surface)]
            peaks[label] = float(finite.max()) if finite.size else float("nan")
        return peaks

    def monotonic_along_axes(self, label: str, quantile: float = 0.9) -> bool:
        """Check the paper's qualitative claim that deviation grows with theta and phi.

        Compares the mean deviation in the top-``quantile`` corner of the
        grid against the bottom corner; returns ``True`` when the corner at
        large angles dominates.
        """
        surface = self.element_by_label(label)
        finite = np.where(np.isfinite(surface), surface, np.nan)
        split_t = int(len(self.thetas) * quantile)
        split_p = int(len(self.phis) * quantile)
        low = np.nanmean(finite[: max(1, len(self.thetas) - split_t), : max(1, len(self.phis) - split_p)])
        high = np.nanmean(finite[split_t:, split_p:])
        return bool(high > low)


def device_sensitivity_map(
    k: float = 0.05,
    grid_points: int = 64,
    theta_max: float = 2.0 * np.pi,
    phi_max: float = 2.0 * np.pi,
) -> SensitivityMap:
    """Compute the Fig. 2 sensitivity surfaces with the first-order model.

    Parameters
    ----------
    k:
        Common relative error ``K`` on both phases (0.05 in the paper).
    grid_points:
        Number of grid samples per axis.
    theta_max, phi_max:
        Upper ends of the swept ranges (the paper sweeps the full
        ``[0, 2*pi]`` tuning range).
    """
    if grid_points < 2:
        raise ValueError(f"grid_points must be >= 2, got {grid_points}")
    thetas = np.linspace(0.0, theta_max, grid_points)
    phis = np.linspace(0.0, phi_max, grid_points)
    theta_grid, phi_grid = np.meshgrid(thetas, phis, indexing="ij")
    deviation = mzi_element_relative_deviation(theta_grid, phi_grid, k)
    return SensitivityMap(thetas=thetas, phis=phis, relative_deviation=deviation, k=float(k))


def exact_relative_deviation(theta, phi, k: float, eps: float = 1e-12) -> np.ndarray:
    """Exact (non-linearized) version of ``|dT_ij| / |T_ij|`` for the ablation study.

    Re-evaluates the transfer matrix at the perturbed angles
    ``theta(1+K), phi(1+K)`` instead of using the first-order expansion.
    """
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    nominal = mzi_transfer(theta, phi)
    perturbed = mzi_transfer(theta * (1.0 + k), phi * (1.0 + k))
    magnitude = np.abs(nominal)
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.abs(perturbed - nominal) / magnitude
    return np.where(magnitude < eps, np.nan, rel)


def first_order_model_error(
    k: float = 0.05,
    grid_points: int = 32,
) -> Dict[str, float]:
    """Worst-case discrepancy between the first-order and exact deviation models.

    Returns per-element maxima of ``|first_order - exact|`` over the grid —
    the quantity reported by the sensitivity-model ablation bench.
    """
    thetas = np.linspace(0.0, 2.0 * np.pi, grid_points)
    phis = np.linspace(0.0, 2.0 * np.pi, grid_points)
    theta_grid, phi_grid = np.meshgrid(thetas, phis, indexing="ij")
    first_order = mzi_element_relative_deviation(theta_grid, phi_grid, k)
    exact = exact_relative_deviation(theta_grid, phi_grid, k)
    errors: Dict[str, float] = {}
    for index, label in enumerate(ELEMENT_LABELS):
        row, col = index // 2, index % 2
        diff = np.abs(first_order[..., row, col] - exact[..., row, col])
        finite = diff[np.isfinite(diff)]
        errors[label] = float(finite.max()) if finite.size else float("nan")
    return errors
