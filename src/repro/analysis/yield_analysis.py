"""Yield analysis: turning Monte Carlo accuracy samples into design metrics.

The paper motivates its framework by the need to "identify critical
components during design time ... for improving the yield" (§I).  This
module provides the missing last step: given Monte Carlo accuracy samples
(from :func:`repro.onn.inference.monte_carlo_accuracy` or the EXP 1 runner),
compute the *parametric yield* — the fraction of fabricated networks that
would still meet an accuracy specification — and sweep it against the
uncertainty level to find the maximum tolerable sigma for a target yield.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class YieldEstimate:
    """Estimated yield at one uncertainty level.

    Attributes
    ----------
    accuracy_threshold:
        Minimum acceptable accuracy (the "spec").
    yield_fraction:
        Fraction of Monte Carlo samples meeting the spec.
    mean_accuracy:
        Mean accuracy of the samples (for context).
    samples:
        Number of Monte Carlo samples the estimate is based on.
    """

    accuracy_threshold: float
    yield_fraction: float
    mean_accuracy: float
    samples: int

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the yield estimate."""
        p, n = self.yield_fraction, self.samples
        if n <= 1:
            return float("inf")
        return float(np.sqrt(p * (1.0 - p) / n))


def estimate_yield(accuracies: Sequence[float], accuracy_threshold: float) -> YieldEstimate:
    """Fraction of uncertainty realizations whose accuracy meets the spec.

    Parameters
    ----------
    accuracies:
        Monte Carlo accuracy samples in ``[0, 1]``.
    accuracy_threshold:
        Minimum acceptable accuracy in ``[0, 1]``.
    """
    samples = np.asarray(accuracies, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("accuracies must be a non-empty 1-D sequence")
    if not 0.0 <= accuracy_threshold <= 1.0:
        raise ValueError(f"accuracy_threshold must be in [0, 1], got {accuracy_threshold}")
    meeting = float(np.mean(samples >= accuracy_threshold))
    return YieldEstimate(
        accuracy_threshold=float(accuracy_threshold),
        yield_fraction=meeting,
        mean_accuracy=float(samples.mean()),
        samples=int(samples.size),
    )


def yield_vs_sigma(
    accuracy_samples_per_sigma: Dict[float, Sequence[float]],
    accuracy_threshold: float,
) -> Dict[float, YieldEstimate]:
    """Yield estimate for every uncertainty level in a sweep.

    ``accuracy_samples_per_sigma`` maps the normalized sigma to the Monte
    Carlo accuracy samples collected at that level (e.g. from an EXP 1 run:
    ``{sigma: result.samples for sigma, result in zip(config.sigmas, results['both'])}``).
    """
    return {
        float(sigma): estimate_yield(samples, accuracy_threshold)
        for sigma, samples in accuracy_samples_per_sigma.items()
    }


def max_tolerable_sigma(
    accuracy_samples_per_sigma: Dict[float, Sequence[float]],
    accuracy_threshold: float,
    target_yield: float = 0.9,
) -> Optional[float]:
    """Largest swept sigma whose estimated yield still meets ``target_yield``.

    Returns ``None`` when no swept level (including the smallest) meets the
    target — i.e. the design is not manufacturable at the required spec.
    """
    if not 0.0 < target_yield <= 1.0:
        raise ValueError(f"target_yield must be in (0, 1], got {target_yield}")
    estimates = yield_vs_sigma(accuracy_samples_per_sigma, accuracy_threshold)
    passing = [sigma for sigma, estimate in estimates.items() if estimate.yield_fraction >= target_yield]
    return max(passing) if passing else None
