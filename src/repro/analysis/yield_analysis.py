"""Yield analysis: turning Monte Carlo accuracy samples into design metrics.

The paper motivates its framework by the need to "identify critical
components during design time ... for improving the yield" (§I).  This
module provides the missing last step: given Monte Carlo accuracy samples
(from :func:`repro.onn.inference.monte_carlo_accuracy` or the EXP 1 runner),
compute the *parametric yield* — the fraction of fabricated networks that
would still meet an accuracy specification — and sweep it against the
uncertainty level to find the maximum tolerable sigma for a target yield.

:func:`yield_sweep` drives that sweep end to end through the batched Monte
Carlo engine (and, with ``workers=N``, through the multiprocess execution
backend) so the yield curve of a design is one call away.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from contextlib import nullcontext

from ..execution import BackendLike, pool_scope, resolve_backend
from ..observability import map_chunks
from ..observability.recorder import active as _active_recorder
from ..execution.shared import (
    is_hosted_array,
    is_hosted_network,
    resolve_array,
    resolve_network,
    shared_eval_arrays,
    shared_network,
)
from ..utils.rng import RNGLike, spawn_rngs
from ..utils.serialization import format_table
from ..variation.models import UncertaintyModel


@dataclass(frozen=True)
class YieldEstimate:
    """Estimated yield at one uncertainty level.

    Attributes
    ----------
    accuracy_threshold:
        Minimum acceptable accuracy (the "spec").
    yield_fraction:
        Fraction of Monte Carlo samples meeting the spec.
    mean_accuracy:
        Mean accuracy of the samples (for context).
    samples:
        Number of Monte Carlo samples the estimate is based on.
    """

    accuracy_threshold: float
    yield_fraction: float
    mean_accuracy: float
    samples: int

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the yield estimate."""
        p, n = self.yield_fraction, self.samples
        if n <= 1:
            return float("inf")
        return float(np.sqrt(p * (1.0 - p) / n))


def estimate_yield(accuracies: Sequence[float], accuracy_threshold: float) -> YieldEstimate:
    """Fraction of uncertainty realizations whose accuracy meets the spec.

    Parameters
    ----------
    accuracies:
        Monte Carlo accuracy samples in ``[0, 1]``.
    accuracy_threshold:
        Minimum acceptable accuracy in ``[0, 1]``.
    """
    samples = np.asarray(accuracies, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("accuracies must be a non-empty 1-D sequence")
    if not 0.0 <= accuracy_threshold <= 1.0:
        raise ValueError(f"accuracy_threshold must be in [0, 1], got {accuracy_threshold}")
    meeting = float(np.mean(samples >= accuracy_threshold))
    return YieldEstimate(
        accuracy_threshold=float(accuracy_threshold),
        yield_fraction=meeting,
        mean_accuracy=float(samples.mean()),
        samples=int(samples.size),
    )


def yield_vs_sigma(
    accuracy_samples_per_sigma: Dict[float, Sequence[float]],
    accuracy_threshold: float,
) -> Dict[float, YieldEstimate]:
    """Yield estimate for every uncertainty level in a sweep.

    ``accuracy_samples_per_sigma`` maps the normalized sigma to the Monte
    Carlo accuracy samples collected at that level (e.g. from an EXP 1 run:
    ``{sigma: result.samples for sigma, result in zip(config.sigmas, results['both'])}``).
    """
    return {
        float(sigma): estimate_yield(samples, accuracy_threshold)
        for sigma, samples in accuracy_samples_per_sigma.items()
    }


def max_tolerable_sigma(
    accuracy_samples_per_sigma: Dict[float, Sequence[float]],
    accuracy_threshold: float,
    target_yield: float = 0.9,
) -> Optional[float]:
    """Largest swept sigma whose estimated yield still meets ``target_yield``.

    Returns ``None`` when no swept level (including the smallest) meets the
    target — i.e. the design is not manufacturable at the required spec.
    """
    if not 0.0 < target_yield <= 1.0:
        raise ValueError(f"target_yield must be in (0, 1], got {target_yield}")
    estimates = yield_vs_sigma(accuracy_samples_per_sigma, accuracy_threshold)
    passing = [sigma for sigma, estimate in estimates.items() if estimate.yield_fraction >= target_yield]
    return max(passing) if passing else None


# --------------------------------------------------------------------------- #
# end-to-end sigma sweep on the batched Monte Carlo engine
# --------------------------------------------------------------------------- #


def _folded_sigma_samples(
    network,
    eval_features,
    eval_labels,
    sigmas: Tuple[float, ...],
    streams,
    case: str,
    perturb_sigma_stage: bool,
    iterations: int,
    nominal_accuracy: float,
    chunk_size: Optional[int],
    resolved,
    use_workspace: bool,
) -> Dict[float, np.ndarray]:
    """Monte Carlo samples for every sigma, folded into one scheduling pass.

    The per-sigma loop runs one batched Monte Carlo pass — one scheduling
    barrier, one ``backend.map`` — per uncertainty level.  This folds the
    sigma axis into the leading Monte Carlo batch axis instead: all
    ``len(sigmas) * iterations`` realizations form one task list whose
    chunks may freely mix sigmas, each row scaled by its own level's
    physical stds (:class:`~repro.onn.inference.
    SigmaFoldedAccuracyBatchTrial`).  One map pass covers the whole sweep,
    so worker pools stay saturated across sigma boundaries and fused
    column-sweep chunks stay full even when ``iterations`` is small.

    Bit-identity with the per-sigma loop: each sigma's child streams are
    spawned exactly as :class:`~repro.analysis.monte_carlo.
    MonteCarloRunner` would (``spawn_rngs(stream, iterations)``), each row
    consumes only its own stream, per-row scaling performs the same float
    multiply as the scalar path, and the vectorized engine's samples are
    chunk-composition invariant.  Null sigmas short-circuit to the nominal
    accuracy but still consume their position's stream, exactly like the
    unfolded loop.
    """
    from ..onn.inference import SigmaFoldedAccuracyBatchTrial
    from .monte_carlo import chunk_stream_payload, evaluate_batch_chunk, plan_chunk_size

    samples_per_sigma: Dict[float, np.ndarray] = {}
    row_generators: list = []
    phase_blocks: list = []
    splitter_blocks: list = []
    row_slices: Dict[float, slice] = {}
    gating_model = None
    offset = 0
    for sigma, stream in zip(sigmas, streams):
        model = UncertaintyModel.for_case(case, sigma, perturb_sigma_stage=perturb_sigma_stage)
        if model.is_null:
            samples_per_sigma[sigma] = np.full(iterations, nominal_accuracy)
            continue
        if gating_model is None:
            gating_model = model
        row_generators.extend(spawn_rngs(stream, iterations))
        phase_blocks.append(np.full(iterations, model.phase_std))
        splitter_blocks.append(np.full(iterations, model.splitter_std))
        row_slices[sigma] = slice(offset, offset + iterations)
        offset += iterations
    if offset == 0:
        return samples_per_sigma
    phase_rows = np.concatenate(phase_blocks)[:, None]
    splitter_rows = np.concatenate(splitter_blocks)[:, None]
    base_trial = SigmaFoldedAccuracyBatchTrial(
        spnn=network,
        features=eval_features,
        labels=eval_labels,
        model=gating_model,
        use_workspace=use_workspace,
    )
    chunk = plan_chunk_size(offset, resolved, chunk_size, base_trial)
    tasks = []
    for start in range(0, offset, chunk):
        stop = min(start + chunk, offset)
        chunk_trial = replace(
            base_trial,
            phase_std_rows=phase_rows[start:stop],
            splitter_std_rows=splitter_rows[start:stop],
        )
        tasks.append(
            (start, chunk_trial, chunk_stream_payload(row_generators[start:stop], resolved))
        )
    folded = np.empty(offset, dtype=np.float64)
    with _active_recorder().span(
        "yield/folded_mc",
        rows=offset,
        sigmas=len(row_slices),
        chunks=len(tasks),
        chunk_size=chunk,
    ):
        for start, values in map_chunks(resolved, evaluate_batch_chunk, tasks, label="yield"):
            folded[start : start + len(values)] = values
    for sigma, rows in row_slices.items():
        samples_per_sigma[sigma] = folded[rows]
    return samples_per_sigma


@dataclass
class YieldSweepResult:
    """Parametric yield of one design across an uncertainty sweep."""

    sigmas: Tuple[float, ...]
    accuracy_threshold: float
    target_yield: float
    nominal_accuracy: float
    iterations: int
    case: str
    estimates: Dict[float, YieldEstimate]
    accuracy_samples: Dict[float, np.ndarray] = field(repr=False, default_factory=dict)
    #: Optional bisection refinement of the max tolerable sigma (attached by
    #: callers that run :func:`bisect_max_tolerable_sigma` after the sweep).
    bisection: Optional["SigmaBisectionResult"] = field(default=None, repr=False)

    @property
    def max_tolerable_sigma(self) -> Optional[float]:
        """Largest swept sigma whose yield still meets ``target_yield``."""
        passing = [
            sigma
            for sigma, estimate in self.estimates.items()
            if estimate.yield_fraction >= self.target_yield
        ]
        return max(passing) if passing else None

    def yield_curve(self) -> np.ndarray:
        """Yield fraction per sigma, in sweep order."""
        return np.array([self.estimates[sigma].yield_fraction for sigma in self.sigmas])

    def report(self) -> str:
        """Table of yield and mean accuracy per sigma plus the design verdict."""
        headers = ["sigma", "yield [%]", "mean acc [%]", "std err [%]"]
        rows = []
        for sigma in self.sigmas:
            estimate = self.estimates[sigma]
            rows.append(
                [
                    sigma,
                    100.0 * estimate.yield_fraction,
                    100.0 * estimate.mean_accuracy,
                    100.0 * estimate.standard_error,
                ]
            )
        header = (
            f"Yield sweep (§I) — parametric yield vs uncertainty level "
            f"(case {self.case!r}, {self.iterations} MC iterations per sigma)\n"
            f"accuracy spec >= {100.0 * self.accuracy_threshold:.2f}% "
            f"(nominal {100.0 * self.nominal_accuracy:.2f}%), "
            f"target yield {100.0 * self.target_yield:.0f}%"
        )
        max_sigma = self.max_tolerable_sigma
        footer = (
            f"max tolerable sigma for >= {100.0 * self.target_yield:.0f}% yield: "
            f"{max_sigma if max_sigma is not None else 'none (design misses the spec at every swept sigma)'}"
        )
        sections = [header, format_table(headers, rows), footer]
        if self.bisection is not None:
            refined = self.bisection.max_tolerable_sigma
            sections.append(
                f"bisection refinement ({self.bisection.num_probes} probes): "
                f"max tolerable sigma {refined if refined is not None else 'none'}"
            )
        return "\n".join(sections)


def yield_sweep(
    spnn,
    features: np.ndarray,
    labels: np.ndarray,
    sigmas: Sequence[float],
    accuracy_threshold: Optional[float] = None,
    accuracy_margin: float = 0.05,
    target_yield: float = 0.9,
    iterations: int = 1000,
    case: str = "both",
    perturb_sigma_stage: bool = True,
    rng: RNGLike = None,
    chunk_size: Optional[int] = None,
    backend: BackendLike = None,
    workers: Optional[int] = None,
    device: Optional[str] = None,
    use_workspace: bool = False,
    fold_sigmas: bool = True,
) -> YieldSweepResult:
    """Sweep the uncertainty level and estimate the parametric yield at each.

    Every sigma runs ``iterations`` realizations through the batched Monte
    Carlo engine (:func:`repro.onn.inference.monte_carlo_accuracy`) — and,
    with ``workers=N``, through the multiprocess execution backend, with
    samples bit-identical to the serial run at the same seed.  Each sweep
    position gets its own independent child stream spawned from ``rng``,
    so samples never leak between sigmas; note the streams are assigned
    positionally, so reordering or extending the sigma list changes the
    draws a given sigma receives.

    By default the sigma axis is *folded* into the Monte Carlo batch axis
    (:func:`_folded_sigma_samples`): the whole sweep is one task list
    scheduled through a single ``backend.map`` pass, with each realization
    row scaled by its own sigma's physical stds.  Samples are bit-identical
    to the per-sigma loop at every worker count; ``fold_sigmas=False``
    keeps the historical one-pass-per-sigma scheduling.

    Parameters
    ----------
    spnn:
        Compiled :class:`~repro.onn.spnn.SPNN` under test.
    features, labels:
        Evaluation set — plain arrays, or
        :class:`~repro.execution.shared.SharedArray` handles hosted by a
        caller that sweeps several designs over one worker pool (EXP 3).
        Plain arrays are hosted in shared memory automatically for the
        duration of the sweep when the backend shards across processes, so
        the eval set is pickled into each worker once instead of once per
        chunk.
    sigmas:
        Normalized uncertainty levels to sweep (``0.0`` short-circuits to
        the nominal accuracy without Monte Carlo work).
    accuracy_threshold:
        Absolute accuracy spec in ``[0, 1]``; when omitted it defaults to
        ``nominal_accuracy - accuracy_margin`` (the design must stay within
        ``accuracy_margin`` of its nominal accuracy to count as yielding).
    target_yield:
        Yield fraction the design must sustain (default 90%).
    iterations:
        Monte Carlo iterations per sigma (1000 in the paper).
    case:
        Which component families are uncertain: ``"phs"``, ``"bes"`` or
        ``"both"`` (the EXP 1 cases).
    rng:
        Seed for the sweep; defaults to a fresh seed.
    chunk_size, backend, workers:
        Forwarded to the Monte Carlo engine (see
        :func:`repro.onn.inference.monte_carlo_accuracy`).
    device:
        ``"gpu"`` runs every sigma's realizations device-resident through
        the :class:`~repro.execution.GpuBackend` (CuPy, or the strict mock
        stand-in on CPU-only machines); ``"cpu"``/``None`` keeps the CPU
        backends selected by ``backend``/``workers``.
    use_workspace:
        Recycle the vectorized engine's scratch buffers through each
        process's workspace arena (bit-identical; allocation reuse only).
    """
    # Imported lazily: the analysis package must stay importable before the
    # onn package (which itself imports the Monte Carlo engine) is built.
    from ..onn.inference import monte_carlo_accuracy

    sigmas = tuple(float(sigma) for sigma in sigmas)
    if not sigmas:
        raise ValueError("yield_sweep requires at least one sigma")
    if any(sigma < 0 for sigma in sigmas):
        raise ValueError(f"sigmas must be non-negative, got {sigmas}")
    if len(set(sigmas)) != len(sigmas):
        raise ValueError(f"sigmas must be unique (estimates are keyed by sigma), got {sigmas}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0.0 <= accuracy_margin <= 1.0:
        raise ValueError(f"accuracy_margin must be in [0, 1], got {accuracy_margin}")
    if not 0.0 < target_yield <= 1.0:
        raise ValueError(f"target_yield must be in (0, 1], got {target_yield}")
    if case.lower() not in UncertaintyModel.CASES:
        raise ValueError(f"unknown uncertainty case {case!r}; expected one of {UncertaintyModel.CASES}")

    nominal_accuracy = resolve_network(spnn).accuracy(
        resolve_array(features), resolve_array(labels), use_hardware=True
    )
    if accuracy_threshold is None:
        accuracy_threshold = max(0.0, nominal_accuracy - accuracy_margin)
    if not 0.0 <= accuracy_threshold <= 1.0:
        raise ValueError(f"accuracy_threshold must be in [0, 1], got {accuracy_threshold}")

    streams = spawn_rngs(rng, len(sigmas))
    samples_per_sigma: Dict[float, np.ndarray] = {}
    # One backend for the whole sweep, with its worker pool (if any) kept
    # alive across the per-sigma runs — forking a fresh pool per sigma would
    # dominate small sharded runs.  The eval arrays *and* the compiled mesh
    # parameters are hosted in shared memory for the same scope (unless the
    # caller already hosts them), so they cross the process boundary once
    # per worker, not once per chunk — the per-chunk payload shrinks to the
    # perturbation draws.
    resolved = resolve_backend(backend, workers, device)
    already_hosted = is_hosted_array(features) or is_hosted_array(labels)
    hosting = (
        nullcontext((features, labels))
        if already_hosted
        else shared_eval_arrays(resolved, features, labels)
    )
    network_hosting = (
        nullcontext(spnn) if is_hosted_network(spnn) else shared_network(resolved, spnn)
    )
    sweep_span = _active_recorder().span(
        "yield/sweep",
        sigmas=len(sigmas),
        iterations=iterations,
        case=case.lower(),
        folded=bool(fold_sigmas),
        parallelism=resolved.parallelism,
    )
    with sweep_span, pool_scope(resolved), hosting as (
        eval_features,
        eval_labels,
    ), network_hosting as network:
        if fold_sigmas:
            samples_per_sigma = _folded_sigma_samples(
                network,
                eval_features,
                eval_labels,
                sigmas,
                streams,
                case,
                perturb_sigma_stage,
                iterations,
                nominal_accuracy,
                chunk_size,
                resolved,
                use_workspace,
            )
        else:
            for sigma, stream in zip(sigmas, streams):
                model = UncertaintyModel.for_case(case, sigma, perturb_sigma_stage=perturb_sigma_stage)
                if model.is_null:
                    samples_per_sigma[sigma] = np.full(iterations, nominal_accuracy)
                    continue
                samples_per_sigma[sigma] = monte_carlo_accuracy(
                    network,
                    eval_features,
                    eval_labels,
                    model,
                    iterations=iterations,
                    rng=stream,
                    chunk_size=chunk_size,
                    backend=resolved,
                    use_workspace=use_workspace,
                )
    estimates = yield_vs_sigma(samples_per_sigma, accuracy_threshold)
    return YieldSweepResult(
        sigmas=sigmas,
        accuracy_threshold=float(accuracy_threshold),
        target_yield=float(target_yield),
        nominal_accuracy=float(nominal_accuracy),
        iterations=int(iterations),
        case=case.lower(),
        estimates=estimates,
        accuracy_samples=samples_per_sigma,
    )


# --------------------------------------------------------------------------- #
# bisection refinement of the max tolerable sigma
# --------------------------------------------------------------------------- #


@dataclass
class SigmaBisectionResult:
    """Bisection-refined maximum tolerable sigma of one design.

    ``max_tolerable_sigma`` is the largest *probed* sigma whose estimated
    yield meets the target (``None`` when even the lower bracket edge
    fails); ``upper_bound`` is the smallest probed sigma known to fail
    (``None`` when even the upper bracket edge passes).  The final bracket
    width is the resolution of the answer.
    """

    target_yield: float
    accuracy_threshold: float
    iterations: int
    case: str
    max_tolerable_sigma: Optional[float]
    upper_bound: Optional[float]
    #: Yield estimate at every probed sigma, in probe order.
    probes: Dict[float, YieldEstimate]

    @property
    def resolution(self) -> Optional[float]:
        """Width of the final bracket (``None`` for degenerate brackets)."""
        if self.max_tolerable_sigma is None or self.upper_bound is None:
            return None
        return float(self.upper_bound - self.max_tolerable_sigma)

    @property
    def num_probes(self) -> int:
        return len(self.probes)

    def report(self) -> str:
        """One-design bisection summary table."""
        headers = ["probed sigma", "yield [%]", "mean acc [%]"]
        rows = [
            [sigma, 100.0 * estimate.yield_fraction, 100.0 * estimate.mean_accuracy]
            for sigma, estimate in self.probes.items()
        ]
        max_sigma = self.max_tolerable_sigma
        footer = (
            f"max tolerable sigma (bisection, {self.num_probes} probes): "
            f"{max_sigma if max_sigma is not None else 'none (fails at the lower bracket edge)'}"
        )
        if self.resolution is not None:
            footer += f" (+{self.resolution:g} bracket)"
        return "\n".join([format_table(headers, rows), footer])


def bisect_max_tolerable_sigma(
    spnn,
    features,
    labels,
    accuracy_threshold: float,
    sigma_hi: float,
    sigma_lo: float = 0.0,
    tolerance: float = 5e-4,
    target_yield: float = 0.9,
    iterations: int = 1000,
    case: str = "both",
    perturb_sigma_stage: bool = True,
    rng: RNGLike = None,
    chunk_size: Optional[int] = None,
    backend: BackendLike = None,
    workers: Optional[int] = None,
    device: Optional[str] = None,
    use_workspace: bool = False,
) -> SigmaBisectionResult:
    """Refine the maximum tolerable sigma by bisection on the yield curve.

    A coarse grid answers "which swept sigma still yields" at a cost of one
    Monte Carlo run per grid point; this refines the answer to ``tolerance``
    with ``O(log((sigma_hi - sigma_lo) / tolerance))`` runs instead of a
    finer grid.  The parametric yield is monotonically non-increasing in
    sigma (more variation never helps), which is what makes the bracket
    [largest passing, smallest failing] well defined.

    The bracket edges are probed first: if ``sigma_hi`` passes the answer
    is ``sigma_hi`` (the bracket never contained the threshold), and if
    ``sigma_lo`` fails the design misses the spec everywhere
    (``max_tolerable_sigma`` is ``None``; a ``sigma_lo`` of 0 counts as
    passing by construction when the nominal accuracy meets the spec).

    Every probe draws its Monte Carlo samples from an independent child
    stream spawned from ``rng`` up front, so the probed values are
    reproducible; the worker pool (if any) and the shared-memory eval
    hosting persist across all probes.
    """
    # Imported lazily, matching yield_sweep.
    from ..onn.inference import monte_carlo_accuracy

    if not 0.0 <= sigma_lo < sigma_hi:
        raise ValueError(f"need 0 <= sigma_lo < sigma_hi, got [{sigma_lo}, {sigma_hi}]")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0.0 <= accuracy_threshold <= 1.0:
        raise ValueError(f"accuracy_threshold must be in [0, 1], got {accuracy_threshold}")
    if not 0.0 < target_yield <= 1.0:
        raise ValueError(f"target_yield must be in (0, 1], got {target_yield}")
    if case.lower() not in UncertaintyModel.CASES:
        raise ValueError(f"unknown uncertainty case {case!r}; expected one of {UncertaintyModel.CASES}")

    # Upper bound on the probes actually needed: the two bracket edges plus
    # the halvings down to the tolerance, plus slack for the floating-point
    # halving leaving the bracket marginally above the tolerance for one
    # extra iteration when range/tolerance is a near-power of two.
    # Spawning the streams up front keeps every probe's samples independent
    # of how the bracket evolves; unconsumed streams are free.
    max_probes = 4 + max(1, int(np.ceil(np.log2(max(2.0, (sigma_hi - sigma_lo) / tolerance)))))
    streams = iter(spawn_rngs(rng, max_probes))

    probes: Dict[float, YieldEstimate] = {}
    nominal_accuracy = resolve_network(spnn).accuracy(
        resolve_array(features), resolve_array(labels), use_hardware=True
    )

    resolved = resolve_backend(backend, workers, device)
    already_hosted = is_hosted_array(features) or is_hosted_array(labels)
    hosting = (
        nullcontext((features, labels))
        if already_hosted
        else shared_eval_arrays(resolved, features, labels)
    )
    network_hosting = (
        nullcontext(spnn) if is_hosted_network(spnn) else shared_network(resolved, spnn)
    )
    bisect_span = _active_recorder().span(
        "yield/bisect",
        iterations=iterations,
        case=case.lower(),
        parallelism=resolved.parallelism,
    )
    with bisect_span, pool_scope(resolved), hosting as (
        eval_features,
        eval_labels,
    ), network_hosting as network:

        def probe(sigma: float) -> bool:
            model = UncertaintyModel.for_case(case, sigma, perturb_sigma_stage=perturb_sigma_stage)
            if model.is_null:
                samples = np.full(iterations, nominal_accuracy)
            else:
                samples = monte_carlo_accuracy(
                    network,
                    eval_features,
                    eval_labels,
                    model,
                    iterations=iterations,
                    rng=next(streams),
                    chunk_size=chunk_size,
                    backend=resolved,
                    use_workspace=use_workspace,
                )
            estimate = estimate_yield(samples, accuracy_threshold)
            probes[float(sigma)] = estimate
            return estimate.yield_fraction >= target_yield

        if probe(sigma_hi):
            return SigmaBisectionResult(
                target_yield=float(target_yield),
                accuracy_threshold=float(accuracy_threshold),
                iterations=int(iterations),
                case=case.lower(),
                max_tolerable_sigma=float(sigma_hi),
                upper_bound=None,
                probes=probes,
            )
        if not probe(sigma_lo):
            return SigmaBisectionResult(
                target_yield=float(target_yield),
                accuracy_threshold=float(accuracy_threshold),
                iterations=int(iterations),
                case=case.lower(),
                max_tolerable_sigma=None,
                upper_bound=float(sigma_lo),
                probes=probes,
            )
        lo, hi = float(sigma_lo), float(sigma_hi)
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if probe(mid):
                lo = mid
            else:
                hi = mid

    return SigmaBisectionResult(
        target_yield=float(target_yield),
        accuracy_threshold=float(accuracy_threshold),
        iterations=int(iterations),
        case=case.lower(),
        max_tolerable_sigma=lo,
        upper_bound=hi,
        probes=probes,
    )
