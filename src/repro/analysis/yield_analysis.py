"""Yield analysis: turning Monte Carlo accuracy samples into design metrics.

The paper motivates its framework by the need to "identify critical
components during design time ... for improving the yield" (§I).  This
module provides the missing last step: given Monte Carlo accuracy samples
(from :func:`repro.onn.inference.monte_carlo_accuracy` or the EXP 1 runner),
compute the *parametric yield* — the fraction of fabricated networks that
would still meet an accuracy specification — and sweep it against the
uncertainty level to find the maximum tolerable sigma for a target yield.

:func:`yield_sweep` drives that sweep end to end through the batched Monte
Carlo engine (and, with ``workers=N``, through the multiprocess execution
backend) so the yield curve of a design is one call away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..execution import BackendLike, pool_scope, resolve_backend
from ..utils.rng import RNGLike, spawn_rngs
from ..utils.serialization import format_table
from ..variation.models import UncertaintyModel


@dataclass(frozen=True)
class YieldEstimate:
    """Estimated yield at one uncertainty level.

    Attributes
    ----------
    accuracy_threshold:
        Minimum acceptable accuracy (the "spec").
    yield_fraction:
        Fraction of Monte Carlo samples meeting the spec.
    mean_accuracy:
        Mean accuracy of the samples (for context).
    samples:
        Number of Monte Carlo samples the estimate is based on.
    """

    accuracy_threshold: float
    yield_fraction: float
    mean_accuracy: float
    samples: int

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the yield estimate."""
        p, n = self.yield_fraction, self.samples
        if n <= 1:
            return float("inf")
        return float(np.sqrt(p * (1.0 - p) / n))


def estimate_yield(accuracies: Sequence[float], accuracy_threshold: float) -> YieldEstimate:
    """Fraction of uncertainty realizations whose accuracy meets the spec.

    Parameters
    ----------
    accuracies:
        Monte Carlo accuracy samples in ``[0, 1]``.
    accuracy_threshold:
        Minimum acceptable accuracy in ``[0, 1]``.
    """
    samples = np.asarray(accuracies, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("accuracies must be a non-empty 1-D sequence")
    if not 0.0 <= accuracy_threshold <= 1.0:
        raise ValueError(f"accuracy_threshold must be in [0, 1], got {accuracy_threshold}")
    meeting = float(np.mean(samples >= accuracy_threshold))
    return YieldEstimate(
        accuracy_threshold=float(accuracy_threshold),
        yield_fraction=meeting,
        mean_accuracy=float(samples.mean()),
        samples=int(samples.size),
    )


def yield_vs_sigma(
    accuracy_samples_per_sigma: Dict[float, Sequence[float]],
    accuracy_threshold: float,
) -> Dict[float, YieldEstimate]:
    """Yield estimate for every uncertainty level in a sweep.

    ``accuracy_samples_per_sigma`` maps the normalized sigma to the Monte
    Carlo accuracy samples collected at that level (e.g. from an EXP 1 run:
    ``{sigma: result.samples for sigma, result in zip(config.sigmas, results['both'])}``).
    """
    return {
        float(sigma): estimate_yield(samples, accuracy_threshold)
        for sigma, samples in accuracy_samples_per_sigma.items()
    }


def max_tolerable_sigma(
    accuracy_samples_per_sigma: Dict[float, Sequence[float]],
    accuracy_threshold: float,
    target_yield: float = 0.9,
) -> Optional[float]:
    """Largest swept sigma whose estimated yield still meets ``target_yield``.

    Returns ``None`` when no swept level (including the smallest) meets the
    target — i.e. the design is not manufacturable at the required spec.
    """
    if not 0.0 < target_yield <= 1.0:
        raise ValueError(f"target_yield must be in (0, 1], got {target_yield}")
    estimates = yield_vs_sigma(accuracy_samples_per_sigma, accuracy_threshold)
    passing = [sigma for sigma, estimate in estimates.items() if estimate.yield_fraction >= target_yield]
    return max(passing) if passing else None


# --------------------------------------------------------------------------- #
# end-to-end sigma sweep on the batched Monte Carlo engine
# --------------------------------------------------------------------------- #


@dataclass
class YieldSweepResult:
    """Parametric yield of one design across an uncertainty sweep."""

    sigmas: Tuple[float, ...]
    accuracy_threshold: float
    target_yield: float
    nominal_accuracy: float
    iterations: int
    case: str
    estimates: Dict[float, YieldEstimate]
    accuracy_samples: Dict[float, np.ndarray] = field(repr=False, default_factory=dict)

    @property
    def max_tolerable_sigma(self) -> Optional[float]:
        """Largest swept sigma whose yield still meets ``target_yield``."""
        passing = [
            sigma
            for sigma, estimate in self.estimates.items()
            if estimate.yield_fraction >= self.target_yield
        ]
        return max(passing) if passing else None

    def yield_curve(self) -> np.ndarray:
        """Yield fraction per sigma, in sweep order."""
        return np.array([self.estimates[sigma].yield_fraction for sigma in self.sigmas])

    def report(self) -> str:
        """Table of yield and mean accuracy per sigma plus the design verdict."""
        headers = ["sigma", "yield [%]", "mean acc [%]", "std err [%]"]
        rows = []
        for sigma in self.sigmas:
            estimate = self.estimates[sigma]
            rows.append(
                [
                    sigma,
                    100.0 * estimate.yield_fraction,
                    100.0 * estimate.mean_accuracy,
                    100.0 * estimate.standard_error,
                ]
            )
        header = (
            f"Yield sweep (§I) — parametric yield vs uncertainty level "
            f"(case {self.case!r}, {self.iterations} MC iterations per sigma)\n"
            f"accuracy spec >= {100.0 * self.accuracy_threshold:.2f}% "
            f"(nominal {100.0 * self.nominal_accuracy:.2f}%), "
            f"target yield {100.0 * self.target_yield:.0f}%"
        )
        max_sigma = self.max_tolerable_sigma
        footer = (
            f"max tolerable sigma for >= {100.0 * self.target_yield:.0f}% yield: "
            f"{max_sigma if max_sigma is not None else 'none (design misses the spec at every swept sigma)'}"
        )
        return "\n".join([header, format_table(headers, rows), footer])


def yield_sweep(
    spnn,
    features: np.ndarray,
    labels: np.ndarray,
    sigmas: Sequence[float],
    accuracy_threshold: Optional[float] = None,
    accuracy_margin: float = 0.05,
    target_yield: float = 0.9,
    iterations: int = 1000,
    case: str = "both",
    perturb_sigma_stage: bool = True,
    rng: RNGLike = None,
    chunk_size: Optional[int] = None,
    backend: BackendLike = None,
    workers: Optional[int] = None,
) -> YieldSweepResult:
    """Sweep the uncertainty level and estimate the parametric yield at each.

    Every sigma runs ``iterations`` realizations through the batched Monte
    Carlo engine (:func:`repro.onn.inference.monte_carlo_accuracy`) — and,
    with ``workers=N``, through the multiprocess execution backend, with
    samples bit-identical to the serial run at the same seed.  Each sweep
    position gets its own independent child stream spawned from ``rng``,
    so samples never leak between sigmas; note the streams are assigned
    positionally, so reordering or extending the sigma list changes the
    draws a given sigma receives.

    Parameters
    ----------
    spnn:
        Compiled :class:`~repro.onn.spnn.SPNN` under test.
    features, labels:
        Evaluation set.
    sigmas:
        Normalized uncertainty levels to sweep (``0.0`` short-circuits to
        the nominal accuracy without Monte Carlo work).
    accuracy_threshold:
        Absolute accuracy spec in ``[0, 1]``; when omitted it defaults to
        ``nominal_accuracy - accuracy_margin`` (the design must stay within
        ``accuracy_margin`` of its nominal accuracy to count as yielding).
    target_yield:
        Yield fraction the design must sustain (default 90%).
    iterations:
        Monte Carlo iterations per sigma (1000 in the paper).
    case:
        Which component families are uncertain: ``"phs"``, ``"bes"`` or
        ``"both"`` (the EXP 1 cases).
    rng:
        Seed for the sweep; defaults to a fresh seed.
    chunk_size, backend, workers:
        Forwarded to the Monte Carlo engine (see
        :func:`repro.onn.inference.monte_carlo_accuracy`).
    """
    # Imported lazily: the analysis package must stay importable before the
    # onn package (which itself imports the Monte Carlo engine) is built.
    from ..onn.inference import monte_carlo_accuracy

    sigmas = tuple(float(sigma) for sigma in sigmas)
    if not sigmas:
        raise ValueError("yield_sweep requires at least one sigma")
    if any(sigma < 0 for sigma in sigmas):
        raise ValueError(f"sigmas must be non-negative, got {sigmas}")
    if len(set(sigmas)) != len(sigmas):
        raise ValueError(f"sigmas must be unique (estimates are keyed by sigma), got {sigmas}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0.0 <= accuracy_margin <= 1.0:
        raise ValueError(f"accuracy_margin must be in [0, 1], got {accuracy_margin}")
    if not 0.0 < target_yield <= 1.0:
        raise ValueError(f"target_yield must be in (0, 1], got {target_yield}")
    if case.lower() not in UncertaintyModel.CASES:
        raise ValueError(f"unknown uncertainty case {case!r}; expected one of {UncertaintyModel.CASES}")

    nominal_accuracy = spnn.accuracy(features, labels, use_hardware=True)
    if accuracy_threshold is None:
        accuracy_threshold = max(0.0, nominal_accuracy - accuracy_margin)
    if not 0.0 <= accuracy_threshold <= 1.0:
        raise ValueError(f"accuracy_threshold must be in [0, 1], got {accuracy_threshold}")

    streams = spawn_rngs(rng, len(sigmas))
    samples_per_sigma: Dict[float, np.ndarray] = {}
    # One backend for the whole sweep, with its worker pool (if any) kept
    # alive across the per-sigma runs — forking a fresh pool per sigma would
    # dominate small sharded runs.
    resolved = resolve_backend(backend, workers)
    with pool_scope(resolved):
        for sigma, stream in zip(sigmas, streams):
            model = UncertaintyModel.for_case(case, sigma, perturb_sigma_stage=perturb_sigma_stage)
            if model.is_null:
                samples_per_sigma[sigma] = np.full(iterations, nominal_accuracy)
                continue
            samples_per_sigma[sigma] = monte_carlo_accuracy(
                spnn,
                features,
                labels,
                model,
                iterations=iterations,
                rng=stream,
                chunk_size=chunk_size,
                backend=resolved,
            )
    estimates = yield_vs_sigma(samples_per_sigma, accuracy_threshold)
    return YieldSweepResult(
        sigmas=sigmas,
        accuracy_threshold=float(accuracy_threshold),
        target_yield=float(target_yield),
        nominal_accuracy=float(nominal_accuracy),
        iterations=int(iterations),
        case=case.lower(),
        estimates=estimates,
        accuracy_samples=samples_per_sigma,
    )
