"""Analysis layer: RVD, sensitivity maps, Monte Carlo engine, criticality
ranking, drift timelines and recalibration policies."""

from .critical import (
    BatchMetricFn,
    ComponentCriticality,
    CriticalityReport,
    MetricFn,
    SingleMZIRVDMetric,
    per_mzi_rvd_criticality,
    score_components,
)
from .monte_carlo import BatchTrial, MonteCarloResult, MonteCarloRunner, Trial
from .recalibration import (
    RecalibrationPolicy,
    RenullCost,
    RenullReport,
    measure_renull_cost,
    renull_network,
)
from .rvd import mean_rvd, normalized_rvd, rvd, rvd_batch, rvd_matrix
from .sensitivity import (
    ELEMENT_LABELS,
    SensitivityMap,
    device_sensitivity_map,
    exact_relative_deviation,
    first_order_model_error,
)
from .statistics import (
    SummaryStatistics,
    confidence_interval,
    margin_of_error,
    required_iterations,
    summarize,
    worst_case_margin_of_error,
)
from .timeline import (
    AccuracyTimelineTrial,
    TimelineSweepResult,
    timeline_sweep,
    timeline_sweep_multi,
)
from .yield_analysis import (
    YieldEstimate,
    YieldSweepResult,
    estimate_yield,
    max_tolerable_sigma,
    yield_sweep,
    yield_vs_sigma,
)

__all__ = [
    "rvd",
    "rvd_batch",
    "rvd_matrix",
    "mean_rvd",
    "normalized_rvd",
    "SensitivityMap",
    "device_sensitivity_map",
    "exact_relative_deviation",
    "first_order_model_error",
    "ELEMENT_LABELS",
    "MonteCarloRunner",
    "MonteCarloResult",
    "Trial",
    "BatchTrial",
    "SummaryStatistics",
    "summarize",
    "margin_of_error",
    "worst_case_margin_of_error",
    "confidence_interval",
    "required_iterations",
    "ComponentCriticality",
    "CriticalityReport",
    "MetricFn",
    "BatchMetricFn",
    "SingleMZIRVDMetric",
    "per_mzi_rvd_criticality",
    "score_components",
    "YieldEstimate",
    "YieldSweepResult",
    "estimate_yield",
    "yield_vs_sigma",
    "yield_sweep",
    "max_tolerable_sigma",
    "RecalibrationPolicy",
    "RenullReport",
    "RenullCost",
    "renull_network",
    "measure_renull_cost",
    "AccuracyTimelineTrial",
    "TimelineSweepResult",
    "timeline_sweep",
    "timeline_sweep_multi",
]
