"""Relative-variation distance (RVD) figure of merit (paper §III-C).

The paper quantifies how far a perturbed unitary ``U`` deviates from its
intended form ``U_ref`` with::

    RVD(U, U_ref) = sum_{m,n} |U_mn - U_ref_mn| / |U_ref_mn|

i.e. the element-wise absolute deviation normalized by the magnitude of the
nominal element, summed over the matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ShapeError
from ..utils.validation import as_complex_array


def rvd(actual: np.ndarray, reference: np.ndarray, eps: float = 0.0) -> float:
    """Relative-variation distance between ``actual`` and ``reference``.

    Parameters
    ----------
    actual:
        The deviated matrix ``U``.
    reference:
        The intended (nominal) matrix ``U_ref``.
    eps:
        Optional floor added to ``|U_ref_mn|`` in the denominator.  The
        paper's definition has no floor (its unitaries have no vanishing
        elements); pass a small positive value when reference elements can
        be numerically zero.

    Returns
    -------
    float
        The RVD value (0 for identical matrices, grows with deviation).
    """
    actual = as_complex_array(actual, "actual")
    reference = as_complex_array(reference, "reference")
    if actual.shape != reference.shape:
        raise ShapeError(f"shape mismatch: actual {actual.shape} vs reference {reference.shape}")
    magnitude = np.abs(reference)
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    if eps == 0.0 and np.any(magnitude == 0.0):
        raise ZeroDivisionError(
            "reference matrix has zero-magnitude elements; pass eps > 0 to regularize the RVD"
        )
    return float(np.sum(np.abs(actual - reference) / (magnitude + eps)))


def rvd_matrix(actual: np.ndarray, reference: np.ndarray, eps: float = 0.0) -> np.ndarray:
    """Element-wise RVD contributions ``|U_mn - U_ref_mn| / |U_ref_mn|``."""
    actual = as_complex_array(actual, "actual")
    reference = as_complex_array(reference, "reference")
    if actual.shape != reference.shape:
        raise ShapeError(f"shape mismatch: actual {actual.shape} vs reference {reference.shape}")
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    magnitude = np.abs(reference)
    if eps == 0.0 and np.any(magnitude == 0.0):
        raise ZeroDivisionError(
            "reference matrix has zero-magnitude elements; pass eps > 0 to regularize the RVD"
        )
    return np.abs(actual - reference) / (magnitude + eps)


def rvd_batch(actuals: np.ndarray, reference: np.ndarray, eps: float = 0.0) -> np.ndarray:
    """RVD of a stack of deviated matrices against one reference.

    Parameters
    ----------
    actuals:
        Array of shape ``(B, ...)`` where the trailing dimensions match
        ``reference`` — the ``B`` Monte Carlo realizations.
    reference:
        The intended (nominal) matrix.
    eps:
        Same denominator floor as :func:`rvd`.

    Returns
    -------
    numpy.ndarray
        RVD per realization, shape ``(B,)``; bit-identical to calling
        :func:`rvd` on each slice.
    """
    actuals = as_complex_array(actuals, "actuals")
    reference = as_complex_array(reference, "reference")
    if actuals.ndim != reference.ndim + 1 or actuals.shape[1:] != reference.shape:
        raise ShapeError(
            f"actuals must have shape (B,) + {reference.shape}, got {actuals.shape}"
        )
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    magnitude = np.abs(reference)
    if eps == 0.0 and np.any(magnitude == 0.0):
        raise ZeroDivisionError(
            "reference matrix has zero-magnitude elements; pass eps > 0 to regularize the RVD"
        )
    axes = tuple(range(1, actuals.ndim))
    return np.sum(np.abs(actuals - reference) / (magnitude + eps), axis=axes)


def mean_rvd(actuals, reference: np.ndarray, eps: float = 0.0) -> float:
    """Average RVD of several deviated matrices against one reference.

    This is the quantity plotted per MZI in the paper's Fig. 3 (averaged
    over Monte Carlo realizations).
    """
    actuals = list(actuals)
    if not actuals:
        raise ValueError("mean_rvd requires at least one deviated matrix")
    return float(np.mean([rvd(actual, reference, eps=eps) for actual in actuals]))


def normalized_rvd(actual: np.ndarray, reference: np.ndarray, eps: float = 0.0) -> float:
    """RVD divided by the number of matrix elements (per-element average).

    Forwards the full input validation of :func:`rvd` (shape agreement,
    ``eps >= 0``, zero-magnitude reference elements) and additionally
    rejects empty references, whose per-element average is undefined.
    """
    reference = as_complex_array(reference, "reference")
    if reference.size == 0:
        raise ShapeError("normalized_rvd requires a non-empty reference matrix")
    return rvd(actual, reference, eps=eps) / reference.size
