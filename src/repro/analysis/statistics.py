"""Statistics utilities for Monte Carlo experiments.

The paper justifies using 1000 Monte Carlo iterations by bounding the 95%
confidence-interval margin of error of the mean inferencing accuracy at
6.27% (§III-D).  The helpers here compute exactly those quantities so the
claim can be checked against measured samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class SummaryStatistics:
    """Summary of a set of Monte Carlo samples."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int
    confidence: float
    margin_of_error: float

    @property
    def confidence_interval(self) -> Tuple[float, float]:
        return (self.mean - self.margin_of_error, self.mean + self.margin_of_error)


def margin_of_error(samples: Sequence[float], confidence: float = 0.95) -> float:
    """Margin of error of the sample mean at the given confidence level.

    Uses the normal approximation ``z * s / sqrt(n)`` (the paper's
    survey-style formula); for ``n = 1`` the margin is infinite.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if samples.size == 1:
        return float("inf")
    z = scipy_stats.norm.ppf(0.5 + confidence / 2.0)
    return float(z * samples.std(ddof=1) / np.sqrt(samples.size))


def worst_case_margin_of_error(iterations: int, confidence: float = 0.95, proportion_std: float = 0.5) -> float:
    """A-priori margin of error for a proportion estimated from ``iterations`` samples.

    With the conservative ``p = 0.5`` assumption this reproduces the paper's
    justification: 1000 iterations give a worst-case 95% margin of error of
    about 3.1% for a proportion in [0, 1]; the paper's 6.27% figure
    corresponds to the full width of that interval expressed in percent.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = scipy_stats.norm.ppf(0.5 + confidence / 2.0)
    return float(z * proportion_std / np.sqrt(iterations))


def confidence_interval(samples: Sequence[float], confidence: float = 0.95) -> Tuple[float, float]:
    """Confidence interval of the sample mean (normal approximation)."""
    samples = np.asarray(samples, dtype=np.float64)
    moe = margin_of_error(samples, confidence)
    mean = float(samples.mean())
    return (mean - moe, mean + moe)


def summarize(samples: Sequence[float], confidence: float = 0.95) -> SummaryStatistics:
    """Full summary (mean/std/min/max/margin of error) of MC samples."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    return SummaryStatistics(
        mean=float(samples.mean()),
        std=float(samples.std(ddof=1)) if samples.size > 1 else 0.0,
        minimum=float(samples.min()),
        maximum=float(samples.max()),
        count=int(samples.size),
        confidence=float(confidence),
        margin_of_error=margin_of_error(samples, confidence) if samples.size > 1 else float("inf"),
    )


def required_iterations(target_margin: float, confidence: float = 0.95, proportion_std: float = 0.5) -> int:
    """Iterations needed so the worst-case margin of error falls below ``target_margin``."""
    if target_margin <= 0:
        raise ValueError(f"target_margin must be positive, got {target_margin}")
    z = scipy_stats.norm.ppf(0.5 + confidence / 2.0)
    return int(np.ceil((z * proportion_std / target_margin) ** 2))
