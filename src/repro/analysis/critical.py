"""Critical-component identification (the paper's design-time framework).

The stated purpose of the paper's modeling framework is to identify, before
fabrication, which MZIs / regions of an SPNN are *critical* — i.e. where
random uncertainties cause disproportionate damage (§I, §III-C/D).  This
module implements that identification at two granularities:

* per-MZI criticality of a single unitary mesh, scored by the average RVD
  when only that device is perturbed (the Fig. 3 study), and
* per-zone criticality of a full SPNN, scored by the mean accuracy loss when
  the zone's uncertainty is elevated (the Fig. 5 / EXP 2 study) — see
  :mod:`repro.experiments.exp2_zonal` for the experiment wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..mesh.mesh import MeshPerturbationBatch, MZIMesh
from ..utils.rng import RNGLike, spawn_rngs
from ..variation.models import UncertaintyModel
from ..variation.sampler import sample_single_mzi_perturbation
from .rvd import rvd, rvd_batch
from .statistics import summarize


@dataclass(frozen=True)
class ComponentCriticality:
    """Criticality score of one component (MZI or zone)."""

    identifier: int
    score: float
    std: float
    extra: tuple = ()

    def __lt__(self, other: "ComponentCriticality") -> bool:  # pragma: no cover - trivial
        return self.score < other.score


@dataclass
class CriticalityReport:
    """Ranked criticality scores for the components of one mesh/network."""

    scores: List[ComponentCriticality]
    metric: str

    def ranked(self, descending: bool = True) -> List[ComponentCriticality]:
        """Components sorted by score (most critical first by default)."""
        return sorted(self.scores, key=lambda c: c.score, reverse=descending)

    def most_critical(self, count: int = 1) -> List[ComponentCriticality]:
        return self.ranked()[: max(0, count)]

    def least_critical(self, count: int = 1) -> List[ComponentCriticality]:
        return self.ranked(descending=False)[: max(0, count)]

    def as_array(self) -> np.ndarray:
        """Scores ordered by component identifier (useful for plotting)."""
        ordered = sorted(self.scores, key=lambda c: c.identifier)
        return np.array([c.score for c in ordered], dtype=np.float64)

    @property
    def spread(self) -> float:
        """Max minus min score — the paper's evidence that impact is non-uniform."""
        values = self.as_array()
        return float(values.max() - values.min()) if values.size else 0.0


def per_mzi_rvd_criticality(
    mesh: MZIMesh,
    model: UncertaintyModel,
    iterations: int = 1000,
    rng: RNGLike = None,
    rvd_eps: float = 0.0,
    vectorized: bool = True,
) -> CriticalityReport:
    """Average RVD of a mesh when each MZI is perturbed in isolation (Fig. 3).

    For every MZI the mesh is re-evaluated ``iterations`` times with random
    perturbations applied to that device only; the average RVD against the
    nominal unitary is that device's criticality score.

    The vectorized path (default) stacks the ``iterations`` realizations of
    one device and evaluates them with :meth:`MZIMesh.matrix_batch`; it
    draws from the same per-device streams as the loop and produces
    bit-identical scores.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    reference = mesh.ideal_matrix()
    streams = spawn_rngs(rng, mesh.num_mzis)
    scores: List[ComponentCriticality] = []
    for mzi_index, stream in enumerate(streams):
        if vectorized:
            realizations = [
                sample_single_mzi_perturbation(mesh, mzi_index, model, stream)
                for _ in range(iterations)
            ]
            matrices = mesh.matrix_batch(MeshPerturbationBatch.stack(realizations))
            samples = rvd_batch(matrices, reference, eps=rvd_eps)
        else:
            samples = np.empty(iterations, dtype=np.float64)
            for iteration in range(iterations):
                perturbation = sample_single_mzi_perturbation(mesh, mzi_index, model, stream)
                samples[iteration] = rvd(mesh.matrix(perturbation), reference, eps=rvd_eps)
        summary = summarize(samples)
        scores.append(
            ComponentCriticality(identifier=mzi_index, score=summary.mean, std=summary.std)
        )
    return CriticalityReport(scores=scores, metric="mean_rvd")


def score_components(
    component_ids: Sequence[int],
    metric_fn: Callable[[int, np.random.Generator], float],
    iterations: int,
    rng: RNGLike = None,
    metric: str = "custom",
) -> CriticalityReport:
    """Generic criticality scoring loop.

    ``metric_fn(component_id, generator)`` evaluates the impact metric for
    one Monte Carlo draw targeting one component; the component score is the
    mean over ``iterations`` draws.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    streams = spawn_rngs(rng, len(component_ids))
    scores: List[ComponentCriticality] = []
    for component_id, stream in zip(component_ids, streams):
        samples = np.array(
            [float(metric_fn(component_id, stream)) for _ in range(iterations)], dtype=np.float64
        )
        summary = summarize(samples)
        scores.append(
            ComponentCriticality(identifier=int(component_id), score=summary.mean, std=summary.std)
        )
    return CriticalityReport(scores=scores, metric=metric)
