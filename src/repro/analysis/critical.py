"""Critical-component identification (the paper's design-time framework).

The stated purpose of the paper's modeling framework is to identify, before
fabrication, which MZIs / regions of an SPNN are *critical* — i.e. where
random uncertainties cause disproportionate damage (§I, §III-C/D).  This
module implements that identification at two granularities:

* per-MZI criticality of a single unitary mesh, scored by the average RVD
  when only that device is perturbed (the Fig. 3 study), and
* per-zone criticality of a full SPNN, scored by the mean accuracy loss when
  the zone's uncertainty is elevated (the Fig. 5 / EXP 2 study) — see
  :mod:`repro.experiments.exp2_zonal` for the experiment wrapper.

Scoring follows the engine-wide stream discipline: one child stream per
component, spawned up front, consumed identically by the scalar loop and
the batched metric — so scores are bit-identical across evaluation paths,
backends and worker counts, and components can be sharded across processes
(``workers=N``) without changing a single sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..execution import BackendLike, resolve_backend
from ..mesh.mesh import MeshPerturbationBatch, MZIMesh
from ..utils.rng import RNGLike, spawn_rngs
from ..variation.models import UncertaintyModel
from ..variation.sampler import sample_single_mzi_perturbation
from .rvd import rvd, rvd_batch
from .statistics import summarize

#: Scalar criticality metric: one Monte Carlo draw for one component.
MetricFn = Callable[[int, np.random.Generator], float]

#: Batched criticality metric: all ``iterations`` draws for one component at
#: once, consuming the component's stream exactly as the scalar loop would;
#: returns samples of shape ``(iterations,)``.
BatchMetricFn = Callable[[int, np.random.Generator, int], np.ndarray]

#: Worker payload for one component's scoring run.
ComponentTask = Tuple[int, np.random.Generator, int, Optional[MetricFn], Optional[BatchMetricFn]]


@dataclass(frozen=True)
class ComponentCriticality:
    """Criticality score of one component (MZI or zone)."""

    identifier: int
    score: float
    std: float
    extra: tuple = ()

    def __lt__(self, other: "ComponentCriticality") -> bool:  # pragma: no cover - trivial
        return self.score < other.score


@dataclass
class CriticalityReport:
    """Ranked criticality scores for the components of one mesh/network."""

    scores: List[ComponentCriticality]
    metric: str

    def ranked(self, descending: bool = True) -> List[ComponentCriticality]:
        """Components sorted by score (most critical first by default)."""
        return sorted(self.scores, key=lambda c: c.score, reverse=descending)

    def most_critical(self, count: int = 1) -> List[ComponentCriticality]:
        return self.ranked()[: max(0, count)]

    def least_critical(self, count: int = 1) -> List[ComponentCriticality]:
        return self.ranked(descending=False)[: max(0, count)]

    def as_array(self) -> np.ndarray:
        """Scores ordered by component identifier (useful for plotting)."""
        ordered = sorted(self.scores, key=lambda c: c.identifier)
        return np.array([c.score for c in ordered], dtype=np.float64)

    @property
    def spread(self) -> float:
        """Max minus min score — the paper's evidence that impact is non-uniform."""
        values = self.as_array()
        return float(values.max() - values.min()) if values.size else 0.0


def evaluate_component_samples(task: ComponentTask) -> Tuple[int, np.ndarray]:
    """Draw one component's Monte Carlo samples; returns ``(id, samples)``.

    Module-level so process backends can pickle it into workers.  The
    batched metric (when provided) must consume the stream exactly as the
    scalar loop would to keep the two paths bit-identical.
    """
    component_id, generator, iterations, metric_fn, batch_metric_fn = task
    if batch_metric_fn is not None:
        samples = np.asarray(batch_metric_fn(component_id, generator, iterations), dtype=np.float64)
        if samples.shape != (iterations,):
            raise ShapeError(
                f"batched metric must return shape ({iterations},), got {samples.shape}"
            )
    else:
        samples = np.array(
            [float(metric_fn(component_id, generator)) for _ in range(iterations)],
            dtype=np.float64,
        )
    return component_id, samples


def score_components(
    component_ids: Sequence[int],
    metric_fn: Optional[MetricFn] = None,
    iterations: int = 1000,
    rng: RNGLike = None,
    metric: str = "custom",
    batch_metric_fn: Optional[BatchMetricFn] = None,
    backend: BackendLike = None,
    workers: Optional[int] = None,
) -> CriticalityReport:
    """Generic criticality scoring loop on the batched/sharded engine.

    ``metric_fn(component_id, generator)`` evaluates the impact metric for
    one Monte Carlo draw targeting one component; the component score is the
    mean over ``iterations`` draws.  ``batch_metric_fn(component_id,
    generator, iterations)`` evaluates all of a component's draws at once
    (vectorized) and takes precedence when provided; the scalar path stays
    as the reference implementation and a batched metric that consumes the
    stream identically is bit-identical to it.

    Components are independent work units: with ``workers=N`` (or an
    explicit ``backend``) they are sharded across processes, each worker
    receiving the component's pre-spawned child stream — scores do not
    depend on the worker count.  Metric callables must then be picklable
    (module-level functions, bound methods of picklable objects).
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if metric_fn is None and batch_metric_fn is None:
        raise ValueError("score_components requires metric_fn and/or batch_metric_fn")
    component_ids = [int(component_id) for component_id in component_ids]
    streams = spawn_rngs(rng, len(component_ids))
    tasks: List[ComponentTask] = [
        (component_id, stream, iterations, metric_fn, batch_metric_fn)
        for component_id, stream in zip(component_ids, streams)
    ]
    results = resolve_backend(backend, workers).map(evaluate_component_samples, tasks)
    scores: List[ComponentCriticality] = []
    for component_id, samples in results:
        summary = summarize(samples)
        scores.append(
            ComponentCriticality(identifier=component_id, score=summary.mean, std=summary.std)
        )
    return CriticalityReport(scores=scores, metric=metric)


@dataclass(frozen=True, eq=False)
class SingleMZIRVDMetric:
    """Criticality metric of the Fig. 3 study: RVD with one MZI perturbed.

    Picklable callable pair for :func:`score_components` — ``scalar``
    evaluates one draw, ``batched`` stacks a component's ``iterations``
    realizations and evaluates them with :meth:`MZIMesh.matrix_batch`.
    Both consume the component stream with exactly the same draws.
    """

    mesh: MZIMesh
    model: UncertaintyModel
    reference: np.ndarray
    rvd_eps: float = 0.0

    def scalar(self, mzi_index: int, generator: np.random.Generator) -> float:
        perturbation = sample_single_mzi_perturbation(self.mesh, mzi_index, self.model, generator)
        return rvd(self.mesh.matrix(perturbation), self.reference, eps=self.rvd_eps)

    def batched(self, mzi_index: int, generator: np.random.Generator, iterations: int) -> np.ndarray:
        realizations = [
            sample_single_mzi_perturbation(self.mesh, mzi_index, self.model, generator)
            for _ in range(iterations)
        ]
        matrices = self.mesh.matrix_batch(MeshPerturbationBatch.stack(realizations))
        return rvd_batch(matrices, self.reference, eps=self.rvd_eps)


def per_mzi_rvd_criticality(
    mesh: MZIMesh,
    model: UncertaintyModel,
    iterations: int = 1000,
    rng: RNGLike = None,
    rvd_eps: float = 0.0,
    vectorized: bool = True,
    backend: BackendLike = None,
    workers: Optional[int] = None,
) -> CriticalityReport:
    """Average RVD of a mesh when each MZI is perturbed in isolation (Fig. 3).

    For every MZI the mesh is re-evaluated ``iterations`` times with random
    perturbations applied to that device only; the average RVD against the
    nominal unitary is that device's criticality score.

    The vectorized path (default) stacks the ``iterations`` realizations of
    one device and evaluates them with :meth:`MZIMesh.matrix_batch`; it
    draws from the same per-device streams as the loop and produces
    bit-identical scores.  With ``workers=N`` the devices are sharded
    across worker processes — again bit-identical, each device's stream is
    spawned up front and consumed in one place.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    scorer = SingleMZIRVDMetric(
        mesh=mesh, model=model, reference=mesh.ideal_matrix(), rvd_eps=rvd_eps
    )
    return score_components(
        range(mesh.num_mzis),
        metric_fn=None if vectorized else scorer.scalar,
        iterations=iterations,
        rng=rng,
        metric="mean_rvd",
        batch_metric_fn=scorer.batched if vectorized else None,
        backend=backend,
        workers=workers,
    )
