"""Generic Monte Carlo engine used by every experiment in the reproduction.

The paper's methodology is uniformly "draw 1000 uncertainty realizations,
evaluate a scalar metric (accuracy, RVD), report its mean".  This module
provides that loop once, with reproducible independent per-iteration random
streams and summary statistics attached to the result.

Two evaluation entry points share the same stream-spawning discipline:

* :meth:`MonteCarloRunner.run` calls a scalar trial once per iteration, and
* :meth:`MonteCarloRunner.run_batched` hands a *batch trial* all the child
  generators of a chunk at once so it can vectorize the evaluation over the
  Monte Carlo axis.

Both entry points delegate the *scheduling* of their chunks to an execution
backend (:mod:`repro.execution`): the serial backend evaluates them inline,
the multiprocess backend shards them across worker processes.  Workers
receive self-contained ``(start, trial, generators)`` payloads and return
``(start, samples)`` pairs that reassemble into the exact serial sample
order.

**RNG-equivalence guarantee.** Both entry points spawn the identical child
streams from the same parent seed (``spawn_rngs(rng, iterations)``) *before*
any scheduling happens, so a batch trial that consumes ``generators[b]``
exactly as the scalar trial consumes its per-iteration generator produces
bit-identical samples — and the samples are independent of ``chunk_size``,
of the backend and of the worker count.  Batching and sharding are purely
wall-clock optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from ..arrays import to_host
from ..exceptions import ShapeError
from ..execution import Backend, BackendLike, pool_scope, resolve_backend
from ..observability import map_chunks
from ..observability.recorder import active as _active_recorder
from ..utils.rng import RNGLike, StreamSlice, StreamsLike, materialize_streams, spawn_rngs
from .statistics import SummaryStatistics, summarize

#: A Monte Carlo trial: receives an independent generator, returns a scalar metric.
Trial = Callable[[np.random.Generator], float]

#: A batched Monte Carlo trial: receives the child generators of one chunk and
#: returns one metric per generator, shape ``(len(generators),)``.
BatchTrial = Callable[[Sequence[np.random.Generator]], np.ndarray]

#: Worker payload: chunk start index, the trial, and the chunk's child streams
#: — materialized generators, or the compact :class:`~repro.utils.rng.
#: StreamSlice` seed recipe on process backends (rebuilt in the worker,
#: bit-identical; shrinks the per-chunk payload to O(100) bytes).
ChunkTask = Tuple[int, Union[Trial, BatchTrial], StreamsLike]


def evaluate_scalar_chunk(task: ChunkTask) -> Tuple[int, np.ndarray]:
    """Evaluate one chunk of a scalar trial; returns ``(start, samples)``.

    Module-level so process backends can pickle it into workers.  Each
    generator is consumed exactly as in the inline loop, so the returned
    samples are bit-identical regardless of which process evaluates them.
    """
    start, trial, streams = task
    generators = materialize_streams(streams)
    samples = np.empty(len(generators), dtype=np.float64)
    for index, generator in enumerate(generators):
        samples[index] = float(trial(generator))
    return start, samples


def evaluate_batch_chunk(task: ChunkTask) -> Tuple[int, np.ndarray]:
    """Evaluate one chunk of a batch trial; returns ``(start, samples)``.

    A device-resident trial (run under a device array backend) keeps its
    whole chunk on the device and only the per-realization samples are
    transferred back here — the single host transfer of the chunk, at
    reassembly.
    """
    start, trial, streams = task
    generators = materialize_streams(streams)
    values = np.asarray(to_host(trial(generators)), dtype=np.float64)
    if values.shape != (len(generators),):
        raise ShapeError(
            f"batch trial must return shape ({len(generators)},), got {values.shape}"
        )
    return start, values


def trial_chunk_hint(trial: Union[Trial, BatchTrial, None]) -> Optional[int]:
    """The trial's own chunk-size preference, when it advertises one.

    Batch trials that know their per-realization working set (eval-set
    slice of the activations, stacked matrices, sampling buffers) expose
    ``preferred_chunk_size()``; schedulers honor it whenever no explicit
    ``chunk_size`` is configured, so default chunking scales with the
    evaluation-set size instead of only the iteration count.
    """
    hint = getattr(trial, "preferred_chunk_size", None)
    if not callable(hint):
        return None
    preferred = int(hint())
    return preferred if preferred >= 1 else None


def plan_chunk_size(
    iterations: int,
    backend: Backend,
    chunk_size: Optional[int] = None,
    trial: Union[Trial, BatchTrial, None] = None,
) -> int:
    """Work-unit granularity shared by the Monte Carlo and timeline runners.

    Serial backends take everything in one chunk (capped by an explicit
    ``chunk_size`` or the trial's memory-derived hint); parallel backends
    get two chunks per worker — coarse enough that per-task pickling stays
    negligible, fine enough to absorb worker-speed imbalance.  An explicit
    ``chunk_size`` (or the hint) still caps the chunk but never inflates
    it: otherwise a small run with a large chunk_size would collapse to a
    single task and silently defeat the sharding.  Shrinking chunks is
    always safe — samples are chunk-invariant.
    """
    hint = trial_chunk_hint(trial) if chunk_size is None else None
    parallelism = backend.parallelism
    if parallelism <= 1:
        if chunk_size is not None:
            return chunk_size
        return min(iterations, hint) if hint is not None else iterations
    target = max(1, -(-iterations // (2 * parallelism)))
    cap = chunk_size if chunk_size is not None else hint
    return min(cap, target) if cap is not None else target


def chunk_stream_payload(
    generators: Sequence[np.random.Generator], backend: Backend
) -> StreamsLike:
    """The stream payload one chunk ships to its evaluator.

    On parallel backends the freshly spawned children compress to their
    ``(seed, count)`` recipe (:class:`~repro.utils.rng.StreamSlice`) so
    the pickled task no longer carries one generator per realization; the
    worker rebuilds bit-identical generators from the seed material.
    Inline backends keep the materialized generators — nothing is pickled,
    so rebuilding them would be pure waste.  A backend marked ``remote``
    (the fleet) always compresses, whatever its parallelism: even a
    one-worker fleet crosses a socket, so the recipe is the payload that
    should travel.  Either way the evaluated streams are exactly the
    spawned children.
    """
    generators = tuple(generators)
    if backend.parallelism <= 1 and not getattr(backend, "remote", False):
        return generators
    compact = StreamSlice.from_generators(generators, trust_fresh=True)
    return compact if compact is not None else generators


@dataclass
class MonteCarloResult:
    """Samples and summary of one Monte Carlo run."""

    samples: np.ndarray
    summary: SummaryStatistics
    label: str = ""

    @property
    def mean(self) -> float:
        return self.summary.mean

    @property
    def std(self) -> float:
        return self.summary.std

    @property
    def iterations(self) -> int:
        return self.summary.count


@dataclass
class MonteCarloRunner:
    """Runs a scalar-valued trial over many independent random streams.

    Parameters
    ----------
    iterations:
        Number of Monte Carlo iterations (the paper uses 1000).
    confidence:
        Confidence level used for the reported margin of error.
    chunk_size:
        Maximum realizations per scheduled chunk.  For batch trials this
        bounds the peak memory of one vectorized call; for parallel backends
        it is also the work-unit granularity.  ``None`` picks a default:
        everything in one chunk on the serial backend, two chunks per worker
        on parallel backends — in both cases additionally capped by the
        trial's own ``preferred_chunk_size()`` hint when it provides one
        (the network trials derive it from the evaluation-set size, so a
        10k-sample eval set gets small, cache-friendly chunks instead of
        one giant vectorized call).  The chunking never changes the
        samples.
    backend, workers:
        Execution-backend selection, resolved via
        :func:`repro.execution.resolve_backend`: by default ``workers`` of
        ``None``/1 evaluates inline and ``workers >= 2`` shards chunks
        across that many worker processes.  Trials must be picklable for
        process backends.  Samples are bit-identical for every backend and
        worker count.
    """

    iterations: int = 1000
    confidence: float = 0.95
    chunk_size: Optional[int] = None
    backend: BackendLike = None
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        # Fail fast on unknown backend names / invalid worker counts.
        resolve_backend(self.backend, self.workers)

    # ------------------------------------------------------------------ #
    # chunk scheduling
    # ------------------------------------------------------------------ #
    def _effective_chunk_size(
        self, backend: Backend, trial: Union[Trial, BatchTrial, None] = None
    ) -> int:
        return plan_chunk_size(self.iterations, backend, self.chunk_size, trial)

    def _schedule(
        self,
        evaluator: Callable[[ChunkTask], Tuple[int, np.ndarray]],
        trial: Union[Trial, BatchTrial],
        rng: RNGLike,
        label: str,
    ) -> MonteCarloResult:
        """Spawn the child streams, shard them into chunks, reassemble."""
        generators = spawn_rngs(rng, self.iterations)
        backend = resolve_backend(self.backend, self.workers)
        chunk = self._effective_chunk_size(backend, trial)
        tasks: list[ChunkTask] = [
            (start, trial, chunk_stream_payload(generators[start : start + chunk], backend))
            for start in range(0, self.iterations, chunk)
        ]
        samples = np.empty(self.iterations, dtype=np.float64)
        with _active_recorder().span(
            "mc/run",
            label=label,
            iterations=self.iterations,
            chunks=len(tasks),
            chunk_size=chunk,
            parallelism=backend.parallelism,
        ):
            for start, values in map_chunks(backend, evaluator, tasks, label="mc"):
                samples[start : start + len(values)] = values
        return MonteCarloResult(samples=samples, summary=summarize(samples, self.confidence), label=label)

    # ------------------------------------------------------------------ #
    # evaluation entry points
    # ------------------------------------------------------------------ #
    def run(self, trial: Trial, rng: RNGLike = None, label: str = "") -> MonteCarloResult:
        """Evaluate ``trial`` once per iteration and summarize the samples.

        Each iteration receives an independent child generator spawned from
        ``rng``, so results are reproducible and independent of evaluation
        order, chunking and worker count.
        """
        return self._schedule(evaluate_scalar_chunk, trial, rng, label)

    def run_batched(self, trial: BatchTrial, rng: RNGLike = None, label: str = "") -> MonteCarloResult:
        """Evaluate a vectorized trial over all iterations and summarize.

        The batch trial receives the same independent child generators that
        :meth:`run` would hand out one at a time (chunked per
        ``chunk_size``) and must return one sample per generator.  A batch
        trial that consumes each generator exactly as the scalar trial does
        yields a result bit-identical to :meth:`run`.
        """
        return self._schedule(evaluate_batch_chunk, trial, rng, label)

    def run_many(
        self,
        trials: dict[str, Union[Trial, BatchTrial]],
        rng: RNGLike = None,
        batched: bool = False,
    ) -> dict[str, MonteCarloResult]:
        """Run several labelled trials with independent seeds derived from ``rng``.

        With ``batched=True`` every value of ``trials`` is treated as a
        :data:`BatchTrial` and evaluated through :meth:`run_batched`, so
        EXP-style multi-case runs can use the fast path uniformly; each
        label still gets its own independent child stream, identical to the
        scalar route at the same seed.

        The execution backend is resolved once for the whole call and its
        worker pool (if any) is kept alive across the trials
        (:func:`repro.execution.pool_scope`), so many small runs pay the
        pool spin-up once instead of once per label.
        """
        streams = spawn_rngs(rng, len(trials))
        backend = resolve_backend(self.backend, self.workers)
        runner = replace(self, backend=backend, workers=None)
        evaluate = runner.run_batched if batched else runner.run
        with pool_scope(backend):
            return {
                label: evaluate(trial, rng=stream, label=label)
                for (label, trial), stream in zip(trials.items(), streams)
            }
