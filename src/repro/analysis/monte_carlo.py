"""Generic Monte Carlo engine used by every experiment in the reproduction.

The paper's methodology is uniformly "draw 1000 uncertainty realizations,
evaluate a scalar metric (accuracy, RVD), report its mean".  This module
provides that loop once, with reproducible independent per-iteration random
streams and summary statistics attached to the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..utils.rng import RNGLike, spawn_rngs
from .statistics import SummaryStatistics, summarize

#: A Monte Carlo trial: receives an independent generator, returns a scalar metric.
Trial = Callable[[np.random.Generator], float]


@dataclass
class MonteCarloResult:
    """Samples and summary of one Monte Carlo run."""

    samples: np.ndarray
    summary: SummaryStatistics
    label: str = ""

    @property
    def mean(self) -> float:
        return self.summary.mean

    @property
    def std(self) -> float:
        return self.summary.std

    @property
    def iterations(self) -> int:
        return self.summary.count


@dataclass
class MonteCarloRunner:
    """Runs a scalar-valued trial over many independent random streams.

    Parameters
    ----------
    iterations:
        Number of Monte Carlo iterations (the paper uses 1000).
    confidence:
        Confidence level used for the reported margin of error.
    """

    iterations: int = 1000
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")

    def run(self, trial: Trial, rng: RNGLike = None, label: str = "") -> MonteCarloResult:
        """Evaluate ``trial`` once per iteration and summarize the samples.

        Each iteration receives an independent child generator spawned from
        ``rng``, so results are reproducible and independent of evaluation
        order.
        """
        generators = spawn_rngs(rng, self.iterations)
        samples = np.empty(self.iterations, dtype=np.float64)
        for index, generator in enumerate(generators):
            samples[index] = float(trial(generator))
        return MonteCarloResult(samples=samples, summary=summarize(samples, self.confidence), label=label)

    def run_many(
        self,
        trials: dict[str, Trial],
        rng: RNGLike = None,
    ) -> dict[str, MonteCarloResult]:
        """Run several labelled trials with independent seeds derived from ``rng``."""
        streams = spawn_rngs(rng, len(trials))
        return {
            label: self.run(trial, rng=stream, label=label)
            for (label, trial), stream in zip(trials.items(), streams)
        }
