"""Generic Monte Carlo engine used by every experiment in the reproduction.

The paper's methodology is uniformly "draw 1000 uncertainty realizations,
evaluate a scalar metric (accuracy, RVD), report its mean".  This module
provides that loop once, with reproducible independent per-iteration random
streams and summary statistics attached to the result.

Two evaluation entry points share the same stream-spawning discipline:

* :meth:`MonteCarloRunner.run` calls a scalar trial once per iteration, and
* :meth:`MonteCarloRunner.run_batched` hands a *batch trial* all the child
  generators of a chunk at once so it can vectorize the evaluation over the
  Monte Carlo axis.

**RNG-equivalence guarantee.** Both entry points spawn the identical child
streams from the same parent seed (``spawn_rngs(rng, iterations)``), so a
batch trial that consumes ``generators[b]`` exactly as the scalar trial
consumes its per-iteration generator produces bit-identical samples — the
batched path is purely a wall-clock optimization.  ``chunk_size`` only
bounds how many realizations a batch trial sees per call; it never changes
the streams or the samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..exceptions import ShapeError
from ..utils.rng import RNGLike, spawn_rngs
from .statistics import SummaryStatistics, summarize

#: A Monte Carlo trial: receives an independent generator, returns a scalar metric.
Trial = Callable[[np.random.Generator], float]

#: A batched Monte Carlo trial: receives the child generators of one chunk and
#: returns one metric per generator, shape ``(len(generators),)``.
BatchTrial = Callable[[Sequence[np.random.Generator]], np.ndarray]


@dataclass
class MonteCarloResult:
    """Samples and summary of one Monte Carlo run."""

    samples: np.ndarray
    summary: SummaryStatistics
    label: str = ""

    @property
    def mean(self) -> float:
        return self.summary.mean

    @property
    def std(self) -> float:
        return self.summary.std

    @property
    def iterations(self) -> int:
        return self.summary.count


@dataclass
class MonteCarloRunner:
    """Runs a scalar-valued trial over many independent random streams.

    Parameters
    ----------
    iterations:
        Number of Monte Carlo iterations (the paper uses 1000).
    confidence:
        Confidence level used for the reported margin of error.
    chunk_size:
        Maximum realizations handed to a batch trial per call in
        :meth:`run_batched` (bounds peak memory of vectorized trials);
        ``None`` evaluates all iterations in one call.
    """

    iterations: int = 1000
    confidence: float = 0.95
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    def run(self, trial: Trial, rng: RNGLike = None, label: str = "") -> MonteCarloResult:
        """Evaluate ``trial`` once per iteration and summarize the samples.

        Each iteration receives an independent child generator spawned from
        ``rng``, so results are reproducible and independent of evaluation
        order.
        """
        generators = spawn_rngs(rng, self.iterations)
        samples = np.empty(self.iterations, dtype=np.float64)
        for index, generator in enumerate(generators):
            samples[index] = float(trial(generator))
        return MonteCarloResult(samples=samples, summary=summarize(samples, self.confidence), label=label)

    def run_batched(self, trial: BatchTrial, rng: RNGLike = None, label: str = "") -> MonteCarloResult:
        """Evaluate a vectorized trial over all iterations and summarize.

        The batch trial receives the same independent child generators that
        :meth:`run` would hand out one at a time (chunked per
        ``chunk_size``) and must return one sample per generator.  A batch
        trial that consumes each generator exactly as the scalar trial does
        yields a result bit-identical to :meth:`run`.
        """
        generators = spawn_rngs(rng, self.iterations)
        chunk = self.chunk_size or self.iterations
        samples = np.empty(self.iterations, dtype=np.float64)
        for start in range(0, self.iterations, chunk):
            streams = generators[start : start + chunk]
            values = np.asarray(trial(streams), dtype=np.float64)
            if values.shape != (len(streams),):
                raise ShapeError(
                    f"batch trial must return shape ({len(streams)},), got {values.shape}"
                )
            samples[start : start + len(streams)] = values
        return MonteCarloResult(samples=samples, summary=summarize(samples, self.confidence), label=label)

    def run_many(
        self,
        trials: dict[str, Trial],
        rng: RNGLike = None,
    ) -> dict[str, MonteCarloResult]:
        """Run several labelled trials with independent seeds derived from ``rng``."""
        streams = spawn_rngs(rng, len(trials))
        return {
            label: self.run(trial, rng=stream, label=label)
            for (label, trial), stream in zip(trials.items(), streams)
        }
