"""Yield experiment — the paper's §I motivation as a runnable artifact.

The paper's framework exists to "identify critical components during design
time ... for improving the yield" (§I).  This experiment closes that loop:
sweep the normalized uncertainty level, estimate the parametric yield of
the trained SPNN at each level (fraction of fabricated networks meeting an
accuracy spec within a margin of the nominal accuracy), and report the
maximum tolerable sigma for a target yield.

The sweep runs end to end on the batched Monte Carlo engine and, with
``workers=N`` (or ``spnn-repro yield --workers N``), shards each level's
realizations across worker processes — bit-identical to the serial run at
the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..analysis.yield_analysis import (
    YieldSweepResult,
    bisect_max_tolerable_sigma,
    yield_sweep,
)
from ..execution import BackendLike
from ..onn.builder import SPNNTask, SPNNTrainingConfig, build_trained_spnn
from ..utils.rng import RNGLike, ensure_rng, spawn_rngs
from .exp1_global import DEFAULT_SIGMAS

#: Default sigma sweep: the EXP 1 levels, where the paper's accuracy cliff lives.
DEFAULT_YIELD_SIGMAS = DEFAULT_SIGMAS


@dataclass(frozen=True)
class YieldConfig:
    """Configuration of the yield-vs-sigma sweep."""

    sigmas: Tuple[float, ...] = DEFAULT_YIELD_SIGMAS
    #: The design yields when its accuracy stays within this margin of nominal.
    accuracy_margin: float = 0.05
    #: Absolute accuracy spec; overrides ``accuracy_margin`` when set.
    accuracy_threshold: Optional[float] = None
    target_yield: float = 0.9
    iterations: int = 1000
    #: Which component families are uncertain ("phs", "bes" or "both").
    case: str = "both"
    perturb_sigma_stage: bool = True
    seed: int = 13
    #: Realizations per batched chunk (bounds peak memory, and the work-unit
    #: granularity when sharding across workers); None = all at once.
    chunk_size: Optional[int] = 250
    #: Execution backend for each sigma's Monte Carlo run: ``workers=N``
    #: shards realization chunks across N processes, bit-identical to serial.
    backend: BackendLike = None
    workers: Optional[int] = None
    #: ``"gpu"`` runs the realizations device-resident (CuPy, or the strict
    #: mock stand-in via REPRO_GPU_ARRAY_BACKEND); ``"cpu"``/None keeps the
    #: CPU backends above.  CLI: ``spnn-repro yield --device gpu``.
    device: Optional[str] = None
    #: Refine the max tolerable sigma by bisection after the coarse sweep
    #: (O(log) extra Monte Carlo runs; CLI: ``spnn-repro yield --bisect``).
    bisect: bool = False
    #: Bracket resolution of the bisection refinement (absolute sigma).
    bisect_tolerance: float = 5e-4
    #: Training configuration used only when no pre-built task is supplied.
    training: SPNNTrainingConfig = field(default_factory=SPNNTrainingConfig)


def run_yield(
    config: YieldConfig = YieldConfig(),
    task: Optional[SPNNTask] = None,
    rng: RNGLike = None,
) -> YieldSweepResult:
    """Run the yield sweep on a trained SPNN.

    Parameters
    ----------
    config:
        Sweep configuration (sigmas, spec, Monte Carlo iterations, workers).
    task:
        Pre-built :class:`SPNNTask` (trained + compiled network with its
        test set).  Built from ``config.training`` when omitted.
    rng:
        Seed for the Monte Carlo streams (defaults to ``config.seed``).
    """
    if task is None:
        task = build_trained_spnn(config.training)
    # The default (no-bisect) run feeds the seed straight into the sweep,
    # keeping its samples bit-identical to every earlier release; only the
    # opt-in bisect mode splits off an independent refinement stream.
    sweep_stream = rng if rng is not None else config.seed
    bisect_stream = None
    if config.bisect:
        sweep_stream, bisect_stream = spawn_rngs(ensure_rng(sweep_stream), 2)
    sweep = yield_sweep(
        task.spnn,
        task.test_features,
        task.test_labels,
        sigmas=config.sigmas,
        accuracy_threshold=config.accuracy_threshold,
        accuracy_margin=config.accuracy_margin,
        target_yield=config.target_yield,
        iterations=config.iterations,
        case=config.case,
        perturb_sigma_stage=config.perturb_sigma_stage,
        rng=sweep_stream,
        chunk_size=config.chunk_size,
        backend=config.backend,
        workers=config.workers,
        device=config.device,
    )
    if config.bisect:
        lo = sweep.max_tolerable_sigma or 0.0
        hi = max(sweep.sigmas)
        if hi > lo:
            sweep.bisection = bisect_max_tolerable_sigma(
                task.spnn,
                task.test_features,
                task.test_labels,
                accuracy_threshold=sweep.accuracy_threshold,
                sigma_hi=hi,
                sigma_lo=lo,
                tolerance=config.bisect_tolerance,
                target_yield=config.target_yield,
                iterations=config.iterations,
                case=config.case,
                perturb_sigma_stage=config.perturb_sigma_stage,
                rng=bisect_stream,
                chunk_size=config.chunk_size,
                backend=config.backend,
                workers=config.workers,
                device=config.device,
            )
    return sweep
