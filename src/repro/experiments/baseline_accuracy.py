"""Baseline-accuracy experiment (text of §III-D).

The paper quotes two software-level numbers before any uncertainty is
injected: 94.12% accuracy when the full 28x28 feature vector is used, and a
6.77% accuracy loss when the features are compressed to the 4x4 center crop
of the shifted FFT (16 complex features).  This experiment trains the same
two-hidden-layer complex network with both feature pipelines and reports the
pair of accuracies plus the compression loss.

Absolute values differ from the paper because the corpus is the synthetic
MNIST substitute (see DESIGN.md); the quantity to compare is the *shape*:
a modest accuracy loss from the aggressive 49x feature compression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..datasets.fft_features import fft_crop_features, full_fft_features
from ..datasets.synthetic_mnist import load_synthetic_mnist
from ..nn.metrics import TrainingHistory
from ..onn.builder import SPNNTrainingConfig, train_software_model
from ..onn.spnn import SPNNArchitecture
from ..utils.rng import RNGLike
from ..utils.serialization import format_table


@dataclass(frozen=True)
class BaselineConfig:
    """Configuration of the feature-compression baseline study."""

    num_train: int = 3000
    num_test: int = 800
    epochs: int = 40
    batch_size: int = 64
    learning_rate: float = 2e-2
    hidden_size: int = 16
    num_classes: int = 10
    fft_crop: int = 4
    image_size: int = 28
    seed: int = 2021


@dataclass
class BaselineResult:
    """Accuracies with full-resolution and compressed features."""

    config: BaselineConfig
    full_feature_accuracy: float
    cropped_feature_accuracy: float
    full_history: TrainingHistory
    cropped_history: TrainingHistory

    @property
    def compression_loss(self) -> float:
        """Accuracy loss caused by the 4x4 FFT crop (paper: 6.77%)."""
        return self.full_feature_accuracy - self.cropped_feature_accuracy

    def report(self) -> str:
        rows = [
            ["full 28x28 FFT features", 100.0 * self.full_feature_accuracy, "94.12 (paper)"],
            [
                f"{self.config.fft_crop}x{self.config.fft_crop} FFT crop "
                f"({self.config.fft_crop ** 2} complex features)",
                100.0 * self.cropped_feature_accuracy,
                f"{94.12 - 6.77:.2f} (paper)",
            ],
            ["compression loss", 100.0 * self.compression_loss, "6.77 (paper)"],
        ]
        header = "Baseline accuracy — feature compression study (§III-D text)"
        return f"{header}\n{format_table(['feature pipeline', 'accuracy [%]', 'paper value [%]'], rows)}"


def _rescale_features(train: np.ndarray, test: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Scale complex features so the mean modulus is O(1).

    Models a global input-power normalization (the laser power budget is the
    same regardless of how many modes carry the signal); computed on the
    training set and applied identically to the test set.  Without it the
    784-dimensional spectrum has mostly near-zero entries and the training
    signal is needlessly weak.
    """
    scale = np.mean(np.abs(train))
    if scale == 0:
        return train, test
    return train / (2.0 * scale), test / (2.0 * scale)


def run_baseline(config: BaselineConfig = BaselineConfig(), rng: RNGLike = None) -> BaselineResult:
    """Train the software model on full vs. cropped FFT features and compare."""
    train_set, test_set = load_synthetic_mnist(
        num_train=config.num_train, num_test=config.num_test, seed=config.seed, image_size=config.image_size
    )

    def _train(features_train: np.ndarray, features_test: np.ndarray, input_size: int) -> Tuple[float, TrainingHistory]:
        architecture = SPNNArchitecture(
            layer_dims=(input_size, config.hidden_size, config.hidden_size, config.num_classes)
        )
        training = SPNNTrainingConfig(
            architecture=architecture,
            epochs=config.epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            seed=config.seed,
        )
        model, history = train_software_model(
            features_train,
            train_set.labels,
            training,
            val_features=features_test,
            val_labels=test_set.labels,
            rng=rng if rng is not None else config.seed,
        )
        accuracy = history.val_accuracy[-1] if history.val_accuracy else float("nan")
        return accuracy, history

    full_train, full_test = _rescale_features(
        full_fft_features(train_set.images), full_fft_features(test_set.images)
    )
    full_accuracy, full_history = _train(full_train, full_test, input_size=config.image_size**2)

    cropped_train, cropped_test = _rescale_features(
        fft_crop_features(train_set.images, crop=config.fft_crop),
        fft_crop_features(test_set.images, crop=config.fft_crop),
    )
    cropped_accuracy, cropped_history = _train(cropped_train, cropped_test, input_size=config.fft_crop**2)

    return BaselineResult(
        config=config,
        full_feature_accuracy=float(full_accuracy),
        cropped_feature_accuracy=float(cropped_accuracy),
        full_history=full_history,
        cropped_history=cropped_history,
    )
