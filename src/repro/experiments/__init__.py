"""Experiment runners reproducing every figure and headline number of the paper."""

from .baseline_accuracy import BaselineConfig, BaselineResult, run_baseline
from .exp1_global import (
    DEFAULT_SIGMAS,
    EXP1_CASES,
    Exp1Config,
    Exp1Result,
    run_exp1,
    uncertainty_model_for_case,
)
from .drift_experiment import DriftConfig, DriftExperimentResult, run_drift
from .exp2_zonal import Exp2Config, Exp2Result, ZonalHeatmap, run_exp2
from .exp3_robust_training import Exp3Config, Exp3Result, run_exp3
from .fig2_device_sensitivity import Fig2Config, Fig2Result, run_fig2
from .fig3_layer_rvd import Fig3Config, Fig3Result, run_fig3
from .registry import (
    EXPERIMENT_ALIASES,
    ExperimentSpec,
    build_registry,
    get_experiment,
    list_experiments,
)
from .yield_experiment import DEFAULT_YIELD_SIGMAS, YieldConfig, run_yield

__all__ = [
    "Fig2Config",
    "Fig2Result",
    "run_fig2",
    "Fig3Config",
    "Fig3Result",
    "run_fig3",
    "Exp1Config",
    "Exp1Result",
    "run_exp1",
    "EXP1_CASES",
    "DEFAULT_SIGMAS",
    "uncertainty_model_for_case",
    "Exp2Config",
    "Exp2Result",
    "ZonalHeatmap",
    "run_exp2",
    "Exp3Config",
    "Exp3Result",
    "run_exp3",
    "BaselineConfig",
    "BaselineResult",
    "run_baseline",
    "YieldConfig",
    "DEFAULT_YIELD_SIGMAS",
    "run_yield",
    "DriftConfig",
    "DriftExperimentResult",
    "run_drift",
    "ExperimentSpec",
    "EXPERIMENT_ALIASES",
    "build_registry",
    "get_experiment",
    "list_experiments",
]
