"""Experiment Fig. 3 — layer-level RVD under single-MZI perturbations.

Reproduces the paper's Fig. 3: for four randomly generated 5x5 unitary
matrices compiled onto Clements meshes (10 MZIs each), perturb one MZI at a
time with ``sigma_PhS = sigma_BeS = 0.05`` Gaussian uncertainties, run 1000
Monte Carlo iterations per device, and report the average RVD.  The
qualitative claims to reproduce: the average RVD differs markedly across
MZIs of the same mesh, and the pattern differs across unitaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..analysis.critical import CriticalityReport, per_mzi_rvd_criticality
from ..execution import BackendLike
from ..mesh.mesh import MZIMesh
from ..utils.linalg import random_unitary
from ..utils.rng import RNGLike, ensure_rng
from ..utils.serialization import format_table
from ..variation.models import UncertaintyModel


@dataclass(frozen=True)
class Fig3Config:
    """Configuration of the layer-level RVD study."""

    matrix_size: int = 5
    num_matrices: int = 4
    sigma: float = 0.05
    iterations: int = 1000
    seed: int = 42
    #: Evaluate each device's realizations with the batched mesh path
    #: (bit-identical to the loop at a fixed seed).
    vectorized: bool = True
    #: Execution backend for the per-MZI study: ``workers=N`` shards the
    #: devices across N processes, bit-identical to serial.
    backend: BackendLike = None
    workers: Optional[int] = None


@dataclass
class Fig3Result:
    """Per-MZI average RVD for every random unitary."""

    config: Fig3Config
    reports: List[CriticalityReport]
    meshes: List[MZIMesh]

    def rvd_table(self) -> np.ndarray:
        """Array of shape ``(num_matrices, num_mzis)`` with the average RVD values."""
        return np.stack([report.as_array() for report in self.reports])

    def spread_per_matrix(self) -> np.ndarray:
        """Max-min average RVD across MZIs, per unitary (non-uniformity evidence)."""
        return np.array([report.spread for report in self.reports])

    def report(self) -> str:
        table = self.rvd_table()
        headers = ["unitary"] + [f"MZI {i + 1}" for i in range(table.shape[1])] + ["spread"]
        rows = []
        for index in range(table.shape[0]):
            rows.append([f"U{index + 1}"] + list(table[index]) + [self.spread_per_matrix()[index]])
        header = (
            f"Fig. 3 — average RVD with one MZI under variations at a time "
            f"(sigma_PhS = sigma_BeS = {self.config.sigma}, {self.config.iterations} MC iterations)"
        )
        return f"{header}\n{format_table(headers, rows)}"


def run_fig3(config: Fig3Config = Fig3Config(), rng: RNGLike = None) -> Fig3Result:
    """Run the single-MZI RVD study on freshly drawn Haar-random unitaries."""
    gen = ensure_rng(rng if rng is not None else config.seed)
    model = UncertaintyModel.both(config.sigma)
    reports: List[CriticalityReport] = []
    meshes: List[MZIMesh] = []
    for _ in range(config.num_matrices):
        unitary = random_unitary(config.matrix_size, rng=gen)
        mesh = MZIMesh.from_unitary(unitary, scheme="clements")
        report = per_mzi_rvd_criticality(
            mesh, model, iterations=config.iterations, rng=gen,
            vectorized=config.vectorized, backend=config.backend, workers=config.workers,
        )
        reports.append(report)
        meshes.append(mesh)
    return Fig3Result(config=config, reports=reports, meshes=meshes)
