"""EXP 4 — serving a drifting SPNN: accuracy over time and recalibration.

The paper models *fabrication-time* uncertainties: every Monte Carlo
realization is a frozen device.  A deployed silicon-photonic accelerator
additionally drifts *in time* — thermal crosstalk wanders the phase
settings, aging random-walks them — and its operator chooses a
recalibration (re-nulling) policy.  This experiment extends the paper's
framework along that axis:

1. advance a fleet of independent device timelines under a temporal
   perturbation process (:mod:`repro.variation.process`: Ornstein–Uhlenbeck
   thermal drift, random-walk aging, deterministic ramp, or the degenerate
   i.i.d. process for cross-checking) through the vectorized timeline sweep
   (:func:`repro.analysis.timeline.timeline_sweep`);
2. run the *same seed* twice — without maintenance, and under a
   :class:`~repro.analysis.recalibration.RecalibrationPolicy` — so the
   served-accuracy-vs-time curves are exactly paired (re-nulling consumes
   no randomness, so both runs see identical drift trajectories);
3. price the policy with the measured warm-retune cost of one
   recalibration event (:func:`~repro.analysis.recalibration.
   measure_renull_cost`), reporting served accuracy vs recalibration
   budget.

Like every sweep in the repo, the timelines shard across worker processes
(``--workers N``) or run device-resident (``--device gpu``) with
bit-identical curves at a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..analysis.recalibration import RecalibrationPolicy, RenullCost, measure_renull_cost
from ..analysis.timeline import TimelineSweepResult, timeline_sweep
from ..execution import BackendLike
from ..onn.builder import SPNNTask, SPNNTrainingConfig, build_trained_spnn
from ..utils.rng import RNGLike
from ..utils.serialization import format_table
from ..variation.models import UncertaintyModel
from ..variation.process import build_process


@dataclass(frozen=True)
class DriftConfig:
    """Configuration of the drift / recalibration experiment."""

    #: Temporal perturbation process: "ou", "walk", "ramp" or "iid"
    #: (:data:`~repro.variation.process.PROCESS_NAMES`).
    process: str = "ou"
    #: OU correlation time (steps) and step duration, walk step scale and
    #: ramp rate — only the knobs of the chosen process are consulted.
    correlation_time: float = 25.0
    dt: float = 1.0
    step_scale: float = 0.1
    rate: float = 0.05
    #: Normalized component sigma and which families it hits ("phs"
    #: recommended: re-nulling compensates phases, not splitters).
    sigma: float = 0.05
    case: str = "phs"
    #: Timeline horizon (steps) and fleet size (independent timelines).
    num_steps: int = 60
    timelines: int = 200
    #: Recalibration policy knobs; all ``None`` disarms a trigger.  The
    #: baseline (no-maintenance) sweep always runs alongside.
    recalibrate_every: Optional[int] = 10
    drift_threshold: Optional[float] = None
    accuracy_threshold: Optional[float] = None
    seed: int = 17
    #: Timelines per scheduled chunk; None = automatic (memory-derived).
    chunk_size: Optional[int] = None
    #: Execution backend knobs, identical to the other sweeps:
    #: ``workers=N`` shards timeline chunks across N processes,
    #: ``device="gpu"`` advances them device-resident — bit-identical.
    backend: BackendLike = None
    workers: Optional[int] = None
    device: Optional[str] = None
    #: Repeats of the renull-cost measurement (best-of).
    cost_repeats: int = 3
    #: Training configuration used only when no pre-built task is supplied.
    training: SPNNTrainingConfig = field(default_factory=SPNNTrainingConfig)

    def policy(self) -> RecalibrationPolicy:
        """The armed recalibration policy (possibly null)."""
        return RecalibrationPolicy(
            every=self.recalibrate_every,
            drift_threshold=self.drift_threshold,
            accuracy_threshold=self.accuracy_threshold,
        )


@dataclass
class DriftExperimentResult:
    """Paired baseline / recalibrated timeline sweeps plus the event price."""

    baseline: TimelineSweepResult
    recalibrated: TimelineSweepResult
    renull_cost: RenullCost
    config: DriftConfig

    @property
    def accuracy_recovered(self) -> float:
        """Mean served accuracy gained by the policy over no maintenance."""
        return self.recalibrated.mean_served_accuracy - self.baseline.mean_served_accuracy

    @property
    def renull_seconds_per_timeline(self) -> float:
        """Measured warm-retune seconds one timeline spends recalibrating."""
        return self.recalibrated.recalibrations_per_timeline * self.renull_cost.warm_seconds

    def report(self) -> str:
        base_curve = self.baseline.served_accuracy_curve()
        recal_curve = self.recalibrated.served_accuracy_curve()
        recal_rate = self.recalibrated.recalibration_curve()
        steps = self.baseline.num_steps
        stride = max(1, steps // 12)
        picks = list(range(0, steps, stride))
        if picks[-1] != steps - 1:
            picks.append(steps - 1)
        rows = [
            [
                step,
                100.0 * float(base_curve[step]),
                100.0 * float(recal_curve[step]),
                100.0 * float(recal_rate[step]),
            ]
            for step in picks
        ]
        policy = self.config.policy()
        header = (
            f"EXP 4 — {self.baseline.timelines} device timelines x {steps} steps under "
            f"process {self.baseline.process!r} "
            f"(sigma={self.config.sigma:g} {self.config.case}, "
            f"nominal {100.0 * self.baseline.nominal_accuracy:.2f}%)"
        )
        lines = [
            header,
            format_table(
                ["step", "no recal [%]", "with recal [%]", "recal events [% fleet]"],
                rows,
            ),
            (
                f"policy {policy}: mean served accuracy "
                f"{100.0 * self.recalibrated.mean_served_accuracy:.2f}% vs "
                f"{100.0 * self.baseline.mean_served_accuracy:.2f}% without maintenance "
                f"(+{100.0 * self.accuracy_recovered:.2f} points)"
            ),
            (
                f"budget: {self.recalibrated.recalibrations_per_timeline:.2f} re-nulls per "
                f"timeline x {self.renull_cost.warm_seconds * 1e3:.2f} ms warm retune "
                f"= {self.renull_seconds_per_timeline * 1e3:.2f} ms downtime per timeline "
                f"(exact recompile would cost {self.renull_cost.speedup:.1f}x more)"
            ),
        ]
        return "\n".join(lines)


def run_drift(
    config: DriftConfig = DriftConfig(),
    task: Optional[SPNNTask] = None,
    rng: RNGLike = None,
) -> DriftExperimentResult:
    """Run the paired baseline / recalibrated drift sweeps.

    Parameters
    ----------
    config:
        Experiment configuration (process, policy, fleet size, backend).
    task:
        Pre-built :class:`SPNNTask` (trained + compiled network with its
        test set).  Built from ``config.training`` when omitted.
    rng:
        Seed for the drift trajectories (defaults to ``config.seed``).
        Both sweeps consume the same seed, so their trajectories are
        exactly paired and the difference of the curves isolates the
        policy's effect.
    """
    if task is None:
        task = build_trained_spnn(config.training)
    policy = config.policy()
    model = UncertaintyModel.for_case(config.case, config.sigma)
    process = build_process(
        config.process,
        correlation_time=config.correlation_time,
        dt=config.dt,
        step_scale=config.step_scale,
        rate=config.rate,
    )
    seed = rng if rng is not None else config.seed
    if isinstance(seed, np.random.Generator):
        # A stateful generator cannot be replayed; freeze one seed so both
        # sweeps still spawn identical child streams (exact pairing).
        seed = int(seed.integers(0, 2**63 - 1))
    sweeps = {}
    for label, armed in (("baseline", None), ("recalibrated", policy)):
        # A SeedSequence mutates as it spawns; hand each sweep a fresh copy
        # so both spawn the very same children.
        sweep_seed = (
            np.random.SeedSequence(
                entropy=seed.entropy, spawn_key=seed.spawn_key, pool_size=seed.pool_size
            )
            if isinstance(seed, np.random.SeedSequence)
            else seed
        )
        sweeps[label] = timeline_sweep(
            task.spnn,
            task.test_features,
            task.test_labels,
            model,
            process,
            num_steps=config.num_steps,
            timelines=config.timelines,
            policy=armed,
            rng=sweep_seed,
            chunk_size=config.chunk_size,
            backend=config.backend,
            workers=config.workers,
            device=config.device,
        )
    cost = measure_renull_cost(task.spnn.photonic_layers, repeats=config.cost_repeats)
    return DriftExperimentResult(
        baseline=sweeps["baseline"],
        recalibrated=sweeps["recalibrated"],
        renull_cost=cost,
        config=config,
    )
