"""EXP 2 (Fig. 5) — SPNN accuracy loss under zonal perturbations.

Reproduces the paper's localized-uncertainty experiment: each of the six
unitary multipliers (U and V^H of the three linear layers) is partitioned
into zones of 2x2 MZIs; one zone at a time receives elevated uncertainty
(``sigma = 0.1``) while the whole rest of the network keeps the background
level (``sigma = 0.05``); the diagonal (Sigma) stages are error-free.  For
every zone the mean accuracy loss over the Monte Carlo iterations is
recorded, producing one heatmap per unitary multiplier (Fig. 5a-f).

The qualitative result to reproduce: losses hover around the global-
uncertainty loss, but some zones consistently reduce it while others
exacerbate it, and the critical zones are scattered irregularly — i.e.
criticality depends on device position and tuned values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.monte_carlo import MonteCarloRunner
from ..execution import (
    BackendLike,
    pool_scope,
    resolve_array,
    resolve_backend,
    resolve_network,
    shared_eval_arrays,
    shared_network,
)
from ..mesh.mesh import MZIMesh
from ..mesh.svd_layer import LayerPerturbation, LayerPerturbationBatch
from ..onn.builder import SPNNTask, SPNNTrainingConfig, build_trained_spnn
from ..onn.spnn import SPNN, NetworkPerturbation, NetworkPerturbationBatch
from ..utils.rng import RNGLike, ensure_rng
from ..utils.serialization import format_table
from ..variation.models import UncertaintyModel
from ..variation.sampler import sample_mesh_perturbation, sample_mesh_perturbation_batch
from ..variation.zones import Zone, ZoneGrid


@dataclass(frozen=True)
class Exp2Config:
    """Configuration of the zonal-perturbation study."""

    zone_sigma: float = 0.10
    background_sigma: float = 0.05
    zone_rows: int = 2
    zone_cols: int = 2
    iterations: int = 1000
    seed: int = 11
    #: Evaluate each zone with the batched Monte Carlo path (bit-identical
    #: to the loop at a fixed seed, several times faster).
    vectorized: bool = True
    #: Realizations per batched chunk (bounds peak memory, and the work-unit
    #: granularity when sharding across workers); None = all at once.
    chunk_size: Optional[int] = 250
    #: Execution backend for each zone's Monte Carlo run: ``workers=N``
    #: shards realization chunks across N processes, bit-identical to serial.
    backend: BackendLike = None
    workers: Optional[int] = None
    #: ``"gpu"`` runs the realizations device-resident (CuPy, or the mock
    #: stand-in via REPRO_GPU_ARRAY_BACKEND); ``"cpu"``/None keeps CPU.
    device: Optional[str] = None
    #: Training configuration used only when no pre-built task is supplied.
    training: SPNNTrainingConfig = field(default_factory=SPNNTrainingConfig)


@dataclass
class ZonalHeatmap:
    """Accuracy-loss heatmap for one unitary multiplier."""

    mesh_name: str
    zone_shape: Tuple[int, int]
    accuracy_loss: np.ndarray  # (zone_rows, zone_cols), NaN for empty zones
    zone_counts: np.ndarray

    def finite_losses(self) -> np.ndarray:
        return self.accuracy_loss[np.isfinite(self.accuracy_loss)]

    @property
    def max_loss(self) -> float:
        finite = self.finite_losses()
        return float(finite.max()) if finite.size else float("nan")

    @property
    def min_loss(self) -> float:
        finite = self.finite_losses()
        return float(finite.min()) if finite.size else float("nan")

    @property
    def spread(self) -> float:
        return self.max_loss - self.min_loss


@dataclass
class Exp2Result:
    """Zonal heatmaps for all unitary multipliers plus reference numbers."""

    config: Exp2Config
    nominal_accuracy: float
    global_loss: float
    heatmaps: Dict[str, ZonalHeatmap]

    def report(self) -> str:
        headers = ["unitary", "zones", "min loss [%]", "max loss [%]", "spread [%]"]
        rows = []
        for name, heatmap in self.heatmaps.items():
            rows.append(
                [
                    name,
                    int(np.isfinite(heatmap.accuracy_loss).sum()),
                    100.0 * heatmap.min_loss,
                    100.0 * heatmap.max_loss,
                    100.0 * heatmap.spread,
                ]
            )
        header = (
            f"EXP 2 (Fig. 5) — accuracy loss under zonal perturbations "
            f"(zone sigma {self.config.zone_sigma}, background {self.config.background_sigma}, "
            f"{self.config.iterations} MC iterations)\n"
            f"nominal accuracy {100.0 * self.nominal_accuracy:.2f}%, "
            f"global-uncertainty loss at background sigma: {100.0 * self.global_loss:.2f}% "
            "(paper reference: 69.98%)"
        )
        return f"{header}\n{format_table(headers, rows)}"


def _sample_zonal_network_perturbation(
    spnn: SPNN,
    target_mesh_name: str,
    sigma_map: np.ndarray,
    background: UncertaintyModel,
    generator: np.random.Generator,
) -> NetworkPerturbation:
    """One uncertainty realization with a per-MZI sigma override on one mesh.

    Every unitary mesh receives background-level perturbations except the
    target mesh, whose per-MZI sigmas follow ``sigma_map``; Sigma stages are
    left error-free (as in the paper's EXP 2).
    """
    perturbations: NetworkPerturbation = []
    for layer_index, layer in enumerate(spnn.photonic_layers):
        u_name = f"U_L{layer_index}"
        v_name = f"VH_L{layer_index}"
        if u_name == target_mesh_name:
            u_pert = sample_mesh_perturbation(
                layer.mesh_u, background, generator,
                sigma_phs_per_mzi=sigma_map, sigma_bes_per_mzi=sigma_map,
            )
        else:
            u_pert = sample_mesh_perturbation(layer.mesh_u, background, generator)
        if v_name == target_mesh_name:
            v_pert = sample_mesh_perturbation(
                layer.mesh_v, background, generator,
                sigma_phs_per_mzi=sigma_map, sigma_bes_per_mzi=sigma_map,
            )
        else:
            v_pert = sample_mesh_perturbation(layer.mesh_v, background, generator)
        perturbations.append(LayerPerturbation(u=u_pert, v=v_pert, sigma=None))
    return perturbations


def _sample_zonal_network_perturbation_batch(
    spnn: SPNN,
    target_mesh_name: str,
    sigma_map: np.ndarray,
    background: UncertaintyModel,
    generators,
) -> NetworkPerturbationBatch:
    """Batched counterpart of :func:`_sample_zonal_network_perturbation`.

    Each generator is consumed in the same mesh order (U then V^H per
    layer) as the looped sampler, so the batch reproduces it sample for
    sample.
    """
    perturbations: NetworkPerturbationBatch = []
    for layer_index, layer in enumerate(spnn.photonic_layers):
        u_map = sigma_map if f"U_L{layer_index}" == target_mesh_name else None
        v_map = sigma_map if f"VH_L{layer_index}" == target_mesh_name else None
        u_pert = sample_mesh_perturbation_batch(
            layer.mesh_u, background, generators,
            sigma_phs_per_mzi=u_map, sigma_bes_per_mzi=u_map,
        )
        v_pert = sample_mesh_perturbation_batch(
            layer.mesh_v, background, generators,
            sigma_phs_per_mzi=v_map, sigma_bes_per_mzi=v_map,
        )
        perturbations.append(LayerPerturbationBatch(u=u_pert, v=v_pert, sigma=None))
    return perturbations


@dataclass(frozen=True, eq=False)
class ZonalAccuracyTrial:
    """Scalar zonal Monte Carlo trial (picklable for process backends)."""

    spnn: object
    features: object
    labels: object
    target_mesh_name: str
    sigma_map: np.ndarray
    background: UncertaintyModel

    def __call__(self, generator: np.random.Generator) -> float:
        spnn = resolve_network(self.spnn)
        perturbation = _sample_zonal_network_perturbation(
            spnn, self.target_mesh_name, self.sigma_map, self.background, generator
        )
        return spnn.accuracy(
            resolve_array(self.features),
            resolve_array(self.labels),
            perturbations=perturbation,
            use_hardware=True,
        )


@dataclass(frozen=True, eq=False)
class ZonalAccuracyBatchTrial:
    """Batched zonal Monte Carlo trial (picklable for process backends).

    Consumes each child generator exactly as :class:`ZonalAccuracyTrial`
    does, so its samples are bit-identical to the looped path.
    """

    spnn: object
    features: object
    labels: object
    target_mesh_name: str
    sigma_map: np.ndarray
    background: UncertaintyModel

    def __call__(self, generators) -> np.ndarray:
        generators = list(generators)
        spnn = resolve_network(self.spnn)
        batch = _sample_zonal_network_perturbation_batch(
            spnn, self.target_mesh_name, self.sigma_map, self.background, generators
        )
        return spnn.accuracy_batch(
            resolve_array(self.features),
            resolve_array(self.labels),
            batch,
            batch_size=len(generators),
        )


def run_exp2(
    config: Exp2Config = Exp2Config(),
    task: Optional[SPNNTask] = None,
    rng: RNGLike = None,
    mesh_names: Optional[List[str]] = None,
) -> Exp2Result:
    """Run the EXP 2 zonal study.

    Parameters
    ----------
    config:
        Zone sizes, sigmas and Monte Carlo iterations.
    task:
        Pre-built SPNN task; built from ``config.training`` when omitted.
    rng:
        Seed (defaults to ``config.seed``).
    mesh_names:
        Restrict the study to a subset of the six unitary multipliers
        (useful for fast benchmark runs); defaults to all of them.
    """
    if task is None:
        task = build_trained_spnn(config.training)
    gen = ensure_rng(rng if rng is not None else config.seed)
    spnn = task.spnn
    features, labels = task.test_features, task.test_labels
    # One backend for the whole zone sweep (54 small Monte Carlo runs on the
    # paper architecture); its worker pool survives across zones.
    backend = resolve_backend(config.backend, config.workers, config.device)
    runner = MonteCarloRunner(
        iterations=config.iterations,
        chunk_size=config.chunk_size,
        backend=backend,
    )
    background = UncertaintyModel.both(config.background_sigma, perturb_sigma_stage=False)

    nominal_accuracy = spnn.accuracy(features, labels, use_hardware=True)

    # Hosted once per sweep for sharding backends: the eval set and the
    # compiled mesh parameters cross the process boundary per worker, not
    # per chunk (bit-identical results; see repro.execution.shared).
    network_hosting = shared_network(backend, spnn)
    eval_hosting = shared_eval_arrays(backend, features, labels)

    def _run_zonal(target_mesh_name: str, sigma_map: np.ndarray, label: str):
        """One Monte Carlo run of the zonal sampler, batched or looped."""
        if config.vectorized:
            batch_trial = ZonalAccuracyBatchTrial(
                spnn=hosted_network, features=hosted_features, labels=hosted_labels,
                target_mesh_name=target_mesh_name, sigma_map=sigma_map, background=background,
            )
            return runner.run_batched(batch_trial, rng=gen, label=label)

        trial = ZonalAccuracyTrial(
            spnn=hosted_network, features=hosted_features, labels=hosted_labels,
            target_mesh_name=target_mesh_name, sigma_map=sigma_map, background=background,
        )
        return runner.run(trial, rng=gen, label=label)

    with pool_scope(backend), eval_hosting as (hosted_features, hosted_labels), network_hosting as hosted_network:
        # Reference: global uncertainty at the background sigma (Sigma error-free),
        # the number the paper compares every zone against (69.98% loss).
        global_result = _run_zonal("", np.zeros(0), label="global-background")
        global_loss = nominal_accuracy - global_result.mean

        named_meshes = dict(spnn.unitary_meshes())
        if mesh_names is None:
            mesh_names = list(named_meshes.keys())

        heatmaps: Dict[str, ZonalHeatmap] = {}
        for mesh_name in mesh_names:
            if mesh_name not in named_meshes:
                raise KeyError(f"unknown unitary mesh {mesh_name!r}; available: {sorted(named_meshes)}")
            mesh: MZIMesh = named_meshes[mesh_name]
            grid = ZoneGrid(mesh, zone_rows=config.zone_rows, zone_cols=config.zone_cols)
            losses = np.full(grid.shape, np.nan)
            counts = grid.occupancy_matrix()
            for zone in grid.zones():
                sigma_map = grid.sigma_map(zone, config.zone_sigma, config.background_sigma)
                result = _run_zonal(
                    mesh_name, sigma_map, label=f"{mesh_name}[{zone.row_index},{zone.col_index}]"
                )
                losses[zone.row_index, zone.col_index] = nominal_accuracy - result.mean
            heatmaps[mesh_name] = ZonalHeatmap(
                mesh_name=mesh_name,
                zone_shape=grid.shape,
                accuracy_loss=losses,
                zone_counts=counts,
            )
    return Exp2Result(
        config=config,
        nominal_accuracy=nominal_accuracy,
        global_loss=float(global_loss),
        heatmaps=heatmaps,
    )
