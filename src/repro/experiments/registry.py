"""Registry mapping experiment identifiers to their runners.

Gives the CLI (and tests) a single place to discover every figure/number
reproduced from the paper, together with a fast "smoke" configuration used
when a full-size run is not wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from ..exceptions import ExperimentError
from ..onn.builder import SPNNTrainingConfig
from .baseline_accuracy import BaselineConfig, run_baseline
from .exp1_global import Exp1Config, run_exp1
from .exp2_zonal import Exp2Config, run_exp2
from .drift_experiment import DriftConfig, run_drift
from .exp3_robust_training import Exp3Config, run_exp3
from .fig2_device_sensitivity import Fig2Config, run_fig2
from .fig3_layer_rvd import Fig3Config, run_fig3
from .yield_experiment import YieldConfig, run_yield

#: Alternative names accepted by :func:`get_experiment` (CLI-friendly).
EXPERIMENT_ALIASES = {"robust": "exp3", "exp4": "drift"}


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible artifact of the paper."""

    identifier: str
    description: str
    paper_reference: str
    runner: Callable[..., Any]
    default_config: Any
    smoke_config: Any


def _smoke_training() -> SPNNTrainingConfig:
    """A small training setup for quick experiment smoke runs."""
    return SPNNTrainingConfig(num_train=600, num_test=200, epochs=20)


def build_registry() -> Dict[str, ExperimentSpec]:
    """Construct the experiment registry (fresh config instances each call)."""
    return {
        "fig2": ExperimentSpec(
            identifier="fig2",
            description="Device-level MZI element sensitivity surfaces (|dT|/|T| over theta, phi)",
            paper_reference="Fig. 2",
            runner=run_fig2,
            default_config=Fig2Config(),
            smoke_config=Fig2Config(grid_points=16),
        ),
        "fig3": ExperimentSpec(
            identifier="fig3",
            description="Average RVD of 5x5 unitaries with one MZI perturbed at a time",
            paper_reference="Fig. 3",
            runner=run_fig3,
            default_config=Fig3Config(),
            smoke_config=Fig3Config(iterations=25, num_matrices=2),
        ),
        "exp1": ExperimentSpec(
            identifier="exp1",
            description="SPNN accuracy vs global uncertainty level (PhS / BeS / both)",
            paper_reference="Fig. 4 (EXP 1)",
            runner=run_exp1,
            default_config=Exp1Config(),
            smoke_config=Exp1Config(
                sigmas=(0.0, 0.05, 0.1),
                iterations=10,
                training=_smoke_training(),
            ),
        ),
        "exp2": ExperimentSpec(
            identifier="exp2",
            description="SPNN accuracy loss under zonal perturbations of the unitary multipliers",
            paper_reference="Fig. 5 (EXP 2)",
            runner=run_exp2,
            default_config=Exp2Config(),
            smoke_config=Exp2Config(iterations=5, training=_smoke_training()),
        ),
        "exp3": ExperimentSpec(
            identifier="exp3",
            description=(
                "Noise-aware (variation-injected) training vs. baseline: accuracy "
                "recovery and max-tolerable-sigma improvement (alias: robust)"
            ),
            paper_reference="beyond the paper (EXP 3)",
            runner=run_exp3,
            default_config=Exp3Config(),
            smoke_config=Exp3Config(
                train_sigmas=(0.0075,),
                eval_sigmas=(0.0, 0.0075, 0.01),
                iterations=40,
                training=SPNNTrainingConfig(num_train=600, num_test=200, epochs=40),
            ),
        ),
        "yield": ExperimentSpec(
            identifier="yield",
            description="Parametric yield vs uncertainty level and max tolerable sigma",
            paper_reference="§I (yield motivation)",
            runner=run_yield,
            default_config=YieldConfig(),
            smoke_config=YieldConfig(
                sigmas=(0.0, 0.01, 0.025, 0.05, 0.1),
                iterations=10,
                training=_smoke_training(),
            ),
        ),
        "drift": ExperimentSpec(
            identifier="drift",
            description=(
                "Served accuracy of a drifting SPNN fleet over time and the "
                "recovery bought by an online recalibration policy (alias: exp4)"
            ),
            paper_reference="beyond the paper (EXP 4)",
            runner=run_drift,
            default_config=DriftConfig(),
            smoke_config=DriftConfig(
                process="walk",
                step_scale=0.3,
                sigma=0.08,
                num_steps=10,
                timelines=8,
                recalibrate_every=4,
                cost_repeats=1,
                training=_smoke_training(),
            ),
        ),
        "baseline": ExperimentSpec(
            identifier="baseline",
            description="Software baseline accuracy: full 28x28 FFT features vs 4x4 crop",
            paper_reference="§III-D text (94.12% / 6.77% loss)",
            runner=run_baseline,
            default_config=BaselineConfig(),
            smoke_config=BaselineConfig(num_train=400, num_test=150, epochs=10),
        ),
    }


def get_experiment(identifier: str) -> ExperimentSpec:
    """Look up one experiment by id or alias, raising a helpful error otherwise."""
    registry = build_registry()
    key = identifier.lower()
    key = EXPERIMENT_ALIASES.get(key, key)
    if key not in registry:
        names = sorted(set(registry) | set(EXPERIMENT_ALIASES))
        raise ExperimentError(
            f"unknown experiment {identifier!r}; available: {', '.join(names)}"
        )
    return registry[key]


def list_experiments() -> Dict[str, str]:
    """Mapping of experiment id to description (for CLI listings)."""
    return {spec.identifier: f"{spec.paper_reference}: {spec.description}" for spec in build_registry().values()}
