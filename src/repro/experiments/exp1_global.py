"""EXP 1 (Fig. 4) — SPNN accuracy under global random uncertainties.

Reproduces the paper's system-level experiment: sweep the normalized
uncertainty level ``sigma`` and, for each value, run Monte Carlo iterations
where every MZI of the SPNN receives Gaussian perturbations; record the mean
inferencing accuracy on the test set.  Three cases are evaluated, exactly as
in the paper:

* ``"phs"``  — uncertainties only in the phase shifters (sigma_BeS = 0),
* ``"bes"``  — uncertainties only in the beam splitters (sigma_PhS = 0),
* ``"both"`` — equal normalized uncertainties in both component families.

Headline numbers from the paper to compare against (synthetic-data shapes,
see EXPERIMENTS.md): accuracy collapses steeply with sigma, saturating below
the 10% random-guess level around sigma ~ 0.075, the loss at sigma = 0.05
(both) is ~70%, and phase-shifter uncertainties hurt more than beam-splitter
uncertainties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.monte_carlo import MonteCarloResult, MonteCarloRunner
from ..analysis.statistics import summarize
from ..execution import (
    BackendLike,
    pool_scope,
    resolve_backend,
    shared_eval_arrays,
    shared_network,
)
from ..onn.builder import SPNNTask, SPNNTrainingConfig, build_trained_spnn
from ..onn.inference import NetworkAccuracyBatchTrial, NetworkAccuracyTrial
from ..onn.spnn import SPNN
from ..utils.rng import RNGLike, ensure_rng
from ..utils.serialization import format_table
from ..variation.models import UncertaintyModel

#: The three component-uncertainty cases of EXP 1.
EXP1_CASES = ("phs", "bes", "both")

#: Default sigma sweep (the paper sweeps 0.005 ... 0.15 and plots 0 ... 0.15).
DEFAULT_SIGMAS = (0.0, 0.005, 0.01, 0.025, 0.05, 0.075, 0.1, 0.15)


def uncertainty_model_for_case(case: str, sigma: float, perturb_sigma_stage: bool = True) -> UncertaintyModel:
    """Build the :class:`UncertaintyModel` for one EXP 1 case at one sigma."""
    return UncertaintyModel.for_case(case, sigma, perturb_sigma_stage=perturb_sigma_stage)


@dataclass(frozen=True)
class Exp1Config:
    """Configuration of the global-uncertainty sweep."""

    sigmas: Tuple[float, ...] = DEFAULT_SIGMAS
    cases: Tuple[str, ...] = EXP1_CASES
    iterations: int = 1000
    perturb_sigma_stage: bool = True
    seed: int = 7
    #: Evaluate each (case, sigma) point with the batched Monte Carlo path
    #: (bit-identical to the loop at a fixed seed, several times faster).
    vectorized: bool = True
    #: Realizations per batched chunk (bounds peak memory, and the work-unit
    #: granularity when sharding across workers); None = all at once.
    chunk_size: Optional[int] = 250
    #: Execution backend for each (case, sigma) Monte Carlo run: ``workers=N``
    #: shards realization chunks across N processes, bit-identical to serial.
    backend: BackendLike = None
    workers: Optional[int] = None
    #: ``"gpu"`` runs the realizations device-resident (CuPy, or the mock
    #: stand-in via REPRO_GPU_ARRAY_BACKEND); ``"cpu"``/None keeps CPU.
    device: Optional[str] = None
    #: Training configuration used only when no pre-built task is supplied.
    training: SPNNTrainingConfig = field(default_factory=SPNNTrainingConfig)


@dataclass
class Exp1Result:
    """Mean accuracy per (case, sigma) plus the nominal accuracy."""

    config: Exp1Config
    nominal_accuracy: float
    results: Dict[str, List[MonteCarloResult]]

    def mean_accuracy(self, case: str) -> np.ndarray:
        """Mean accuracy per sigma for one case (same order as ``config.sigmas``)."""
        return np.array([r.mean for r in self.results[case]])

    def accuracy_loss(self, case: str) -> np.ndarray:
        """Accuracy loss (nominal minus mean accuracy) per sigma, in fraction."""
        return self.nominal_accuracy - self.mean_accuracy(case)

    def loss_at_sigma(self, case: str, sigma: float) -> float:
        """Accuracy loss for one case at the closest swept sigma value."""
        sigmas = np.asarray(self.config.sigmas)
        index = int(np.argmin(np.abs(sigmas - sigma)))
        return float(self.accuracy_loss(case)[index])

    def saturation_sigma(self, case: str, threshold: float = 0.10) -> Optional[float]:
        """Smallest swept sigma at which the mean accuracy falls below ``threshold``."""
        means = self.mean_accuracy(case)
        for sigma, mean in zip(self.config.sigmas, means):
            if mean < threshold:
                return float(sigma)
        return None

    def report(self) -> str:
        """Table of mean accuracy [%] per case and sigma (the Fig. 4 series)."""
        headers = ["sigma"] + [f"acc_{case} [%]" for case in self.config.cases]
        rows = []
        for index, sigma in enumerate(self.config.sigmas):
            row = [sigma]
            for case in self.config.cases:
                row.append(100.0 * self.results[case][index].mean)
            rows.append(row)
        header = (
            f"EXP 1 (Fig. 4) — mean SPNN accuracy vs sigma "
            f"({self.config.iterations} MC iterations, nominal accuracy "
            f"{100.0 * self.nominal_accuracy:.2f}%)"
        )
        footer_lines = []
        if "both" in self.config.cases:
            footer_lines.append(
                f"accuracy loss at sigma=0.05 (both): {100.0 * self.loss_at_sigma('both', 0.05):.2f}% "
                "(paper: 69.98%)"
            )
            saturation = self.saturation_sigma("both")
            footer_lines.append(
                "accuracy falls below 10% (random guess) at sigma = "
                f"{saturation if saturation is not None else '>max swept'} (paper: ~0.075)"
            )
        return "\n".join([header, format_table(headers, rows)] + footer_lines)


def run_exp1(
    config: Exp1Config = Exp1Config(),
    task: Optional[SPNNTask] = None,
    rng: RNGLike = None,
) -> Exp1Result:
    """Run the EXP 1 sweep.

    Parameters
    ----------
    config:
        Sweep configuration (sigmas, cases, Monte Carlo iterations).
    task:
        Pre-built :class:`SPNNTask` (trained + compiled network with its
        test set).  Built from ``config.training`` when omitted.
    rng:
        Seed for the Monte Carlo streams (defaults to ``config.seed``).
    """
    if task is None:
        task = build_trained_spnn(config.training)
    gen = ensure_rng(rng if rng is not None else config.seed)
    spnn: SPNN = task.spnn
    features, labels = task.test_features, task.test_labels
    # One backend for the whole sweep; its worker pool (if any) stays alive
    # across the (case, sigma) grid instead of re-forking per point.
    backend = resolve_backend(config.backend, config.workers, config.device)
    runner = MonteCarloRunner(
        iterations=config.iterations,
        chunk_size=config.chunk_size,
        backend=backend,
    )

    nominal_accuracy = spnn.accuracy(features, labels, use_hardware=True)
    results: Dict[str, List[MonteCarloResult]] = {case: [] for case in config.cases}
    # Sharding backends get the eval set and the compiled mesh parameters
    # hosted in shared memory once per sweep, so per-chunk payloads shrink
    # to the child streams (bit-identical results).
    with pool_scope(backend), shared_eval_arrays(backend, features, labels) as (
        eval_features,
        eval_labels,
    ), shared_network(backend, spnn) as network:
        for case in config.cases:
            for sigma in config.sigmas:
                model = uncertainty_model_for_case(case, sigma, config.perturb_sigma_stage)

                if model.is_null:
                    samples = np.full(config.iterations, nominal_accuracy)
                    results[case].append(
                        MonteCarloResult(samples=samples, summary=summarize(samples), label=f"{case}@{sigma}")
                    )
                    continue

                # Module-level picklable trials so the chunks can be shipped to
                # worker processes; both consume each child stream identically.
                if config.vectorized:
                    batch_trial = NetworkAccuracyBatchTrial(
                        spnn=network, features=eval_features, labels=eval_labels, model=model
                    )
                    results[case].append(runner.run_batched(batch_trial, rng=gen, label=f"{case}@{sigma}"))
                else:
                    trial = NetworkAccuracyTrial(
                        spnn=network, features=eval_features, labels=eval_labels, model=model
                    )
                    results[case].append(runner.run(trial, rng=gen, label=f"{case}@{sigma}"))
    return Exp1Result(config=config, nominal_accuracy=nominal_accuracy, results=results)
