"""EXP 3 — robustness recovery through noise-aware (variation-injected) training.

EXP 1 measures how SPNN accuracy collapses under component-level
uncertainties; this experiment closes the loop and *mitigates* the collapse.
For each trained sigma it builds two networks on identical data, identical
initialization and identical batch order:

* a **baseline** model trained with the paper's ordinary software loop, and
* a **noise-aware** model trained with
  :class:`~repro.training.noise_aware.NoiseAwareTrainer`: every minibatch
  loss is averaged over ``K`` hardware-calibrated perturbation draws of the
  effective weight matrices, with the injected sigma following a
  :class:`~repro.training.schedule.PerturbationSchedule` (default: a
  curriculum that first learns the task noise-free and then hardens it at
  increasing sigma).

Both models are then characterized exactly like the paper characterizes its
network: Monte Carlo hardware accuracy over an evaluation sigma sweep
(vectorized engine, ``workers=N`` shards across processes, bit-identical to
serial) and a parametric yield sweep against a shared accuracy spec.  The
headline numbers are the **accuracy recovery** at the trained sigma and the
**max-tolerable-sigma improvement** for the target yield.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.yield_analysis import (
    SigmaBisectionResult,
    YieldSweepResult,
    bisect_max_tolerable_sigma,
    yield_sweep,
)
from ..execution import BackendLike, pool_scope, resolve_backend, shared_eval_arrays
from ..nn.optim import Adam
from ..nn.trainer import TrainerConfig
from ..onn.builder import (
    SPNNTrainingConfig,
    build_software_model,
    prepare_feature_sets,
    spnn_from_model,
    train_software_model,
)
from ..onn.spnn import SPNN
from ..training.injector import NoiseInjector
from ..training.noise_aware import NoiseAwareTrainer
from ..training.schedule import PerturbationSchedule
from ..training.workspace import process_workspace
from ..utils.rng import RNGLike, ensure_rng, spawn_rngs
from ..utils.serialization import format_table
from ..variation.models import UncertaintyModel

#: Key under which the baseline model's results are stored.
BASELINE = "baseline"


def _default_schedule() -> PerturbationSchedule:
    """Default hardening curriculum: learn the task first, then shake it.

    Half the epochs train noise-free (reaching the baseline's solution
    basin), then the injected sigma steps to 50% and finally 100% of the
    target — empirically the most reliable way to keep nominal accuracy
    while gaining robustness (from-scratch full-sigma injection fails to
    learn at all once the variation-induced matrix error rivals the
    weights).
    """
    return PerturbationSchedule.curriculum((0.0, 0.0, 0.5, 1.0))


@dataclass(frozen=True)
class Exp3Config:
    """Configuration of the robust-training experiment."""

    #: Sigmas to harden against (one noise-aware model is trained per value).
    train_sigmas: Tuple[float, ...] = (0.0075, 0.01)
    #: Component-uncertainty case (EXP 1 naming: "phs" / "bes" / "both").
    case: str = "both"
    #: Perturbation draws per minibatch (the K of the expected-loss estimator).
    draws: int = 8
    #: Training steps between hardware recompilations inside the injector.
    recompile_every: int = 5
    #: Per-epoch sigma scaling of the injected noise.
    schedule: PerturbationSchedule = field(default_factory=_default_schedule)
    #: Sigmas of the Monte Carlo evaluation sweep (0.0 = nominal shortcut).
    eval_sigmas: Tuple[float, ...] = (0.0, 0.0025, 0.005, 0.0075, 0.01, 0.015)
    #: Monte Carlo iterations per (model, sigma) evaluation point.
    iterations: int = 1000
    #: Yield spec: accuracy must stay within this margin of the *baseline*
    #: nominal accuracy (shared spec so max-tolerable sigmas are comparable).
    accuracy_margin: float = 0.05
    target_yield: float = 0.9
    seed: int = 17
    #: Seed of the injected training noise (independent of data/init seeds).
    noise_seed: int = 12345
    #: Amortize the K perturbation draws over each recompile window (the
    #: injector's ``reuse_draws`` mode — a different but equally valid noise
    #: stream, several times cheaper per step).
    reuse_draws: bool = True
    #: Recompile the injector's hardware snapshot incrementally (warm-started
    #: SVD + in-place mesh retune, exact fallback on drift).
    incremental_recompile: bool = True
    #: Share one process-local scratch arena between the trainer and the
    #: Monte Carlo evaluation (bit-identical; allocation reuse only).
    use_workspace: bool = True
    #: Refine each model's max tolerable sigma by bisection after the coarse
    #: sweep (O(log) extra Monte Carlo runs instead of a finer grid).
    bisect: bool = False
    #: Bracket resolution of the bisection refinement (absolute sigma).
    bisect_tolerance: float = 5e-4
    chunk_size: Optional[int] = 250
    #: Execution backend for the evaluation sweeps: ``workers=N`` shards the
    #: Monte Carlo chunks across N processes, bit-identical to serial.
    backend: BackendLike = None
    workers: Optional[int] = None
    #: ``"gpu"`` runs the evaluation sweeps *and* the injector's K-draw
    #: training forward device-resident (CuPy, or the mock stand-in via
    #: REPRO_GPU_ARRAY_BACKEND); ``"cpu"``/None keeps CPU.
    device: Optional[str] = None
    training: SPNNTrainingConfig = field(
        default_factory=lambda: SPNNTrainingConfig(epochs=40)
    )

    def __post_init__(self) -> None:
        if not self.train_sigmas:
            raise ValueError("train_sigmas must not be empty")
        if any(sigma <= 0 for sigma in self.train_sigmas):
            raise ValueError(f"train_sigmas must be positive, got {self.train_sigmas}")
        if len(set(self.train_sigmas)) != len(self.train_sigmas):
            raise ValueError(f"train_sigmas must be unique, got {self.train_sigmas}")
        if not self.eval_sigmas:
            raise ValueError("eval_sigmas must not be empty")
        if len(set(self.eval_sigmas)) != len(self.eval_sigmas):
            raise ValueError(f"eval_sigmas must be unique, got {self.eval_sigmas}")
        missing = set(self.train_sigmas) - set(self.eval_sigmas)
        if missing:
            # Fail fast: the recovery report needs the baseline evaluated at
            # every trained sigma, and the run costs minutes to hours.
            raise ValueError(
                f"every trained sigma must appear in eval_sigmas; missing {sorted(missing)}"
            )
        if not 0.0 <= self.accuracy_margin <= 1.0:
            raise ValueError(f"accuracy_margin must be in [0, 1], got {self.accuracy_margin}")
        if not 0.0 < self.target_yield <= 1.0:
            raise ValueError(f"target_yield must be in (0, 1], got {self.target_yield}")
        if self.case.lower() not in UncertaintyModel.CASES:
            raise ValueError(
                f"unknown uncertainty case {self.case!r}; expected one of {UncertaintyModel.CASES}"
            )


def robust_label(sigma: float) -> str:
    """Result key of the noise-aware model hardened at ``sigma``."""
    return f"robust@{sigma:g}"


@dataclass
class Exp3Result:
    """Baseline vs. noise-aware models across the evaluation sigma sweep."""

    config: Exp3Config
    #: Nominal (variation-free) hardware accuracy per model key.
    nominal_accuracy: Dict[str, float]
    #: ``accuracy_samples[model][eval_sigma]`` -> ``(iterations,)`` samples.
    accuracy_samples: Dict[str, Dict[float, np.ndarray]] = field(repr=False)
    #: Parametric yield sweep per model (shared accuracy spec).
    yields: Dict[str, YieldSweepResult] = field(repr=False, default_factory=dict)
    #: Bisection-refined max tolerable sigma per model (``config.bisect``).
    bisections: Dict[str, SigmaBisectionResult] = field(repr=False, default_factory=dict)

    # ------------------------------------------------------------------ #
    def model_keys(self) -> List[str]:
        return [BASELINE] + [robust_label(sigma) for sigma in self.config.train_sigmas]

    def mean_accuracy(self, key: str, sigma: float) -> float:
        """Mean Monte Carlo hardware accuracy of one model at one eval sigma."""
        return float(np.mean(self.accuracy_samples[key][sigma]))

    def recovery_at(self, train_sigma: float) -> float:
        """Accuracy recovered at the trained sigma (robust mean - baseline mean)."""
        key = robust_label(train_sigma)
        if key not in self.accuracy_samples:
            raise KeyError(f"no robust model trained at sigma {train_sigma}")
        if train_sigma not in self.accuracy_samples[BASELINE]:
            raise KeyError(f"sigma {train_sigma} was not part of the evaluation sweep")
        return self.mean_accuracy(key, train_sigma) - self.mean_accuracy(BASELINE, train_sigma)

    def max_tolerable_sigma(self, key: str) -> Optional[float]:
        """Largest evaluated sigma at which the model still meets the yield target."""
        return self.yields[key].max_tolerable_sigma

    def refined_max_tolerable_sigma(self, key: str) -> Optional[float]:
        """Bisection-refined max tolerable sigma (falls back to the grid value).

        The fallback also covers a bisection whose fresh Monte Carlo probe
        failed the grid's borderline passing sigma (refined ``None``): the
        coarse estimate remains the best available answer.
        """
        if key in self.bisections and self.bisections[key].max_tolerable_sigma is not None:
            return self.bisections[key].max_tolerable_sigma
        return self.max_tolerable_sigma(key)

    def max_tolerable_improvement(self, train_sigma: float) -> Optional[float]:
        """Gain in max tolerable sigma of the robust model over the baseline.

        ``None`` when either model never meets the yield target (no
        tolerable sigma to compare).
        """
        base = self.max_tolerable_sigma(BASELINE)
        robust = self.max_tolerable_sigma(robust_label(train_sigma))
        if base is None or robust is None:
            return None
        return float(robust - base)

    def report(self) -> str:
        """Accuracy table per eval sigma plus recovery / yield footers."""
        keys = self.model_keys()
        headers = ["sigma"] + [f"acc_{key} [%]" for key in keys]
        rows = []
        for sigma in self.config.eval_sigmas:
            rows.append([sigma] + [100.0 * self.mean_accuracy(key, sigma) for key in keys])
        header = (
            f"EXP 3 — noise-aware training vs. baseline "
            f"(case {self.config.case!r}, K={self.config.draws} draws/batch, "
            f"{self.config.iterations} MC iterations per point)\n"
            + ", ".join(
                f"nominal {key}: {100.0 * self.nominal_accuracy[key]:.2f}%" for key in keys
            )
        )
        footer_lines = []
        for sigma in self.config.train_sigmas:
            footer_lines.append(
                f"accuracy recovery at trained sigma {sigma:g}: "
                f"{100.0 * self.recovery_at(sigma):+.2f}% "
                f"({100.0 * self.mean_accuracy(BASELINE, sigma):.2f}% -> "
                f"{100.0 * self.mean_accuracy(robust_label(sigma), sigma):.2f}%)"
            )
        base_max = self.max_tolerable_sigma(BASELINE)
        footer_lines.append(
            f"max tolerable sigma (yield >= {100.0 * self.config.target_yield:.0f}%): "
            f"baseline {base_max if base_max is not None else 'none'}"
            + "".join(
                f", {robust_label(sigma)} "
                f"{self.max_tolerable_sigma(robust_label(sigma)) if self.max_tolerable_sigma(robust_label(sigma)) is not None else 'none'}"
                for sigma in self.config.train_sigmas
            )
        )
        if self.bisections:
            refined = []
            for key in self.model_keys():
                if key not in self.bisections:
                    continue
                bisection = self.bisections[key]
                value = bisection.max_tolerable_sigma
                refined.append(
                    f"{key} {value:.4f}" if value is not None else f"{key} none"
                )
                refined[-1] += f" ({bisection.num_probes} probes)"
            footer_lines.append(
                "bisection-refined max tolerable sigma: " + ", ".join(refined)
            )
        return "\n".join([header, format_table(headers, rows)] + footer_lines)


# --------------------------------------------------------------------------- #
# training helpers
# --------------------------------------------------------------------------- #


def train_baseline_model(
    features: np.ndarray,
    labels: np.ndarray,
    config: Exp3Config,
):
    """The ordinary software training run — exactly the builder's pipeline."""
    return train_software_model(features, labels, config.training)


def train_noise_aware_model(
    features: np.ndarray,
    labels: np.ndarray,
    config: Exp3Config,
    train_sigma: float,
):
    """One noise-aware training run hardened at ``train_sigma``.

    Uses the same init/batch-order seed as the baseline run so the *only*
    difference between the two models is the injected noise.
    """
    training = config.training
    gen = ensure_rng(training.seed)
    model = build_software_model(training.architecture, rng=gen)
    injector = NoiseInjector(
        UncertaintyModel.for_case(config.case, train_sigma),
        draws=config.draws,
        recompile_every=config.recompile_every,
        scheme=training.architecture.scheme,
        rng=config.noise_seed,
        incremental=config.incremental_recompile,
        reuse_draws=config.reuse_draws,
        device=config.device,
    )
    trainer = NoiseAwareTrainer(
        model,
        Adam(model.parameters(), lr=training.learning_rate),
        injector,
        schedule=config.schedule,
        config=TrainerConfig(epochs=training.epochs, batch_size=training.batch_size),
        rng=gen,
        workspace=process_workspace() if config.use_workspace else None,
    )
    history = trainer.fit(features, labels)
    return model, history


# --------------------------------------------------------------------------- #
# experiment runner
# --------------------------------------------------------------------------- #


def run_exp3(config: Exp3Config = Exp3Config(), rng: RNGLike = None) -> Exp3Result:
    """Run the robust-training experiment end to end.

    Parameters
    ----------
    config:
        Experiment configuration (trained sigmas, injection parameters,
        evaluation sweep, backend knobs).
    rng:
        Seed for the Monte Carlo evaluation streams (defaults to
        ``config.seed``).  Training uses ``config.training.seed`` and
        ``config.noise_seed`` and is unaffected by the execution backend,
        so the whole result is bit-identical for every worker count.
    """
    train_x, train_y, test_x, test_y = prepare_feature_sets(config.training)
    architecture = config.training.architecture

    # ------------------------------------------------------------------ #
    # training: baseline once, one noise-aware model per trained sigma
    # ------------------------------------------------------------------ #
    spnns: Dict[str, SPNN] = {}
    base_model, _ = train_baseline_model(train_x, train_y, config)
    spnns[BASELINE] = spnn_from_model(base_model, architecture)
    for sigma in config.train_sigmas:
        robust_model, _ = train_noise_aware_model(train_x, train_y, config, sigma)
        spnns[robust_label(sigma)] = spnn_from_model(robust_model, architecture)

    nominal = {
        key: spnn.accuracy(test_x, test_y, use_hardware=True) for key, spnn in spnns.items()
    }
    # Shared yield spec anchored at the *baseline* nominal accuracy so the
    # max-tolerable sigmas of all models answer the same question.
    accuracy_threshold = max(0.0, nominal[BASELINE] - config.accuracy_margin)

    # ------------------------------------------------------------------ #
    # evaluation: MC accuracy sweep per model, one persistent worker pool
    # ------------------------------------------------------------------ #
    gen = ensure_rng(rng if rng is not None else config.seed)
    backend = resolve_backend(config.backend, config.workers, config.device)
    # One independent stream per (model, eval sigma) — plus one bisection
    # stream per model — spawned up front so the samples do not depend on
    # evaluation order or scheduling.
    model_streams = spawn_rngs(gen, 2 * len(spnns))

    accuracy_samples: Dict[str, Dict[float, np.ndarray]] = {}
    yields: Dict[str, YieldSweepResult] = {}
    bisections: Dict[str, SigmaBisectionResult] = {}
    # One pool and one shared-memory hosting of the eval set serve every
    # model's sweep (and bisection): the ~hundreds-of-KB eval arrays cross
    # the process boundary once per worker for the whole experiment.
    with pool_scope(backend), shared_eval_arrays(backend, test_x, test_y) as (
        eval_x,
        eval_y,
    ):
        for index, (key, spnn) in enumerate(spnns.items()):
            # yield_sweep spawns one child stream per sigma from its stream
            # and runs the vectorized engine on the shared backend — one
            # sweep call per model delivers both the samples and the yield
            # curve.
            sweep = yield_sweep(
                spnn,
                eval_x,
                eval_y,
                sigmas=config.eval_sigmas,
                accuracy_threshold=accuracy_threshold,
                target_yield=config.target_yield,
                iterations=config.iterations,
                case=config.case,
                rng=model_streams[2 * index],
                chunk_size=config.chunk_size,
                backend=backend,
                use_workspace=config.use_workspace,
            )
            accuracy_samples[key] = sweep.accuracy_samples
            yields[key] = sweep
            if config.bisect:
                # Bracket from the coarse sweep: refine between the largest
                # passing and the largest evaluated sigma at O(log) cost.
                lo = sweep.max_tolerable_sigma or 0.0
                hi = max(config.eval_sigmas)
                if hi > lo:
                    bisections[key] = bisect_max_tolerable_sigma(
                        spnn,
                        eval_x,
                        eval_y,
                        accuracy_threshold=accuracy_threshold,
                        sigma_hi=hi,
                        sigma_lo=lo,
                        tolerance=config.bisect_tolerance,
                        target_yield=config.target_yield,
                        iterations=config.iterations,
                        case=config.case,
                        rng=model_streams[2 * index + 1],
                        chunk_size=config.chunk_size,
                        backend=backend,
                        use_workspace=config.use_workspace,
                    )

    return Exp3Result(
        config=config,
        nominal_accuracy=nominal,
        accuracy_samples=accuracy_samples,
        yields=yields,
        bisections=bisections,
    )
