"""Experiment Fig. 2 — device-level MZI sensitivity surfaces.

Reproduces the four panels of the paper's Fig. 2: the relative deviation
``|dT_ij| / |T_ij|`` of each MZI transfer-matrix element over the
``(theta, phi)`` tuning range with a common relative phase error
``K = 0.05`` (first-order model, Eqs. 3-4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..analysis.sensitivity import ELEMENT_LABELS, SensitivityMap, device_sensitivity_map
from ..utils.serialization import format_table


@dataclass(frozen=True)
class Fig2Config:
    """Configuration of the device-sensitivity sweep."""

    k: float = 0.05
    grid_points: int = 64
    theta_max: float = 2.0 * np.pi
    phi_max: float = 2.0 * np.pi


@dataclass
class Fig2Result:
    """Sensitivity surfaces plus the summary quantities quoted in the paper."""

    config: Fig2Config
    sensitivity: SensitivityMap
    peak_deviation: Dict[str, float]
    monotonic: Dict[str, bool]

    def report(self) -> str:
        """Human-readable report mirroring the figure's qualitative content."""
        rows = [
            [label, self.peak_deviation[label], "yes" if self.monotonic[label] else "no"]
            for label in ELEMENT_LABELS
        ]
        table = format_table(["element", "peak |dT|/|T|", "grows with (theta, phi)"], rows)
        header = (
            f"Fig. 2 — MZI element sensitivity (first-order model, K = {self.config.k}, "
            f"{self.config.grid_points}x{self.config.grid_points} grid)"
        )
        return f"{header}\n{table}"


def run_fig2(config: Fig2Config = Fig2Config()) -> Fig2Result:
    """Compute the Fig. 2 sensitivity surfaces and their summary."""
    sensitivity = device_sensitivity_map(
        k=config.k,
        grid_points=config.grid_points,
        theta_max=config.theta_max,
        phi_max=config.phi_max,
    )
    peak = sensitivity.peak_deviation()
    monotonic = {label: sensitivity.monotonic_along_axes(label) for label in ELEMENT_LABELS}
    return Fig2Result(config=config, sensitivity=sensitivity, peak_deviation=peak, monotonic=monotonic)
