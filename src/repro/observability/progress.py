"""Progress heartbeats: per-chunk completion lines and structured epochs.

Long sweeps (thousands of Monte-Carlo chunks, hour-scale timeline sweeps)
are silent by default.  This module adds an optional *sink*: when one is
installed, execution backends emit a record per completed chunk and the
trainer emits a structured record per logged epoch; when none is installed
(the default) the only cost at each call site is one module-global read
and a ``None`` check, and the trainer's legacy ``print`` behavior is
preserved verbatim by :func:`emit_epoch`.

Sinks receive plain dicts — keep them cheap; they run on the hot path of
whatever they observe.  :class:`PrintProgressSink` renders human-oriented
one-liners and backs the CLI ``--progress`` flag.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = [
    "ProgressSink",
    "PrintProgressSink",
    "progress_sink",
    "set_progress_sink",
    "use_progress_sink",
    "emit_progress",
    "emit_epoch",
]


class ProgressSink:
    """Receives progress records; subclass and override :meth:`emit`."""

    def emit(self, record: Dict[str, object]) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class PrintProgressSink(ProgressSink):
    """Renders progress records as single stdout lines (CLI ``--progress``)."""

    def emit(self, record: Dict[str, object]) -> None:
        kind = record.get("kind", "progress")
        if kind == "chunk":
            label = record.get("label") or "chunks"
            print(
                f"[progress] {label}: chunk {record.get('done', '?')}/{record.get('total', '?')}"
                f" done ({float(record.get('seconds', 0.0)):.2f}s elapsed)"
            )
        elif kind == "epoch" and "message" in record:
            print(f"[progress] {record['message']}")
        else:
            fields = " ".join(f"{key}={record[key]}" for key in sorted(record) if key != "kind")
            print(f"[progress] {kind} {fields}".rstrip())


#: The process's progress sink; ``None`` (default) disables heartbeats.
_SINK: Optional[ProgressSink] = None


def progress_sink() -> Optional[ProgressSink]:
    """The installed sink, or ``None`` when progress reporting is off.

    Hot-path call sites guard on this before building a record, so the
    disabled path never allocates.
    """
    return _SINK


def set_progress_sink(sink: Optional[ProgressSink]) -> None:
    """Install ``sink`` process-wide (``None`` disables)."""
    global _SINK
    _SINK = sink


@contextmanager
def use_progress_sink(sink: Optional[ProgressSink]) -> Iterator[Optional[ProgressSink]]:
    """Install ``sink`` for the duration of the block, then restore."""
    global _SINK
    previous = _SINK
    _SINK = sink
    try:
        yield sink
    finally:
        _SINK = previous


def emit_progress(kind: str, **fields) -> None:
    """Send one progress record to the sink, if any."""
    sink = _SINK
    if sink is None:
        return
    record: Dict[str, object] = {"kind": kind}
    record.update(fields)
    sink.emit(record)


def emit_epoch(message: str, **fields) -> None:
    """Route a training-epoch log line through the sink.

    Without a sink this prints ``message`` exactly as the trainer always
    has — the default training output is byte-identical to the
    pre-observability behavior.  With a sink installed, the structured
    record (loss, accuracy, lr, recompile counters, ...) goes to the sink
    instead and nothing is printed here.
    """
    sink = _SINK
    if sink is None:
        print(message)
        return
    record: Dict[str, object] = {"kind": "epoch", "message": message}
    record.update(fields)
    sink.emit(record)
