"""Zero-overhead observability: span tracing, worker telemetry, metrics.

The engine spans multiprocess pools, shared-memory hosting, a GPU backend
and a runtime sweep-kernel registry; this package makes all of it visible
without making any of it slower:

* :mod:`~repro.observability.recorder` — the span/counter recorder behind
  every instrumented seam.  A module-level :class:`NullRecorder` serves the
  disabled path (the default): every hot-seam call site costs one global
  read plus a no-op method call.  Enable with :func:`observe`, the
  ``REPRO_TRACE`` environment variable, or the CLI ``--trace`` /
  ``--metrics-out`` flags.
* :mod:`~repro.observability.dispatch` — per-call kernel-dispatch metrics
  for :func:`repro.arrays.sweep.apply_column_sweep` (kernel name, backend,
  shape, seconds): the raw data shape-aware adaptive kernel selection
  needs.
* :mod:`~repro.observability.frames` — worker-side telemetry riding the
  existing ``Backend`` protocol: compact picklable
  :class:`~repro.observability.frames.ChunkFrame` records (chunk wall
  time, payload bytes, kernel dispatches) piggybacked alongside the
  ``(start, samples)`` chunk results and merged deterministically into the
  parent trace.
* :mod:`~repro.observability.report` — JSONL trace export, the aggregated
  :class:`~repro.observability.report.MetricsReport` (per-span totals,
  per-kernel histograms, worker utilization) and
  :func:`~repro.observability.report.summarize_trace`.
* :mod:`~repro.observability.progress` — heartbeat sink for long sweeps
  and structured training-epoch records (CLI ``--progress``).

**Invariants.**  Instrumentation never consumes randomness and never reads
or writes result arrays (only their ``nbytes`` metadata), so traced runs
are bit-identical to untraced runs; frames are deterministic in content —
only the timing fields vary between runs.
"""

from .dispatch import DispatchAggregator, active_collector, use_collector
from .frames import ChunkFrame, InstrumentedChunkEvaluator, KernelDispatch, map_chunks
from .progress import (
    PrintProgressSink,
    ProgressSink,
    emit_epoch,
    emit_progress,
    progress_sink,
    set_progress_sink,
    use_progress_sink,
)
from .recorder import (
    NullRecorder,
    Stopwatch,
    TRACE_ENV,
    TraceRecorder,
    active,
    observe,
    perf_seconds,
    recording_enabled,
)
from .report import MetricsReport, read_trace, summarize_trace

__all__ = [
    "ChunkFrame",
    "DispatchAggregator",
    "InstrumentedChunkEvaluator",
    "KernelDispatch",
    "MetricsReport",
    "NullRecorder",
    "PrintProgressSink",
    "ProgressSink",
    "Stopwatch",
    "TRACE_ENV",
    "TraceRecorder",
    "active",
    "active_collector",
    "emit_epoch",
    "emit_progress",
    "map_chunks",
    "observe",
    "perf_seconds",
    "progress_sink",
    "read_trace",
    "recording_enabled",
    "set_progress_sink",
    "summarize_trace",
    "use_collector",
    "use_progress_sink",
]
