"""Worker-side telemetry riding the existing ``Backend`` protocol.

Worker processes never see the parent's :class:`TraceRecorder` — it is not
picklable and must not be: telemetry has to cross the process boundary the
same way results do.  The trick is :class:`InstrumentedChunkEvaluator`, a
small picklable wrapper around the real chunk evaluator.  When tracing is
enabled, :func:`map_chunks` wraps the evaluator before handing it to
``backend.map``; each worker then returns ``(result, frame)`` instead of
``result``, where the :class:`ChunkFrame` carries chunk wall time, payload
bytes and per-kernel dispatch totals.  The parent strips the frames off in
task order — ``backend.map`` preserves submission order on every backend —
so the merge into the trace is deterministic.

Because enablement travels *through the wrapped function* rather than
through environment or global state, the scheme works identically for the
serial backend (inline calls), the multiprocess backend (fork/spawn
workers, persistent pools included) and the GPU backend.

When tracing is disabled, :func:`map_chunks` is a straight pass-through to
``backend.map`` — no wrapper, no frames, structurally the pre-observability
call.

**Determinism contract.**  Frames never consume randomness and never read
result-array contents (only ``nbytes`` metadata); every field except
``seconds`` and ``worker`` is deterministic for a deterministic workload.
"""

from __future__ import annotations

import os
import pickle
import platform
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from . import dispatch as _dispatch
from . import recorder as _recorder

#: The machine identity stamped on frames produced by this process.  With
#: the fleet backend chunks evaluate on other machines, so ``worker`` (a
#: pid) stopped being a unique identity — ``(host, pid)`` is.
_HOST = platform.node() or "localhost"

__all__ = [
    "ChunkFrame",
    "InstrumentedChunkEvaluator",
    "KernelDispatch",
    "map_chunks",
]


@dataclass(frozen=True)
class KernelDispatch:
    """One aggregated kernel-dispatch row inside a chunk frame."""

    kernel: str
    backend: str
    n: int
    batch: int
    columns: int
    calls: int
    seconds: float

    @classmethod
    def from_entry(cls, entry: dict) -> "KernelDispatch":
        return cls(
            kernel=str(entry["kernel"]),
            backend=str(entry["backend"]),
            n=int(entry["n"]),
            batch=int(entry["batch"]),
            columns=int(entry["columns"]),
            calls=int(entry["calls"]),
            seconds=float(entry["seconds"]),
        )

    def to_record(self) -> dict:
        return {
            "kernel": self.kernel,
            "backend": self.backend,
            "n": self.n,
            "batch": self.batch,
            "columns": self.columns,
            "calls": self.calls,
            "seconds": self.seconds,
        }


@dataclass
class ChunkFrame:
    """Compact picklable telemetry for one evaluated chunk.

    Produced worker-side by :class:`InstrumentedChunkEvaluator`, shipped
    back piggybacked on the chunk result, merged parent-side in task order.
    ``index`` is stamped by the parent at merge time (the worker does not
    know its position in the schedule).
    """

    label: str
    start: int
    count: int
    seconds: float
    worker: int
    task_bytes: int
    result_bytes: int
    dispatches: List[KernelDispatch] = field(default_factory=list)
    index: int = -1
    host: str = _HOST

    def to_record(self) -> dict:
        return {
            "type": "frame",
            "label": self.label,
            "index": self.index,
            "start": self.start,
            "count": self.count,
            "seconds": self.seconds,
            "worker": self.worker,
            "host": self.host,
            "task_bytes": self.task_bytes,
            "result_bytes": self.result_bytes,
            "dispatches": [entry.to_record() for entry in self.dispatches],
        }

    @classmethod
    def from_record(cls, record: dict) -> "ChunkFrame":
        return cls(
            label=str(record.get("label", "")),
            start=int(record.get("start", -1)),
            count=int(record.get("count", 0)),
            seconds=float(record.get("seconds", 0.0)),
            worker=int(record.get("worker", -1)),
            task_bytes=int(record.get("task_bytes", 0)),
            result_bytes=int(record.get("result_bytes", 0)),
            dispatches=[KernelDispatch.from_entry(entry) for entry in record.get("dispatches", ())],
            index=int(record.get("index", -1)),
            host=str(record.get("host", "")),
        )


def _payload_bytes(value: Any) -> int:
    """Total ``nbytes`` of the arrays inside a (possibly nested) result.

    Reads only the ``nbytes`` attribute — never array contents — so the
    accounting cannot perturb device synchronization or values.
    """
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_payload_bytes(item) for item in value)
    return 0


def _chunk_fields(task: Any) -> tuple:
    """``(start, count)`` of a chunk task, tolerating foreign shapes.

    Chunk tasks across the engine share the ``(start, trial, streams)``
    layout where ``streams`` is a generator tuple or a
    :class:`~repro.utils.rng.StreamSlice` recipe — both sized.
    """
    start = -1
    count = 0
    if isinstance(task, tuple) and task:
        if isinstance(task[0], int):
            start = task[0]
        try:
            count = len(task[-1])
        except TypeError:
            count = 0
    return start, count


def _pickled_size(value: Any) -> int:
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


@dataclass(frozen=True)
class InstrumentedChunkEvaluator:
    """Picklable evaluator wrapper returning ``(result, frame)`` per chunk.

    Carrying enablement inside the mapped function — instead of an
    environment variable or module global that fork may or may not copy —
    is what makes worker telemetry uniform across Serial / Multiprocess /
    Gpu backends and across pool reuse.

    A chunk-local :class:`~repro.observability.dispatch.DispatchAggregator`
    is installed around the evaluation, so kernel dispatches triggered by
    the chunk are attributed to its frame — and, via
    :func:`~repro.observability.dispatch.use_collector`'s save/restore,
    never double-counted by a parent-side collector when evaluation runs
    inline.
    """

    evaluator: Callable[[Any], Any]
    label: str = ""

    def __call__(self, task: Any) -> tuple:
        start, count = _chunk_fields(task)
        task_bytes = _pickled_size(task)
        collector = _dispatch.DispatchAggregator()
        watch = _recorder.Stopwatch()
        with _dispatch.use_collector(collector):
            result = self.evaluator(task)
        frame = ChunkFrame(
            label=self.label,
            start=start,
            count=count,
            seconds=watch.seconds,
            worker=os.getpid(),
            task_bytes=task_bytes,
            result_bytes=_payload_bytes(result),
            dispatches=[KernelDispatch.from_entry(entry) for entry in collector.entries()],
        )
        return result, frame


def map_chunks(
    backend,
    evaluator: Callable[[Any], Any],
    tasks: Sequence[Any],
    recorder: Optional[object] = None,
    label: str = "",
) -> List[Any]:
    """``backend.map`` with chunk telemetry when a recorder is active.

    Disabled path: the exact ``backend.map(evaluator, tasks)`` call the
    engine made before observability existed.  Enabled path: the evaluator
    is wrapped, frames are stripped off in task order, stamped with their
    schedule index and merged into the recorder; the caller receives the
    plain results either way.
    """
    rec = recorder if recorder is not None else _recorder.active()
    if not rec.enabled:
        return backend.map(evaluator, tasks)
    wrapped = InstrumentedChunkEvaluator(evaluator, label)
    results: List[Any] = []
    for index, (result, frame) in enumerate(backend.map(wrapped, tasks)):
        frame.index = index
        rec.add_frame(frame)
        results.append(result)
    return results
