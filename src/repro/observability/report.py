"""Aggregated metrics and human-oriented trace summaries.

A JSONL trace is the raw record stream; :class:`MetricsReport` folds it
into the tables people actually ask for: where the wall-clock went
(per-span totals), what the sweep-kernel registry dispatched (per-shape
kernel histogram), how the chunk schedule looked, and how evenly the
workers were loaded.  Reports are plain JSON-serializable data — build one
live from a :class:`~repro.observability.recorder.TraceRecorder`, or
offline from a trace file long after the run, and round-trip it through
:meth:`MetricsReport.save` / :meth:`MetricsReport.load`.

:func:`summarize_trace` is the one-call path from a trace file to a
printable report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .dispatch import DispatchAggregator

__all__ = ["MetricsReport", "summarize_trace"]


@dataclass
class MetricsReport:
    """Aggregated view of one trace; all fields JSON-serializable.

    ``spans``    — ``{"name", "calls", "seconds"}`` totals, sorted by name.
    ``counters`` — counter name to accumulated value.
    ``kernels``  — per-``(kernel, backend, n, batch, columns)`` dispatch
    totals, parent-side and worker-side merged.
    ``chunks``   — the chunk schedule in merge (task) order:
    ``{"label", "index", "start", "count", "worker", "host", "seconds",
    "task_bytes", "result_bytes"}``.
    ``workers``  — per-``(host, pid)`` chunk counts, busy seconds, row
    totals and measured ``rows_per_second`` throughput (with the fleet
    backend chunks evaluate on other machines, so a pid alone is not an
    identity; the throughput column is what the weighted fleet scheduler
    estimates link-side).
    ``imbalance`` — max/mean worker busy time (1.0 = perfectly balanced),
    ``None`` when no worker was busy.  :attr:`worker_imbalance` breaks the
    same ratio out per host.
    """

    spans: List[dict] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    kernels: List[dict] = field(default_factory=list)
    chunks: List[dict] = field(default_factory=list)
    workers: List[dict] = field(default_factory=list)
    imbalance: Optional[float] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_recorder(cls, recorder) -> "MetricsReport":
        """Aggregate a live :class:`TraceRecorder` (no file needed)."""
        return cls.from_records(recorder.records())

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "MetricsReport":
        """Aggregate an iterable of trace records (e.g. parsed JSONL lines)."""
        span_totals: Dict[str, List[float]] = {}
        counters: Dict[str, float] = {}
        kernels = DispatchAggregator()
        chunks: List[dict] = []
        for record in records:
            kind = record.get("type")
            if kind == "span":
                name = str(record.get("name", ""))
                entry = span_totals.setdefault(name, [0, 0.0])
                entry[0] += 1
                entry[1] += float(record.get("seconds", 0.0))
            elif kind == "counter":
                counters[str(record["name"])] = float(record.get("value", 0.0))
            elif kind == "dispatch":
                kernels.merge([record])
            elif kind == "frame":
                chunks.append(
                    {
                        "label": record.get("label", ""),
                        "index": int(record.get("index", -1)),
                        "start": int(record.get("start", -1)),
                        "count": int(record.get("count", 0)),
                        "worker": int(record.get("worker", -1)),
                        "host": str(record.get("host", "")),
                        "seconds": float(record.get("seconds", 0.0)),
                        "task_bytes": int(record.get("task_bytes", 0)),
                        "result_bytes": int(record.get("result_bytes", 0)),
                    }
                )
                kernels.merge(record.get("dispatches", ()))
        report = cls(
            spans=[
                {"name": name, "calls": int(calls), "seconds": float(seconds)}
                for name, (calls, seconds) in sorted(span_totals.items())
            ],
            counters=dict(sorted(counters.items())),
            kernels=kernels.entries(),
            chunks=chunks,
        )
        report.workers = _worker_table(chunks)
        report.imbalance = _imbalance(report.workers)
        return report

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def worker_imbalance(self) -> Dict[str, Optional[float]]:
        """Per-host max/mean busy-time ratio across that host's workers.

        The fleet-era refinement of :attr:`imbalance`: with workers spread
        over machines, a single global ratio conflates "one slow host" with
        "one slow worker".  Hosts with no busy worker map to ``None``.
        """
        by_host: Dict[str, List[dict]] = {}
        for entry in self.workers:
            by_host.setdefault(str(entry.get("host", "")), []).append(entry)
        return {host: _imbalance(entries) for host, entries in sorted(by_host.items())}

    def chunk_schedule(self, label: Optional[str] = None) -> List[tuple]:
        """``(start, count)`` pairs in merge order, optionally one label's.

        This is exactly the schedule the engine planned — CI's trace-smoke
        job reconstructs the expected plan and asserts equality.
        """
        return [
            (chunk["start"], chunk["count"])
            for chunk in self.chunks
            if label is None or chunk["label"] == label
        ]

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def to_json(self) -> dict:
        return {
            "version": 1,
            "spans": self.spans,
            "counters": self.counters,
            "kernels": self.kernels,
            "chunks": self.chunks,
            "workers": self.workers,
            "imbalance": self.imbalance,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "MetricsReport":
        return cls(
            spans=list(payload.get("spans", ())),
            counters=dict(payload.get("counters", {})),
            kernels=list(payload.get("kernels", ())),
            chunks=list(payload.get("chunks", ())),
            workers=list(payload.get("workers", ())),
            imbalance=payload.get("imbalance"),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.to_json(), stream, indent=2, sort_keys=True)
            stream.write("\n")

    @classmethod
    def load(cls, path: str) -> "MetricsReport":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(json.load(stream))

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """A multi-section plain-text report (what ``summarize_trace`` prints)."""
        lines: List[str] = []
        if self.spans:
            lines.append("spans (total seconds, calls):")
            width = max(len(entry["name"]) for entry in self.spans)
            for entry in sorted(self.spans, key=lambda item: -item["seconds"]):
                lines.append(
                    f"  {entry['name']:<{width}}  {entry['seconds']:9.4f}s  x{entry['calls']}"
                )
        if self.counters:
            lines.append("counters:")
            for name, value in self.counters.items():
                rendered = int(value) if float(value).is_integer() else value
                lines.append(f"  {name} = {rendered}")
        if self.kernels:
            lines.append("kernel dispatches (kernel/backend, n, batch, columns):")
            for entry in self.kernels:
                lines.append(
                    f"  {entry['kernel']}/{entry['backend']}"
                    f"  n={entry['n']} batch={entry['batch']} cols={entry['columns']}"
                    f"  x{entry['calls']}  {entry['seconds']:9.4f}s"
                )
        if self.chunks:
            total_bytes = sum(chunk["task_bytes"] + chunk["result_bytes"] for chunk in self.chunks)
            lines.append(
                f"chunks: {len(self.chunks)} evaluated, "
                f"{sum(chunk['count'] for chunk in self.chunks)} realizations, "
                f"{total_bytes} payload bytes"
            )
        if self.workers:
            lines.append("workers (chunks, busy seconds, rows/s):")
            for entry in self.workers:
                host = str(entry.get("host", "")) or "?"
                rate = entry.get("rows_per_second")
                rate_text = f", {rate:10.1f} rows/s" if rate else ""
                lines.append(
                    f"  {host}/pid {entry['worker']}: "
                    f"{entry['chunks']} chunks, {entry['seconds']:9.4f}s{rate_text}"
                )
            if self.imbalance is not None:
                lines.append(f"  imbalance (max/mean busy): {self.imbalance:.3f}")
            per_host = {
                host: ratio
                for host, ratio in self.worker_imbalance.items()
                if ratio is not None
            }
            if len(per_host) > 1 or (per_host and len(self.worker_imbalance) > 1):
                for host, ratio in per_host.items():
                    lines.append(f"    {host or '?'}: imbalance {ratio:.3f}")
        if not lines:
            lines.append("(empty trace)")
        return "\n".join(lines)


def _worker_table(chunks: List[dict]) -> List[dict]:
    totals: Dict[tuple, List[float]] = {}
    for chunk in chunks:
        key = (str(chunk.get("host", "")), int(chunk["worker"]))
        entry = totals.setdefault(key, [0, 0.0, 0])
        entry[0] += 1
        entry[1] += float(chunk["seconds"])
        entry[2] += int(chunk.get("count", 0))
    return [
        {
            "host": host,
            "worker": worker,
            "chunks": int(count),
            "seconds": float(seconds),
            "rows": int(rows),
            # Measured throughput — the quantity the weighted fleet
            # scheduler estimates link-side; ``None`` when never busy.
            "rows_per_second": (float(rows) / seconds) if seconds > 0.0 else None,
        }
        for (host, worker), (count, seconds, rows) in sorted(totals.items())
    ]


def _imbalance(workers: List[dict]) -> Optional[float]:
    busy = [entry["seconds"] for entry in workers if entry["seconds"] > 0.0]
    if not busy:
        return None
    mean = sum(busy) / len(busy)
    return max(busy) / mean if mean > 0.0 else None


def read_trace(path: str) -> List[dict]:
    """Parse a JSONL trace file into its record dicts."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_trace(path: str) -> str:
    """Aggregate a JSONL trace file and render the plain-text report."""
    return MetricsReport.from_records(read_trace(path)).render()
