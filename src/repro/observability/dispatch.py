"""Kernel-dispatch metrics: who ran the column sweep, on what, how fast.

:func:`repro.arrays.sweep.apply_column_sweep` consults the module-level
collector before every dispatch.  ``None`` (the default) means disabled —
the sweep's only overhead is one module-global read per call.  While a
collector is installed, every dispatch records ``(kernel_name, backend,
n, batch, columns, seconds)``; the :class:`DispatchAggregator` folds the
calls into per-shape totals, which is exactly the raw data the
shape-aware adaptive kernel-selection roadmap item needs (where is the
fused/looped crossover on *this* machine?).

Collectors are installed two ways:

* :func:`repro.observability.recorder.observe` registers the active
  recorder's aggregator, so parent-side sweeps (nominal forwards,
  serial-backend chunks) land in the trace directly;
* :class:`repro.observability.frames.InstrumentedChunkEvaluator` installs
  a chunk-local aggregator around each chunk evaluation — in worker
  processes and inline alike — and ships the result back inside the
  chunk's telemetry frame.

This module is numpy-free (it is imported by the numpy-free kernel
registry) and never touches the swept arrays — only their shapes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "DispatchAggregator",
    "active_collector",
    "set_collector",
    "use_collector",
    "active_feedback",
    "set_feedback",
]


class DispatchAggregator:
    """Folds kernel dispatches into deterministic per-shape totals.

    Keyed by ``(kernel, backend, n, batch, columns)``; the call count per
    key is deterministic for a deterministic workload, only the
    accumulated seconds vary between runs.
    """

    __slots__ = ("_totals",)

    def __init__(self) -> None:
        self._totals: Dict[Tuple[str, str, int, int, int], List[float]] = {}

    def record(self, kernel: str, backend: str, n: int, batch: int, columns: int, seconds: float) -> None:
        key = (kernel, backend, n, batch, columns)
        entry = self._totals.get(key)
        if entry is None:
            self._totals[key] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def __len__(self) -> int:
        return len(self._totals)

    @property
    def total_calls(self) -> int:
        return sum(int(entry[0]) for entry in self._totals.values())

    def merge(self, entries: Iterator[dict]) -> None:
        """Fold exported entries (e.g. from a worker frame) into this one."""
        for entry in entries:
            key = (
                str(entry["kernel"]),
                str(entry["backend"]),
                int(entry["n"]),
                int(entry["batch"]),
                int(entry["columns"]),
            )
            existing = self._totals.get(key)
            if existing is None:
                self._totals[key] = [int(entry["calls"]), float(entry["seconds"])]
            else:
                existing[0] += int(entry["calls"])
                existing[1] += float(entry["seconds"])

    def entries(self) -> List[dict]:
        """Per-shape totals in deterministic (sorted-key) order."""
        return [
            {
                "kernel": kernel,
                "backend": backend,
                "n": n,
                "batch": batch,
                "columns": columns,
                "calls": int(calls),
                "seconds": float(seconds),
            }
            for (kernel, backend, n, batch, columns), (calls, seconds) in sorted(self._totals.items())
        ]


#: The process's dispatch collector; ``None`` disables dispatch recording.
_COLLECTOR: Optional[DispatchAggregator] = None


def active_collector() -> Optional[DispatchAggregator]:
    """The installed collector, or ``None`` when dispatch metrics are off."""
    return _COLLECTOR


def set_collector(collector: Optional[DispatchAggregator]) -> None:
    """Install ``collector`` process-wide (``None`` disables)."""
    global _COLLECTOR
    _COLLECTOR = collector


#: Autotune feedback sink: called as ``sink(backend, kernel, n, batch,
#: columns, seconds)`` for every timed dispatch.  Unlike the collector —
#: an *observer* installed per trace/chunk — the sink is a process-wide
#: *consumer* (the cost-model's online refinement in
#: :mod:`repro.tuning.policy`) and stays installed across traces.
_FEEDBACK: Optional[Callable[[str, str, int, int, int, float], None]] = None


def active_feedback() -> Optional[Callable[[str, str, int, int, int, float], None]]:
    """The installed autotune feedback sink, or ``None`` when inactive."""
    return _FEEDBACK


def set_feedback(sink: Optional[Callable[[str, str, int, int, int, float], None]]) -> None:
    """Install the dispatch feedback ``sink`` process-wide (``None`` disables)."""
    global _FEEDBACK
    _FEEDBACK = sink


@contextmanager
def use_collector(collector: Optional[DispatchAggregator]) -> Iterator[Optional[DispatchAggregator]]:
    """Install ``collector`` for the duration of the block (nestable).

    The previous collector is restored on exit, so a chunk-local
    aggregator (inline serial evaluation under an active recorder) shadows
    the recorder's global one for exactly its chunk — dispatches are never
    double-counted.
    """
    global _COLLECTOR
    previous = _COLLECTOR
    _COLLECTOR = collector
    try:
        yield collector
    finally:
        _COLLECTOR = previous
