"""Span/counter recorder: the core of the observability layer.

One module-level recorder is active per process.  By default it is the
:class:`NullRecorder`, whose every method is a no-op and whose ``span``
returns a cached null context manager — the *structurally zero-overhead*
disabled path: an instrumented seam costs one module-global read plus a
no-op call, independent of how much telemetry the enabled path would
collect.  :func:`observe` swaps in a :class:`TraceRecorder` for the
duration of a block (and optionally exports the trace/metrics on exit);
setting the ``REPRO_TRACE`` environment variable before the process starts
installs one for the whole process and writes the JSONL trace at exit.

**Determinism contract.**  Recording never consumes randomness and never
reads result-array contents; span/frame/dispatch records are deterministic
in everything but their timing fields.  Traced runs are therefore
bit-identical to untraced runs — asserted by the observability test suite.

This module (like the rest of the package) is numpy-free and enforced so
by ``tools/check_numpy_seam.py``: telemetry must stay importable from the
namespace-generic kernels without dragging a host array library in.
"""

from __future__ import annotations

import atexit
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from . import dispatch as _dispatch

__all__ = [
    "TRACE_ENV",
    "perf_seconds",
    "Stopwatch",
    "Span",
    "NullRecorder",
    "TraceRecorder",
    "active",
    "recording_enabled",
    "observe",
]

#: Environment variable enabling process-wide tracing.  Its value is the
#: JSONL trace path written at interpreter exit; the bare values ``"1"`` /
#: ``"true"`` enable in-memory recording without a file (useful to make
#: ``spnn-repro`` experiments record for a ``--metrics-out`` export).
TRACE_ENV = "REPRO_TRACE"


def perf_seconds() -> float:
    """The monotonic high-resolution clock every timing in the repo uses.

    ``time.perf_counter`` — never ``time.time``, which is not monotonic and
    jumps under clock adjustment (NTP slew, suspend/resume), silently
    corrupting measured durations.
    """
    return time.perf_counter()


class Stopwatch:
    """Monotonic elapsed-seconds helper replacing hand-rolled timer pairs.

    ::

        watch = Stopwatch()
        ...work...
        print(watch.seconds)

    ``restart()`` re-arms the same instance for loops that time several
    legs (best-of-N measurement idioms).
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = perf_seconds()

    @property
    def seconds(self) -> float:
        """Seconds elapsed since construction (or the last restart)."""
        return perf_seconds() - self._started

    def restart(self) -> None:
        self._started = perf_seconds()


class _NullSpan:
    """The span the disabled path hands out: a cached, inert singleton."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, key: str, value) -> None:
        """Attribute writes on the null span vanish."""
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    A singleton of this class is the module default; hot seams interact
    with it through exactly the same API as the tracing recorder, so
    enabling tracing changes *what happens*, never *what code runs*.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields) -> None:
        return None

    def counter_add(self, name: str, value: float = 1.0) -> None:
        return None

    def add_frame(self, frame) -> None:
        return None

    def add_dispatch(self, kernel: str, backend: str, n: int, batch: int, columns: int, seconds: float) -> None:
        return None


class Span:
    """One timed, attributed, possibly nested trace region.

    Use as a context manager (``with recorder.span("mc/run") as span:``);
    ``set`` attaches attributes discovered mid-span (chunk counts, outcome
    flags).  The parent is whatever span was open on the recorder's stack
    at entry, so nesting falls out of ordinary ``with`` structure.
    """

    __slots__ = ("recorder", "name", "attrs", "span_id", "parent_id", "t0", "t1")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: Dict[str, object]):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.t0 = 0.0
        self.t1 = 0.0

    def __enter__(self) -> "Span":
        self.recorder._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.recorder._close(self)
        return None

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0

    def to_record(self) -> Dict[str, object]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
        }


class TraceRecorder:
    """Collects spans, events, counters, chunk frames and kernel dispatches.

    One instance belongs to one (parent) process; worker processes never
    see it — their telemetry arrives as picklable
    :class:`~repro.observability.frames.ChunkFrame` records piggybacked on
    chunk results and merged via :meth:`add_frame` in deterministic task
    order.  Parent-side kernel dispatches (e.g. the nominal-accuracy
    forward outside any chunk) are captured by registering the recorder as
    the process dispatch collector while it is active
    (:func:`observe` does this).
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.events: List[Dict[str, object]] = []
        self.counters: Dict[str, float] = {}
        self.frames: List[object] = []
        self.dispatches = _dispatch.DispatchAggregator()
        self._stack: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------ #
    # span lifecycle
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, dict(attrs))

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)
        span.t0 = perf_seconds()

    def _close(self, span: Span) -> None:
        span.t1 = perf_seconds()
        # Tolerate out-of-order exits (a span leaked across a generator);
        # remove wherever it sits instead of corrupting the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self.spans.append(span)

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------ #
    # events / counters / worker telemetry
    # ------------------------------------------------------------------ #
    def event(self, name: str, **fields) -> None:
        record = {"type": "event", "name": name, "t": perf_seconds()}
        record.update(fields)
        self.events.append(record)

    def counter_add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def add_frame(self, frame) -> None:
        self.frames.append(frame)

    def add_dispatch(self, kernel: str, backend: str, n: int, batch: int, columns: int, seconds: float) -> None:
        self.dispatches.record(kernel, backend, n, batch, columns, seconds)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def records(self) -> Iterator[Dict[str, object]]:
        """Every trace record as a JSON-serializable dict (JSONL lines)."""
        yield {"type": "meta", "version": 1, "pid": os.getpid()}
        for span in self.spans:
            yield span.to_record()
        for event in self.events:
            yield event
        for name in sorted(self.counters):
            yield {"type": "counter", "name": name, "value": self.counters[name]}
        for frame in self.frames:
            yield frame.to_record()
        for entry in self.dispatches.entries():
            record = {"type": "dispatch", "scope": "parent"}
            record.update(entry)
            yield record

    def write_jsonl(self, path: str) -> None:
        """Write the trace as one JSON record per line."""
        import json

        with open(path, "w", encoding="utf-8") as stream:
            for record in self.records():
                stream.write(json.dumps(record, default=_jsonable) + "\n")


def _jsonable(value):
    """Last-resort JSON coercion for attribute values (numpy scalars, mostly).

    ``tolist`` before ``item``: it converts scalars and small metadata
    arrays alike, while ``item`` raises on anything with more than one
    element.
    """
    for attribute in ("tolist", "item"):
        converter = getattr(value, attribute, None)
        if callable(converter):
            try:
                return converter()
            except Exception:
                continue
    return repr(value)


# --------------------------------------------------------------------------- #
# active-recorder management
# --------------------------------------------------------------------------- #

_NULL = NullRecorder()
_ACTIVE = _NULL


def active():
    """The process's current recorder (the null recorder unless observing)."""
    return _ACTIVE


def recording_enabled() -> bool:
    """Whether a tracing recorder is currently active."""
    return _ACTIVE.enabled


@contextmanager
def observe(
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    recorder: Optional[TraceRecorder] = None,
) -> Iterator[TraceRecorder]:
    """Record spans/metrics for the duration of the block.

    Installs a fresh :class:`TraceRecorder` (or the one supplied) as the
    process recorder *and* as the kernel-dispatch collector, restores the
    previous recorder on exit, and optionally exports:

    * ``trace_path`` — the full trace as JSONL, one record per line;
    * ``metrics_path`` — the aggregated
      :class:`~repro.observability.report.MetricsReport` as JSON.

    Nested ``observe`` blocks each get their own recorder; the outer one
    resumes when the inner block exits.  The recorder is yielded so callers
    can inspect spans/frames programmatically::

        with observe() as rec:
            yield_sweep(...)
        report = MetricsReport.from_recorder(rec)
    """
    global _ACTIVE
    rec = recorder if recorder is not None else TraceRecorder()
    previous = _ACTIVE
    _ACTIVE = rec
    try:
        with _dispatch.use_collector(rec.dispatches):
            yield rec
    finally:
        _ACTIVE = previous
        if trace_path:
            rec.write_jsonl(trace_path)
        if metrics_path:
            from .report import MetricsReport

            MetricsReport.from_recorder(rec).save(metrics_path)


def _install_env_recorder() -> None:
    """Process-wide tracing when ``REPRO_TRACE`` is set (import-time, once).

    The recorder stays active for the life of the process and the trace is
    written at interpreter exit when the value names a path.  Checked at
    import so the disabled path never pays a per-call environment read.
    """
    value = os.environ.get(TRACE_ENV, "").strip()
    if not value:
        return
    global _ACTIVE
    rec = TraceRecorder()
    _ACTIVE = rec
    _dispatch.set_collector(rec.dispatches)
    if value.lower() not in ("1", "true", "yes"):
        atexit.register(rec.write_jsonl, value)


_install_env_recorder()
