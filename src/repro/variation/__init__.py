"""Uncertainty models and samplers: Gaussian FPV, zonal maps, thermal crosstalk."""

from .fpv import CorrelatedFPVModel
from .models import UncertaintyModel
from .sampler import (
    sample_diagonal_perturbation,
    sample_diagonal_perturbation_batch,
    sample_layer_perturbation,
    sample_layer_perturbation_batch,
    sample_mesh_perturbation,
    sample_mesh_perturbation_batch,
    sample_network_perturbation,
    sample_network_perturbation_batch,
    sample_single_mzi_perturbation,
)
from .thermal import ThermalCrosstalkModel
from .zones import Zone, ZoneGrid

__all__ = [
    "UncertaintyModel",
    "sample_mesh_perturbation",
    "sample_mesh_perturbation_batch",
    "sample_single_mzi_perturbation",
    "sample_diagonal_perturbation",
    "sample_diagonal_perturbation_batch",
    "sample_layer_perturbation",
    "sample_layer_perturbation_batch",
    "sample_network_perturbation",
    "sample_network_perturbation_batch",
    "Zone",
    "ZoneGrid",
    "ThermalCrosstalkModel",
    "CorrelatedFPVModel",
]
