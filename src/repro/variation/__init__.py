"""Uncertainty models, samplers and temporal perturbation processes."""

from .fpv import CorrelatedFPVModel
from .models import UncertaintyModel
from .process import (
    PROCESS_NAMES,
    DriftRampProcess,
    DriftState,
    IIDGaussianProcess,
    OrnsteinUhlenbeckProcess,
    PerturbationProcess,
    RandomWalkProcess,
    build_process,
)
from .sampler import (
    diagonal_batch_draw_length,
    diagonal_perturbation_batch_from_draws,
    mesh_batch_draw_length,
    mesh_perturbation_batch_from_draws,
    sample_diagonal_perturbation,
    sample_diagonal_perturbation_batch,
    sample_layer_perturbation,
    sample_layer_perturbation_batch,
    sample_mesh_perturbation,
    sample_mesh_perturbation_batch,
    sample_network_perturbation,
    sample_network_perturbation_batch,
    sample_single_mzi_perturbation,
)
from .thermal import ThermalCrosstalkModel
from .zones import Zone, ZoneGrid

__all__ = [
    "UncertaintyModel",
    "PerturbationProcess",
    "IIDGaussianProcess",
    "OrnsteinUhlenbeckProcess",
    "RandomWalkProcess",
    "DriftRampProcess",
    "DriftState",
    "PROCESS_NAMES",
    "build_process",
    "mesh_batch_draw_length",
    "mesh_perturbation_batch_from_draws",
    "diagonal_batch_draw_length",
    "diagonal_perturbation_batch_from_draws",
    "sample_mesh_perturbation",
    "sample_mesh_perturbation_batch",
    "sample_single_mzi_perturbation",
    "sample_diagonal_perturbation",
    "sample_diagonal_perturbation_batch",
    "sample_layer_perturbation",
    "sample_layer_perturbation_batch",
    "sample_network_perturbation",
    "sample_network_perturbation_batch",
    "Zone",
    "ZoneGrid",
    "ThermalCrosstalkModel",
    "CorrelatedFPVModel",
]
