"""Perturbation processes: the temporal generalization of the i.i.d. sampler.

The paper's Monte Carlo methodology is *static*: every trial draws a fresh
i.i.d. Gaussian realization of the component errors (§III-A).  A deployed
mesh instead degrades along a *timeline* — thermal drift wanders, aging
accumulates, a bias ramp creeps — and the operations question becomes
"what accuracy does the service actually serve at time t, and when must we
re-null the phases?".

This module turns the variation stack into a first-class
:class:`PerturbationProcess` seam:

* :class:`IIDGaussianProcess` is the bit-identical reference
  implementation of the existing sampler — its :meth:`~PerturbationProcess.
  sample_batch` *is* :func:`~repro.variation.sampler.
  sample_network_perturbation_batch`, and each timeline step redraws the
  state from scratch, so every legacy Monte Carlo path routed through it
  reproduces its historical samples bit for bit.
* :class:`OrnsteinUhlenbeckProcess` models thermal drift: a stationary
  mean-reverting walk whose marginal stays exactly the model's Gaussian at
  every step (an OU process in normalized units, ``rho = exp(-dt/tau)``).
* :class:`RandomWalkProcess` models aging: variance grows linearly with
  time on top of the fabrication draw.
* :class:`DriftRampProcess` models a deterministic drift (e.g. a slow bias
  or temperature ramp) and consumes **no** randomness after the
  fabrication draw.

**State representation.** A process state holds, per (layer, stage), the
``(B, draws)`` matrix of *normalized* draws ``z`` — the same concatenated
standard-normal layout the i.i.d. sampler slices into device families
(:func:`~repro.variation.sampler.mesh_perturbation_batch_from_draws`).
Physical perturbations are always ``sigma * z``, so every built-in process
is exactly linear in the model sigmas (``linear_in_sigma``), which is what
lets :class:`~repro.training.injector.NoiseInjector` rescale cached draws
across schedule levels.

**Determinism.** Timeline ``b`` consumes ``generators[b]`` only, in a
fixed per-step order (layer by layer; U mesh, V mesh, Sigma bank — the
i.i.d. sampler's order), so advancing timelines ``[0:4]`` in one state is
bit-identical to advancing ``[0:2]`` and ``[2:4]`` in two: the timeline
sweep can shard timelines across any worker count without changing a
single draw.

**Recalibration.** Re-nulling a deployed mesh re-tunes its *phase
shifters* to cancel the accumulated drift; splitter (reflectance) errors
are fabrication properties no phase tuner can remove.  The state models
this exactly: :meth:`DriftState.renull` snapshots the tunable phase-family
slices of ``z`` into a compensation buffer that is subtracted from every
later realization, while the splitter slices keep drifting uncompensated.
This is the idealized form of :meth:`~repro.mesh.svd_layer.
PhotonicLinearLayer.retune_from_weight` (which re-nulls a real layer in
place and is exercised by :mod:`repro.analysis.recalibration` for the
cost accounting).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Sequence, Tuple

import numpy as np

from ..arrays import active_array_backend
from ..mesh.svd_layer import LayerPerturbationBatch, PhotonicLinearLayer
from .models import UncertaintyModel
from .sampler import (
    _draw_rows,
    diagonal_batch_draw_length,
    diagonal_perturbation_batch_from_draws,
    mesh_batch_draw_length,
    mesh_perturbation_batch_from_draws,
    sample_network_perturbation,
    sample_network_perturbation_batch,
)

__all__ = [
    "PerturbationProcess",
    "IIDGaussianProcess",
    "OrnsteinUhlenbeckProcess",
    "RandomWalkProcess",
    "DriftRampProcess",
    "DriftState",
    "PROCESS_NAMES",
    "build_process",
]


# --------------------------------------------------------------------------- #
# per-stage layout
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _StageSpec:
    """Draw layout of one (layer, stage) slot of the state."""

    layer_index: int
    stage: str  # "u" | "v" | "sigma"
    length: int
    #: Half-open ``(start, stop)`` column ranges of the tunable phase-family
    #: draws — the part of the state a re-null can compensate.  Splitter
    #: slices are never tunable; phase slices only count when the model
    #: actually perturbs phases (otherwise their draws never reach the
    #: hardware and must not pollute the drift metric).
    tunable: Tuple[Tuple[int, int], ...]


def _mesh_tunable_slices(mesh, model: UncertaintyModel) -> Tuple[Tuple[int, int], ...]:
    if not model.phase_std:
        return ()
    count = mesh.num_mzis
    slices = [(0, count), (count, 2 * count)]
    if model.perturb_output_phases:
        slices.append((4 * count, 4 * count + mesh.n))
    return tuple(slices)


def _network_stage_specs(
    layers: Sequence[PhotonicLinearLayer], model: UncertaintyModel
) -> List[Optional[_StageSpec]]:
    """Flat stage layout, in exact stream-consumption order.

    ``None`` entries mark inactive Sigma stages (which the i.i.d. sampler
    skips without consuming any draws — the processes must skip them too).
    """
    specs: List[Optional[_StageSpec]] = []
    for index, layer in enumerate(layers):
        for stage, mesh in (("u", layer.mesh_u), ("v", layer.mesh_v)):
            specs.append(
                _StageSpec(
                    layer_index=index,
                    stage=stage,
                    length=mesh_batch_draw_length(mesh, model),
                    tunable=_mesh_tunable_slices(mesh, model),
                )
            )
        num_mzis = layer.diagonal.num_mzis
        length = diagonal_batch_draw_length(num_mzis, model)
        if length is None:
            specs.append(None)
        else:
            tunable = ((0, 2 * num_mzis),) if model.phase_std else ()
            specs.append(
                _StageSpec(layer_index=index, stage="sigma", length=length, tunable=tunable)
            )
    return specs


# --------------------------------------------------------------------------- #
# timeline state
# --------------------------------------------------------------------------- #


class DriftState:
    """State of ``B`` independent device timelines under one process.

    Created by :meth:`PerturbationProcess.init_state`; holds one
    ``(B, length)`` normalized draw matrix per (layer, stage) plus the
    re-null compensation buffers.  :meth:`advance` evolves every timeline
    one step (consuming each timeline's own generator in the fixed stage
    order), :meth:`realize` maps the compensated state to physical
    perturbation batches, and :meth:`renull`/:meth:`drift_rms` implement
    the recalibration seam.
    """

    def __init__(
        self,
        process: "PerturbationProcess",
        layers: Sequence[PhotonicLinearLayer],
        model: UncertaintyModel,
        generators: Sequence[np.random.Generator],
    ):
        self.process = process
        self.layers = list(layers)
        self.model = model
        self.generators = list(generators)
        if not self.generators:
            raise ValueError("a drift state requires at least one generator (one per timeline)")
        self.specs = _network_stage_specs(self.layers, model)
        #: Normalized draw matrices, aligned with ``specs`` (``None`` until
        #: the first :meth:`advance`, and for inactive Sigma stages).
        self.z: List[Optional[object]] = [None] * len(self.specs)
        #: Re-null compensation, subtracted from ``z`` at realization time.
        #: Allocated lazily on the first re-null.
        self.compensation: List[Optional[object]] = [None] * len(self.specs)
        #: Steps taken so far minus one (-1 = not yet advanced; the first
        #: :meth:`advance` is step 0, the fabrication draw).
        self.step = -1

    @property
    def batch_size(self) -> int:
        """Number of independent timelines."""
        return len(self.generators)

    # ------------------------------------------------------------------ #
    # evolution
    # ------------------------------------------------------------------ #
    def advance(self) -> None:
        """Evolve every timeline one step.

        Step 0 is the fabrication draw ``z = eps`` for every process; later
        steps apply the process's update rule.  Each timeline's generator
        is consumed in the i.i.d. sampler's stage order, and only by its
        own row, so the evolution is invariant to how timelines are
        chunked across workers.
        """
        self.step += 1
        uses_noise = self.step == 0 or self.process.uses_noise_after_init
        for index, spec in enumerate(self.specs):
            if spec is None:
                continue
            if self.step == 0:
                self.z[index] = _draw_rows(self.generators, spec.length)
            else:
                eps = _draw_rows(self.generators, spec.length) if uses_noise else None
                self.process._update(self.z[index], eps)

    # ------------------------------------------------------------------ #
    # realization
    # ------------------------------------------------------------------ #
    def _effective(self, index: int):
        z = self.z[index]
        compensation = self.compensation[index]
        return z if compensation is None else z - compensation

    def realize(self) -> List[Optional[LayerPerturbationBatch]]:
        """Physical perturbation batches for the current step.

        Applies the shared draws→fields mapping of the i.i.d. sampler to
        the compensated state, so an :class:`IIDGaussianProcess` step is
        bit-identical to a fresh
        :func:`~repro.variation.sampler.sample_network_perturbation_batch`
        call on the same streams.
        """
        if self.step < 0:
            raise RuntimeError("advance() the state before realizing perturbations")
        batches: List[Optional[LayerPerturbationBatch]] = []
        for layer_index, layer in enumerate(self.layers):
            base = 3 * layer_index
            u = mesh_perturbation_batch_from_draws(
                layer.mesh_u, self.model, self._effective(base)
            )
            v = mesh_perturbation_batch_from_draws(
                layer.mesh_v, self.model, self._effective(base + 1)
            )
            sigma = None
            if self.specs[base + 2] is not None:
                sigma = diagonal_perturbation_batch_from_draws(
                    layer.diagonal.num_mzis, self.model, self._effective(base + 2)
                )
            batches.append(LayerPerturbationBatch(u=u, v=v, sigma=sigma))
        return batches

    # ------------------------------------------------------------------ #
    # recalibration seam
    # ------------------------------------------------------------------ #
    def drift_rms(self):
        """Per-timeline RMS of the compensated tunable drift, shape ``(B,)``.

        Measured in normalized units ("how many sigmas has the tunable
        phase state wandered from its re-nulled point"); splitter drift is
        excluded because no phase re-null can touch it.  All-splitter
        models have no tunable state and report zero drift.
        """
        if self.step < 0:
            raise RuntimeError("advance() the state before measuring drift")
        xp = active_array_backend().xp
        total = None
        width = 0
        for index, spec in enumerate(self.specs):
            if spec is None or not spec.tunable:
                continue
            effective = self._effective(index)
            for start, stop in spec.tunable:
                if stop <= start:
                    continue
                block = effective[:, start:stop]
                contribution = xp.mean(block * block, axis=1) * (stop - start)
                total = contribution if total is None else total + contribution
                width += stop - start
        if total is None or width == 0:
            return xp.zeros(self.batch_size)
        return xp.sqrt(total / width)

    def renull(self, rows=None) -> None:
        """Re-null the tunable phase families (all timelines or ``rows``).

        Snapshots the current tunable slices of ``z`` into the
        compensation buffers, so subsequent realizations see zero phase
        drift at this instant — the idealized effect of re-tuning the
        phase shifters via
        :meth:`~repro.mesh.svd_layer.PhotonicLinearLayer.retune_from_weight`.
        Splitter slices are untouched: fabrication reflectance errors are
        not tunable.  ``rows`` is an optional ``(B,)`` boolean mask
        selecting which timelines re-null (threshold-triggered policies
        re-null only the timelines that tripped).  Consumes no randomness,
        so re-nulling never changes any stream's draw sequence.
        """
        if self.step < 0:
            raise RuntimeError("advance() the state before re-nulling")
        xp = active_array_backend().xp
        for index, spec in enumerate(self.specs):
            if spec is None or not spec.tunable:
                continue
            z = self.z[index]
            if self.compensation[index] is None:
                self.compensation[index] = xp.zeros(z.shape)
            compensation = self.compensation[index]
            for start, stop in spec.tunable:
                if rows is None:
                    compensation[:, start:stop] = z[:, start:stop]
                else:
                    compensation[rows, start:stop] = z[rows, start:stop]


# --------------------------------------------------------------------------- #
# the process protocol and its implementations
# --------------------------------------------------------------------------- #


class PerturbationProcess(ABC):
    """How component errors evolve: one draw, or a whole timeline.

    Two capabilities make up the seam:

    * :meth:`sample_batch` — one stateless batch of realizations, the
      Monte Carlo entry point used by the inference trials and the
      training-time :class:`~repro.training.injector.NoiseInjector`.  For
      every built-in process this is the time-zero marginal: the i.i.d.
      Gaussian fabrication draw, bit-identical to the legacy sampler.
    * :meth:`init_state` / :meth:`DriftState.advance` — a vectorized
      timeline of ``B`` independent devices, used by
      :func:`repro.analysis.timeline.timeline_sweep`.

    Subclasses implement :meth:`_update`, the in-place one-step evolution
    of a normalized ``(B, length)`` state matrix.
    """

    #: Whether perturbation fields scale exactly linearly with the model's
    #: (jointly scaled) sigmas.  True for every built-in process — the
    #: state is sigma-free and only the realization scales by sigma —
    #: which lets the injector rescale cached draws across schedule levels.
    linear_in_sigma: ClassVar[bool] = True
    #: Whether steps after the fabrication draw consume randomness.  The
    #: deterministic ramp sets this False and draws nothing after step 0.
    uses_noise_after_init: ClassVar[bool] = True
    #: Registry name (see :func:`build_process`).
    name: ClassVar[str] = ""

    def sample_batch(
        self,
        layers: Sequence[PhotonicLinearLayer],
        model: UncertaintyModel,
        generators: Sequence[np.random.Generator],
        workspace=None,
    ) -> List[Optional[LayerPerturbationBatch]]:
        """One stateless batch of realizations (the time-zero marginal).

        Delegates to the legacy i.i.d. sampler, so Monte Carlo paths
        routed through a process default reproduce their historical
        samples bit for bit.
        """
        return sample_network_perturbation_batch(layers, model, generators, workspace=workspace)

    def sample_single(
        self,
        layers: Sequence[PhotonicLinearLayer],
        model: UncertaintyModel,
        generator: np.random.Generator,
    ):
        """One stateless realization (the looped Monte Carlo path).

        The single-draw counterpart of :meth:`sample_batch`: the process's
        fabrication-draw marginal, consumed from ``generator`` exactly as
        the legacy per-iteration sampler — so the looped and batched paths
        stay bit-identical through the seam.
        """
        return sample_network_perturbation(layers, model, generator)

    def init_state(
        self,
        layers: Sequence[PhotonicLinearLayer],
        model: UncertaintyModel,
        generators: Sequence[np.random.Generator],
    ) -> DriftState:
        """Fresh (not yet advanced) timeline state for ``len(generators)`` devices."""
        return DriftState(self, layers, model, generators)

    @abstractmethod
    def _update(self, z, eps) -> None:
        """Evolve a normalized state matrix one step, in place.

        ``eps`` is a fresh standard-normal matrix of the same shape, or
        ``None`` when :attr:`uses_noise_after_init` is False.
        """


@dataclass(frozen=True)
class IIDGaussianProcess(PerturbationProcess):
    """The paper's static model: every step is a fresh fabrication draw.

    The bit-identical reference implementation of the legacy sampler seam:
    :meth:`~PerturbationProcess.sample_batch` is the i.i.d. batch sampler
    itself, and each timeline step replaces the state with fresh draws, so
    step ``t`` equals a standalone Monte Carlo batch on the same streams.
    """

    name: ClassVar[str] = "iid"

    def _update(self, z, eps) -> None:
        z[...] = eps


@dataclass(frozen=True)
class OrnsteinUhlenbeckProcess(PerturbationProcess):
    """Stationary mean-reverting thermal drift (OU in normalized units).

    ``z_{t+1} = rho z_t + sqrt(1 - rho^2) eps`` with
    ``rho = exp(-dt / correlation_time)``, started from the stationary
    distribution (the fabrication draw), so the *marginal* at every step
    is exactly the model's ``N(0, sigma^2)`` — the static yield picture is
    preserved while consecutive steps correlate with time constant
    ``correlation_time``.
    """

    #: Autocorrelation time constant, in units of the timeline step.
    correlation_time: float = 25.0
    #: Timeline step duration in the same units.
    dt: float = 1.0
    name: ClassVar[str] = "ou"

    def __post_init__(self) -> None:
        if self.correlation_time <= 0:
            raise ValueError(f"correlation_time must be positive, got {self.correlation_time}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")

    @property
    def rho(self) -> float:
        """One-step autocorrelation ``exp(-dt / correlation_time)``."""
        return math.exp(-self.dt / self.correlation_time)

    def _update(self, z, eps) -> None:
        rho = self.rho
        diffusion = math.sqrt(1.0 - rho * rho)
        z *= rho
        z += diffusion * eps


@dataclass(frozen=True)
class RandomWalkProcess(PerturbationProcess):
    """Aging: an unbounded random walk on top of the fabrication draw.

    ``z_{t+1} = z_t + step_scale * eps``, so the normalized drift variance
    grows as ``1 + t * step_scale^2`` — the accumulating degradation that
    makes periodic re-nulling a necessity rather than an optimization
    (cf. the mean-first-passage statistics of random walks: every
    timeline eventually exceeds any fixed drift threshold).
    """

    #: Per-step walk increment, in units of the model sigma.
    step_scale: float = 0.1
    name: ClassVar[str] = "walk"

    def __post_init__(self) -> None:
        if self.step_scale < 0:
            raise ValueError(f"step_scale must be non-negative, got {self.step_scale}")

    def _update(self, z, eps) -> None:
        z += self.step_scale * eps


@dataclass(frozen=True)
class DriftRampProcess(PerturbationProcess):
    """Deterministic drift: a constant per-step ramp on every component.

    After the fabrication draw the state creeps by ``rate`` per step (in
    units of the model sigma) with **no further randomness** — e.g. a slow
    ambient-temperature or bias ramp.  Useful as an analytically exact
    sanity case: ``z_t = z_0 + rate * t`` bit for bit.
    """

    #: Per-step deterministic increment, in units of the model sigma.
    rate: float = 0.05
    name: ClassVar[str] = "ramp"
    uses_noise_after_init: ClassVar[bool] = False

    def _update(self, z, eps) -> None:
        z += self.rate


# --------------------------------------------------------------------------- #
# registry (config/CLI-facing)
# --------------------------------------------------------------------------- #

#: Process names accepted by :func:`build_process` (CLI/config-facing).
PROCESS_NAMES = ("iid", "ou", "walk", "ramp")


def build_process(
    name: str,
    correlation_time: float = 25.0,
    dt: float = 1.0,
    step_scale: float = 0.1,
    rate: float = 0.05,
) -> PerturbationProcess:
    """Construct a named perturbation process from scalar knobs.

    Only the knobs relevant to ``name`` are consulted, so one config
    dataclass can carry all of them (the drift experiment does).
    """
    key = name.lower()
    if key == "iid":
        return IIDGaussianProcess()
    if key == "ou":
        return OrnsteinUhlenbeckProcess(correlation_time=correlation_time, dt=dt)
    if key == "walk":
        return RandomWalkProcess(step_scale=step_scale)
    if key == "ramp":
        return DriftRampProcess(rate=rate)
    raise ValueError(f"unknown perturbation process {name!r}; expected one of {PROCESS_NAMES}")
