"""Spatially-correlated fabrication-process-variation (FPV) model.

The paper's Monte Carlo experiments use independent Gaussian perturbations
per device, but it cites layout-dependent *correlated* manufacturing
variability (Lu et al., Optics Express 2017 — ref. [7]) as the physical
origin of splitter and phase errors.  This module provides a correlated
variation model over the mesh grid — nearby devices receive similar
deviations — used by the correlation ablation bench to show how spatial
correlation changes the accuracy-loss distribution relative to the
independent model.

The correlated field is Gaussian with a squared-exponential covariance over
grid positions::

    Cov(i, j) = sigma^2 * exp(-d_ij^2 / (2 * correlation_length^2))

and is sampled through a Cholesky factorization (with a small jitter for
numerical stability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import VariationModelError
from ..mesh.mesh import MeshPerturbation, MZIMesh
from ..utils.rng import RNGLike, ensure_rng
from .models import UncertaintyModel


@dataclass(frozen=True)
class CorrelatedFPVModel:
    """Spatially-correlated Gaussian variation over a mesh layout.

    Parameters
    ----------
    correlation_length:
        Correlation length in mesh grid units.  ``0`` (or anything much
        smaller than the device pitch) degenerates to the independent model.
    jitter:
        Diagonal jitter added to the covariance before Cholesky
        factorization.
    """

    correlation_length: float = 2.0
    jitter: float = 1e-10

    def __post_init__(self) -> None:
        if self.correlation_length < 0:
            raise VariationModelError(
                f"correlation_length must be non-negative, got {self.correlation_length}"
            )
        if self.jitter <= 0:
            raise VariationModelError(f"jitter must be positive, got {self.jitter}")

    # ------------------------------------------------------------------ #
    def covariance(self, mesh: MZIMesh, sigma: float) -> np.ndarray:
        """Covariance matrix of the correlated field over the mesh's MZIs."""
        positions = np.array(mesh.grid_positions(), dtype=np.float64)
        count = len(positions)
        if count == 0:
            return np.zeros((0, 0))
        if self.correlation_length == 0:
            return (sigma**2) * np.eye(count)
        deltas = positions[:, np.newaxis, :] - positions[np.newaxis, :, :]
        squared = np.sum(deltas**2, axis=-1)
        return (sigma**2) * np.exp(-squared / (2.0 * self.correlation_length**2))

    def sample_field(self, mesh: MZIMesh, sigma: float, rng: RNGLike = None) -> np.ndarray:
        """One realization of the zero-mean correlated field (per MZI)."""
        gen = ensure_rng(rng)
        count = mesh.num_mzis
        if count == 0:
            return np.zeros(0)
        if sigma == 0.0:
            return np.zeros(count)
        cov = self.covariance(mesh, sigma) + self.jitter * np.eye(count)
        chol = np.linalg.cholesky(cov)
        return chol @ gen.standard_normal(count)

    # ------------------------------------------------------------------ #
    def sample_mesh_perturbation(
        self,
        mesh: MZIMesh,
        model: UncertaintyModel,
        rng: RNGLike = None,
    ) -> MeshPerturbation:
        """Correlated counterpart of
        :func:`repro.variation.sampler.sample_mesh_perturbation`.

        Phase and splitter errors are drawn from the correlated field with
        the same marginal standard deviations as the independent model, so
        the two are directly comparable in the ablation bench.
        """
        gen = ensure_rng(rng)
        phase_std = model.phase_std
        splitter_std = model.splitter_std
        count = mesh.num_mzis
        return MeshPerturbation(
            delta_theta=self.sample_field(mesh, phase_std, gen) if phase_std else np.zeros(count),
            delta_phi=self.sample_field(mesh, phase_std, gen) if phase_std else np.zeros(count),
            delta_r_in=self.sample_field(mesh, splitter_std, gen) if splitter_std else np.zeros(count),
            delta_r_out=self.sample_field(mesh, splitter_std, gen) if splitter_std else np.zeros(count),
            delta_output_phase=None,
        )

    def empirical_correlation(self, mesh: MZIMesh, sigma: float, samples: int = 200, rng: RNGLike = None) -> float:
        """Mean empirical correlation between adjacent devices (diagnostic)."""
        gen = ensure_rng(rng)
        if mesh.num_mzis < 2:
            return 0.0
        fields = np.stack([self.sample_field(mesh, sigma, gen) for _ in range(samples)])
        corr = np.corrcoef(fields, rowvar=False)
        positions = np.array(mesh.grid_positions(), dtype=np.float64)
        pairs = []
        for i in range(mesh.num_mzis):
            for j in range(i + 1, mesh.num_mzis):
                if np.hypot(*(positions[i] - positions[j])) <= 1.5:
                    pairs.append(corr[i, j])
        return float(np.mean(pairs)) if pairs else 0.0
