"""Zonal partitioning of MZI meshes for localized-uncertainty studies (EXP 2).

The paper divides each unitary multiplier into zones of 2x2 MZIs on the
physical (column, row) grid; one selected zone receives elevated
uncertainties (``sigma = 0.1``) while the rest of the network stays at the
background level (``sigma = 0.05``).  :class:`ZoneGrid` produces the zone
membership masks and per-MZI sigma maps needed to reproduce that setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..mesh.mesh import MZIMesh


@dataclass(frozen=True)
class Zone:
    """A rectangular zone of MZIs on the mesh grid.

    Attributes
    ----------
    row_index, col_index:
        Zone coordinates (in zone units, not MZI units).
    mzi_indices:
        Propagation indices of the MZIs that fall inside the zone.
    """

    row_index: int
    col_index: int
    mzi_indices: Tuple[int, ...]

    @property
    def num_mzis(self) -> int:
        return len(self.mzi_indices)

    @property
    def is_empty(self) -> bool:
        return not self.mzi_indices


class ZoneGrid:
    """Partition of a mesh's physical layout into rectangular zones.

    Parameters
    ----------
    mesh:
        The mesh to partition.
    zone_rows, zone_cols:
        Zone extent in MZI grid units; the paper uses 2x2 zones.
    """

    def __init__(self, mesh: MZIMesh, zone_rows: int = 2, zone_cols: int = 2):
        if zone_rows < 1 or zone_cols < 1:
            raise ConfigurationError(f"zone dimensions must be >= 1, got {zone_rows}x{zone_cols}")
        self.mesh = mesh
        self.zone_rows = int(zone_rows)
        self.zone_cols = int(zone_cols)
        columns = mesh.columns()
        rows = mesh.modes()
        self.num_zone_rows = int(np.ceil(mesh.num_rows / zone_rows)) if mesh.num_mzis else 0
        self.num_zone_cols = int(np.ceil(mesh.num_columns / zone_cols)) if mesh.num_mzis else 0
        self._zones: List[Zone] = []
        for zr in range(self.num_zone_rows):
            for zc in range(self.num_zone_cols):
                members = np.flatnonzero(
                    (rows // zone_rows == zr) & (columns // zone_cols == zc)
                )
                self._zones.append(Zone(row_index=zr, col_index=zc, mzi_indices=tuple(int(i) for i in members)))

    # ------------------------------------------------------------------ #
    @property
    def num_zones(self) -> int:
        return len(self._zones)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(zone_rows, zone_cols)`` shape of the zone grid."""
        return (self.num_zone_rows, self.num_zone_cols)

    def zones(self, include_empty: bool = False) -> List[Zone]:
        """All zones, optionally dropping zones with no MZIs."""
        if include_empty:
            return list(self._zones)
        return [zone for zone in self._zones if not zone.is_empty]

    def __iter__(self) -> Iterator[Zone]:
        return iter(self.zones())

    def zone_at(self, row_index: int, col_index: int) -> Zone:
        """Zone at zone-grid coordinates ``(row_index, col_index)``."""
        for zone in self._zones:
            if zone.row_index == row_index and zone.col_index == col_index:
                return zone
        raise ConfigurationError(f"no zone at ({row_index}, {col_index})")

    def zone_of_mzi(self, mzi_index: int) -> Zone:
        """Zone containing the MZI with the given propagation index."""
        for zone in self._zones:
            if mzi_index in zone.mzi_indices:
                return zone
        raise ConfigurationError(f"MZI index {mzi_index} not found in any zone")

    # ------------------------------------------------------------------ #
    def mask_for_zone(self, zone: Zone) -> np.ndarray:
        """Boolean mask (over MZI indices) selecting the zone's devices."""
        mask = np.zeros(self.mesh.num_mzis, dtype=bool)
        mask[list(zone.mzi_indices)] = True
        return mask

    def sigma_map(
        self,
        zone: Zone,
        zone_sigma: float,
        background_sigma: float,
    ) -> np.ndarray:
        """Per-MZI normalized sigma array: ``zone_sigma`` inside, background outside.

        This is the EXP 2 configuration: the selected zone gets the elevated
        uncertainty while every other MZI keeps the background level.
        """
        if zone_sigma < 0 or background_sigma < 0:
            raise ConfigurationError("sigmas must be non-negative")
        sigmas = np.full(self.mesh.num_mzis, float(background_sigma))
        sigmas[list(zone.mzi_indices)] = float(zone_sigma)
        return sigmas

    def occupancy_matrix(self) -> np.ndarray:
        """Zone-grid matrix of MZI counts (rows x cols), for reporting."""
        matrix = np.zeros(self.shape, dtype=np.int64)
        for zone in self._zones:
            matrix[zone.row_index, zone.col_index] = zone.num_mzis
        return matrix
