"""Uncertainty models for phase shifters and beam splitters (paper §III-A).

The paper perturbs the tuned phase angles and the splitter amplitudes with
Gaussian noise:

* Phase shifters: ``theta, phi ~ N(nominal, sigma)`` with
  ``sigma = sigma_phs * 2*pi`` and ``sigma_phs`` swept over
  ``0.005 ... 0.15`` (the normalized quantity the paper calls
  ``sigma_PhS``).  The 0.21-radian error reported for mature fabrication
  processes corresponds to ``sigma_phs ~ 0.0334``.
* Beam splitters: ``r ~ N(1/sqrt(2), sigma)`` with
  ``sigma = sigma_bes / sqrt(2)`` and ``sigma_bes`` swept over the same
  normalized range (the paper calls it ``sigma_BeS``).

:class:`UncertaintyModel` bundles the two normalized sigmas plus switches
selecting which component family is perturbed — exactly the three cases of
EXP 1 (PhS only / BeS only / both).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import VariationModelError
from ..photonics import constants


@dataclass(frozen=True)
class UncertaintyModel:
    """Gaussian component-level uncertainty specification.

    Parameters
    ----------
    sigma_phs:
        Normalized phase-shifter sigma (``sigma / 2*pi``); the physical
        phase standard deviation is ``sigma_phs * 2*pi`` radians.
    sigma_bes:
        Normalized beam-splitter sigma (``sqrt(2) * sigma``); the physical
        reflectance standard deviation is ``sigma_bes / sqrt(2)``.
    perturb_phases:
        Whether phase shifters are perturbed.
    perturb_splitters:
        Whether beam splitters are perturbed.
    perturb_sigma_stage:
        Whether the diagonal (singular-value) attenuator MZIs are perturbed.
        EXP 2 keeps the Sigma stage error-free; EXP 1 perturbs every MZI.
    perturb_output_phases:
        Whether the output phase screens of the unitary meshes are
        perturbed (off by default: the paper counts only the 2 phase
        shifters per MZI).
    """

    sigma_phs: float = 0.0
    sigma_bes: float = 0.0
    perturb_phases: bool = True
    perturb_splitters: bool = True
    perturb_sigma_stage: bool = True
    perturb_output_phases: bool = False

    def __post_init__(self) -> None:
        if self.sigma_phs < 0:
            raise VariationModelError(f"sigma_phs must be non-negative, got {self.sigma_phs}")
        if self.sigma_bes < 0:
            raise VariationModelError(f"sigma_bes must be non-negative, got {self.sigma_bes}")

    # ------------------------------------------------------------------ #
    # constructors for the three EXP 1 cases
    # ------------------------------------------------------------------ #
    @classmethod
    def phase_only(cls, sigma_phs: float, **kwargs) -> "UncertaintyModel":
        """Uncertainties in phase shifters only (EXP 1 case i)."""
        return cls(sigma_phs=sigma_phs, sigma_bes=0.0, perturb_splitters=False, **kwargs)

    @classmethod
    def splitter_only(cls, sigma_bes: float, **kwargs) -> "UncertaintyModel":
        """Uncertainties in beam splitters only (EXP 1 case ii)."""
        return cls(sigma_phs=0.0, sigma_bes=sigma_bes, perturb_phases=False, **kwargs)

    @classmethod
    def both(cls, sigma: float, **kwargs) -> "UncertaintyModel":
        """Equal normalized uncertainties in PhS and BeS (EXP 1 case iii)."""
        return cls(sigma_phs=sigma, sigma_bes=sigma, **kwargs)

    #: The named component-uncertainty cases accepted by :meth:`for_case`.
    CASES = ("phs", "bes", "both")

    @classmethod
    def for_case(cls, case: str, sigma: float, **kwargs) -> "UncertaintyModel":
        """Build the model for one named EXP 1 case at one normalized sigma.

        Shared by the EXP 1 sweep and the yield sweep so the case names map
        to component families in exactly one place.
        """
        case = case.lower()
        if case == "phs":
            return cls.phase_only(sigma, **kwargs)
        if case == "bes":
            return cls.splitter_only(sigma, **kwargs)
        if case == "both":
            return cls.both(sigma, **kwargs)
        raise ValueError(f"unknown uncertainty case {case!r}; expected one of {cls.CASES}")

    @classmethod
    def mature_process(cls) -> "UncertaintyModel":
        """Uncertainty levels quoted for mature fabrication processes ([4], §III-A)."""
        return cls(
            sigma_phs=constants.MATURE_PROCESS_PHASE_ERROR_FRACTION,
            sigma_bes=constants.TYPICAL_SPLITTER_ERROR_FRACTION,
        )

    # ------------------------------------------------------------------ #
    # physical standard deviations
    # ------------------------------------------------------------------ #
    @property
    def phase_std(self) -> float:
        """Physical standard deviation of the phase errors [rad]."""
        return self.sigma_phs * 2.0 * np.pi if self.perturb_phases else 0.0

    @property
    def splitter_std(self) -> float:
        """Physical standard deviation of the reflectance errors."""
        return self.sigma_bes / np.sqrt(2.0) if self.perturb_splitters else 0.0

    def with_sigma(self, sigma_phs: float | None = None, sigma_bes: float | None = None) -> "UncertaintyModel":
        """Return a copy with new normalized sigmas (switches unchanged)."""
        return replace(
            self,
            sigma_phs=self.sigma_phs if sigma_phs is None else float(sigma_phs),
            sigma_bes=self.sigma_bes if sigma_bes is None else float(sigma_bes),
        )

    @property
    def is_null(self) -> bool:
        """True when the model injects no uncertainty at all."""
        return self.phase_std == 0.0 and self.splitter_std == 0.0
