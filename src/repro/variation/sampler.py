"""Sampling of uncertainty realizations for meshes, layers and networks.

The functions here draw one Monte Carlo realization of the Gaussian
uncertainty model (paper §III-A) for:

* a single :class:`~repro.mesh.mesh.MZIMesh` (layer-level studies, Fig. 3),
* a full :class:`~repro.mesh.svd_layer.PhotonicLinearLayer`
  (two unitary meshes + the Sigma attenuator bank), and
* a list of layers, i.e. the whole SPNN (system-level studies, Figs. 4-5).

Zonal experiments (EXP 2) use :func:`sample_mesh_perturbation` with a
per-MZI sigma override produced by :mod:`repro.variation.zones`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..mesh.diagonal import DiagonalPerturbation
from ..mesh.mesh import MeshPerturbation, MZIMesh
from ..mesh.svd_layer import LayerPerturbation, PhotonicLinearLayer
from ..utils.rng import RNGLike, ensure_rng
from .models import UncertaintyModel


def _phase_sigmas(model: UncertaintyModel, count: int, override: Optional[np.ndarray]) -> np.ndarray:
    if override is not None:
        override = np.asarray(override, dtype=np.float64)
        return override * 2.0 * np.pi if model.perturb_phases else np.zeros(count)
    return np.full(count, model.phase_std)


def _splitter_sigmas(model: UncertaintyModel, count: int, override: Optional[np.ndarray]) -> np.ndarray:
    if override is not None:
        override = np.asarray(override, dtype=np.float64)
        return override / np.sqrt(2.0) if model.perturb_splitters else np.zeros(count)
    return np.full(count, model.splitter_std)


def sample_mesh_perturbation(
    mesh: MZIMesh,
    model: UncertaintyModel,
    rng: RNGLike = None,
    sigma_phs_per_mzi: Optional[np.ndarray] = None,
    sigma_bes_per_mzi: Optional[np.ndarray] = None,
) -> MeshPerturbation:
    """Draw one uncertainty realization for a unitary mesh.

    Parameters
    ----------
    mesh:
        The mesh whose devices are perturbed.
    model:
        Component-level uncertainty model (which families, what sigmas).
    rng:
        Seed or generator.
    sigma_phs_per_mzi, sigma_bes_per_mzi:
        Optional per-MZI *normalized* sigma overrides (length
        ``mesh.num_mzis``).  Used by zonal experiments where different
        regions of the mesh have different uncertainty levels.
    """
    gen = ensure_rng(rng)
    count = mesh.num_mzis
    phase_sigma = _phase_sigmas(model, count, sigma_phs_per_mzi)
    splitter_sigma = _splitter_sigmas(model, count, sigma_bes_per_mzi)

    delta_theta = gen.normal(0.0, 1.0, count) * phase_sigma
    delta_phi = gen.normal(0.0, 1.0, count) * phase_sigma
    delta_r_in = gen.normal(0.0, 1.0, count) * splitter_sigma
    delta_r_out = gen.normal(0.0, 1.0, count) * splitter_sigma
    delta_output = (
        gen.normal(0.0, model.phase_std, mesh.n) if model.perturb_output_phases else None
    )
    return MeshPerturbation(
        delta_theta=delta_theta,
        delta_phi=delta_phi,
        delta_r_in=delta_r_in,
        delta_r_out=delta_r_out,
        delta_output_phase=delta_output,
    )


def sample_single_mzi_perturbation(
    mesh: MZIMesh,
    mzi_index: int,
    model: UncertaintyModel,
    rng: RNGLike = None,
) -> MeshPerturbation:
    """Perturb only one MZI of a mesh (the Fig. 3 layer-level study)."""
    gen = ensure_rng(rng)
    count = mesh.num_mzis
    if not 0 <= mzi_index < count:
        raise IndexError(f"mzi_index must be in [0, {count}), got {mzi_index}")
    perturbation = MeshPerturbation.none(count, mesh.n)
    if model.perturb_phases:
        perturbation.delta_theta[mzi_index] = gen.normal(0.0, model.phase_std)
        perturbation.delta_phi[mzi_index] = gen.normal(0.0, model.phase_std)
    if model.perturb_splitters:
        perturbation.delta_r_in[mzi_index] = gen.normal(0.0, model.splitter_std)
        perturbation.delta_r_out[mzi_index] = gen.normal(0.0, model.splitter_std)
    return perturbation


def sample_diagonal_perturbation(
    num_mzis: int,
    model: UncertaintyModel,
    rng: RNGLike = None,
) -> Optional[DiagonalPerturbation]:
    """Draw one uncertainty realization for a Sigma attenuator bank."""
    if not model.perturb_sigma_stage or num_mzis == 0:
        return None
    gen = ensure_rng(rng)
    phase_sigma = model.phase_std
    splitter_sigma = model.splitter_std
    return DiagonalPerturbation(
        delta_theta=gen.normal(0.0, phase_sigma, num_mzis) if phase_sigma else np.zeros(num_mzis),
        delta_phi=gen.normal(0.0, phase_sigma, num_mzis) if phase_sigma else np.zeros(num_mzis),
        delta_r_in=gen.normal(0.0, splitter_sigma, num_mzis) if splitter_sigma else np.zeros(num_mzis),
        delta_r_out=gen.normal(0.0, splitter_sigma, num_mzis) if splitter_sigma else np.zeros(num_mzis),
    )


def sample_layer_perturbation(
    layer: PhotonicLinearLayer,
    model: UncertaintyModel,
    rng: RNGLike = None,
) -> LayerPerturbation:
    """Draw one uncertainty realization for a full photonic linear layer."""
    gen = ensure_rng(rng)
    return LayerPerturbation(
        u=sample_mesh_perturbation(layer.mesh_u, model, gen),
        v=sample_mesh_perturbation(layer.mesh_v, model, gen),
        sigma=sample_diagonal_perturbation(layer.diagonal.num_mzis, model, gen),
    )


def sample_network_perturbation(
    layers: Sequence[PhotonicLinearLayer],
    model: UncertaintyModel,
    rng: RNGLike = None,
) -> List[LayerPerturbation]:
    """Draw one uncertainty realization for every layer of an SPNN."""
    gen = ensure_rng(rng)
    return [sample_layer_perturbation(layer, model, gen) for layer in layers]
