"""Sampling of uncertainty realizations for meshes, layers and networks.

The functions here draw one Monte Carlo realization of the Gaussian
uncertainty model (paper §III-A) for:

* a single :class:`~repro.mesh.mesh.MZIMesh` (layer-level studies, Fig. 3),
* a full :class:`~repro.mesh.svd_layer.PhotonicLinearLayer`
  (two unitary meshes + the Sigma attenuator bank), and
* a list of layers, i.e. the whole SPNN (system-level studies, Figs. 4-5).

Zonal experiments (EXP 2) use :func:`sample_mesh_perturbation` with a
per-MZI sigma override produced by :mod:`repro.variation.zones`.

The ``*_batch`` variants draw ``B`` realizations at once (one per child
generator) and stack them with a leading batch axis, e.g. ``(B, num_mzis)``
arrays for a mesh.  Realization ``b`` is drawn from ``generators[b]`` with
exactly the same calls as the single-realization sampler, so given the same
spawned child streams the batched draws are bit-identical to the loop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..arrays import active_array_backend
from ..mesh.diagonal import DiagonalPerturbation, DiagonalPerturbationBatch
from ..mesh.mesh import MeshPerturbation, MeshPerturbationBatch, MZIMesh
from ..mesh.svd_layer import LayerPerturbation, LayerPerturbationBatch, PhotonicLinearLayer
from ..utils.rng import RNGLike, ensure_rng
from .models import UncertaintyModel


def _phase_sigmas(model: UncertaintyModel, count: int, override: Optional[np.ndarray]):
    """Per-MZI phase sigmas: an array for overrides, a cheap scalar otherwise."""
    if override is not None:
        override = np.asarray(override, dtype=np.float64)
        return override * 2.0 * np.pi if model.perturb_phases else np.zeros(count)
    return model.phase_std


def _splitter_sigmas(model: UncertaintyModel, count: int, override: Optional[np.ndarray]):
    """Per-MZI splitter sigmas: an array for overrides, a cheap scalar otherwise."""
    if override is not None:
        override = np.asarray(override, dtype=np.float64)
        return override / np.sqrt(2.0) if model.perturb_splitters else np.zeros(count)  # host-only path
    return model.splitter_std


def sample_mesh_perturbation(
    mesh: MZIMesh,
    model: UncertaintyModel,
    rng: RNGLike = None,
    sigma_phs_per_mzi: Optional[np.ndarray] = None,
    sigma_bes_per_mzi: Optional[np.ndarray] = None,
) -> MeshPerturbation:
    """Draw one uncertainty realization for a unitary mesh.

    Parameters
    ----------
    mesh:
        The mesh whose devices are perturbed.
    model:
        Component-level uncertainty model (which families, what sigmas).
    rng:
        Seed or generator.
    sigma_phs_per_mzi, sigma_bes_per_mzi:
        Optional per-MZI *normalized* sigma overrides (length
        ``mesh.num_mzis``).  Used by zonal experiments where different
        regions of the mesh have different uncertainty levels.
    """
    gen = ensure_rng(rng)
    count = mesh.num_mzis
    phase_sigma = _phase_sigmas(model, count, sigma_phs_per_mzi)
    splitter_sigma = _splitter_sigmas(model, count, sigma_bes_per_mzi)

    # One standard-normal draw for all device families.  The generator
    # consumes its stream exactly as the historical per-family ``normal``
    # calls did (chunked standard-normal draws concatenate, and
    # ``normal(0, s, n)`` equals ``standard_normal(n) * s`` bit for bit), so
    # sampled values are unchanged while the Python/NumPy call count drops.
    extra = mesh.n if model.perturb_output_phases else 0
    draws = gen.standard_normal(4 * count + extra)
    delta_output = draws[4 * count :] * model.phase_std if model.perturb_output_phases else None
    return MeshPerturbation(
        delta_theta=draws[0:count] * phase_sigma,
        delta_phi=draws[count : 2 * count] * phase_sigma,
        delta_r_in=draws[2 * count : 3 * count] * splitter_sigma,
        delta_r_out=draws[3 * count : 4 * count] * splitter_sigma,
        delta_output_phase=delta_output,
    )


def sample_single_mzi_perturbation(
    mesh: MZIMesh,
    mzi_index: int,
    model: UncertaintyModel,
    rng: RNGLike = None,
) -> MeshPerturbation:
    """Perturb only one MZI of a mesh (the Fig. 3 layer-level study)."""
    gen = ensure_rng(rng)
    count = mesh.num_mzis
    if not 0 <= mzi_index < count:
        raise IndexError(f"mzi_index must be in [0, {count}), got {mzi_index}")
    perturbation = MeshPerturbation.none(count, mesh.n)
    if model.perturb_phases:
        perturbation.delta_theta[mzi_index] = gen.normal(0.0, model.phase_std)
        perturbation.delta_phi[mzi_index] = gen.normal(0.0, model.phase_std)
    if model.perturb_splitters:
        perturbation.delta_r_in[mzi_index] = gen.normal(0.0, model.splitter_std)
        perturbation.delta_r_out[mzi_index] = gen.normal(0.0, model.splitter_std)
    return perturbation


def sample_diagonal_perturbation(
    num_mzis: int,
    model: UncertaintyModel,
    rng: RNGLike = None,
) -> Optional[DiagonalPerturbation]:
    """Draw one uncertainty realization for a Sigma attenuator bank."""
    if not model.perturb_sigma_stage or num_mzis == 0:
        return None
    gen = ensure_rng(rng)
    phase_sigma = model.phase_std
    splitter_sigma = model.splitter_std
    # One standard-normal draw covering only the active families, consuming
    # the stream exactly as the historical per-family ``normal`` calls did
    # (disabled families drew nothing).
    num_phase = 2 * num_mzis if phase_sigma else 0
    num_splitter = 2 * num_mzis if splitter_sigma else 0
    draws = gen.standard_normal(num_phase + num_splitter)
    if phase_sigma:
        delta_theta = draws[0:num_mzis] * phase_sigma
        delta_phi = draws[num_mzis : 2 * num_mzis] * phase_sigma
    else:
        delta_theta, delta_phi = np.zeros(num_mzis), np.zeros(num_mzis)
    if splitter_sigma:
        delta_r_in = draws[num_phase : num_phase + num_mzis] * splitter_sigma
        delta_r_out = draws[num_phase + num_mzis :] * splitter_sigma
    else:
        delta_r_in, delta_r_out = np.zeros(num_mzis), np.zeros(num_mzis)
    return DiagonalPerturbation(
        delta_theta=delta_theta,
        delta_phi=delta_phi,
        delta_r_in=delta_r_in,
        delta_r_out=delta_r_out,
    )


def sample_layer_perturbation(
    layer: PhotonicLinearLayer,
    model: UncertaintyModel,
    rng: RNGLike = None,
) -> LayerPerturbation:
    """Draw one uncertainty realization for a full photonic linear layer."""
    gen = ensure_rng(rng)
    return LayerPerturbation(
        u=sample_mesh_perturbation(layer.mesh_u, model, gen),
        v=sample_mesh_perturbation(layer.mesh_v, model, gen),
        sigma=sample_diagonal_perturbation(layer.diagonal.num_mzis, model, gen),
    )


def sample_network_perturbation(
    layers: Sequence[PhotonicLinearLayer],
    model: UncertaintyModel,
    rng: RNGLike = None,
) -> List[LayerPerturbation]:
    """Draw one uncertainty realization for every layer of an SPNN."""
    gen = ensure_rng(rng)
    return [sample_layer_perturbation(layer, model, gen) for layer in layers]


# --------------------------------------------------------------------------- #
# batched sampling (leading Monte Carlo axis B, one child stream per row)
# --------------------------------------------------------------------------- #


def _draw_rows(
    generators: Sequence[np.random.Generator], length: int, workspace=None, key=None
) -> np.ndarray:
    """A ``(B, length)`` standard-normal matrix, row ``b`` drawn from stream ``b``.

    ``standard_normal(out=row)`` consumes each stream exactly like a plain
    ``standard_normal(length)`` call, so the rows are bit-identical to the
    per-iteration draws of the looped samplers while avoiding per-field
    array allocations and Python overhead.  A ``workspace`` additionally
    recycles the draw buffer itself across calls.

    Randomness never originates on a device: under a device array backend
    the draws still consume the NumPy streams on the host (into a staging
    buffer) and are then transferred — the namespace-aware RNG shim of
    :meth:`repro.arrays.ArrayBackend.standard_normal_rows` — so every
    backend sees the *same sampled values* at a fixed seed.
    """
    backend = active_array_backend()
    shape = (len(generators), length)
    out = workspace.buffer((key, "draws"), shape, np.float64) if workspace is not None else None
    if backend.is_host:
        return backend.standard_normal_rows(generators, length, out=out)
    staging = (
        workspace.host_buffer((key, "draws/staging"), shape, np.float64)
        if workspace is not None
        else None
    )
    return backend.standard_normal_rows(generators, length, out=out, host_staging=staging)


def _scaled_field(draws, sigma, workspace, key):
    """``draws * sigma`` written into a reusable buffer when a workspace is given.

    ``sigma`` may be a scalar or a per-device array (moved into the draws'
    namespace as needed); the multiply is the same ufunc either way, so the
    values are bit-identical to the plain product.
    """
    backend = active_array_backend()
    xp = backend.xp
    if isinstance(sigma, np.ndarray) and not backend.is_host:
        sigma = xp.asarray(sigma)
    if workspace is None:
        return draws * sigma
    out = workspace.buffer(key, draws.shape, np.float64)
    xp.multiply(draws, sigma, out=out)
    return out


def _zero_field(shape, workspace, key):
    if workspace is None:
        return active_array_backend().xp.zeros(shape)
    out = workspace.buffer(key, shape, np.float64)
    out[...] = 0.0
    return out


def mesh_batch_draw_length(mesh: MZIMesh, model: UncertaintyModel) -> int:
    """Standard-normal draws one mesh realization consumes from its stream.

    The draws→fields mapping of :func:`mesh_perturbation_batch_from_draws`
    slices exactly this many values per row; temporal perturbation
    processes (:mod:`repro.variation.process`) use it to size their state
    matrices so their per-step stream consumption matches the i.i.d.
    sampler draw for draw.
    """
    extra = mesh.n if model.perturb_output_phases else 0
    return 4 * mesh.num_mzis + extra


def mesh_perturbation_batch_from_draws(
    mesh: MZIMesh,
    model: UncertaintyModel,
    draws,
    sigma_phs_per_mzi: Optional[np.ndarray] = None,
    sigma_bes_per_mzi: Optional[np.ndarray] = None,
    workspace=None,
    workspace_key=None,
    phase_std_rows: Optional[np.ndarray] = None,
    splitter_std_rows: Optional[np.ndarray] = None,
) -> MeshPerturbationBatch:
    """Map a ``(B, mesh_batch_draw_length)`` standard-normal matrix to fields.

    This is the single draws→physical-fields mapping shared by the i.i.d.
    batch sampler and the temporal perturbation processes: slice the
    concatenated draw matrix into the device families and scale each by its
    sigma.  Applying it to draws produced by :func:`_draw_rows` reproduces
    :func:`sample_mesh_perturbation_batch` bit for bit; applying it to a
    temporally evolved state matrix yields the perturbation that state
    represents under ``model``.

    ``phase_std_rows``/``splitter_std_rows`` optionally carry *per-row
    physical* standard deviations of shape ``(B, 1)`` — the sigma-folded
    sweeps stack realizations of several uncertainty levels along the batch
    axis and scale each row by its own level's actual stds (scaling a
    normalized draw by the physical std is the one float multiply the
    scalar path performs, so per-row values are bit-identical to running
    each level separately).  ``model`` still supplies the family gating,
    which must be uniform across the folded rows (same case, all
    non-null); the per-MZI zonal overrides are mutually exclusive with the
    per-row columns.
    """
    count = mesh.num_mzis
    if phase_std_rows is not None or splitter_std_rows is not None:
        if sigma_phs_per_mzi is not None or sigma_bes_per_mzi is not None:
            raise ValueError("per-row std columns and per-MZI sigma overrides are mutually exclusive")
    phase_sigma = _phase_sigmas(model, count, sigma_phs_per_mzi)
    splitter_sigma = _splitter_sigmas(model, count, sigma_bes_per_mzi)
    if phase_std_rows is not None and model.perturb_phases:
        phase_sigma = phase_std_rows
    if splitter_std_rows is not None and model.perturb_splitters:
        splitter_sigma = splitter_std_rows
    extra = mesh.n if model.perturb_output_phases else 0
    return MeshPerturbationBatch(
        delta_theta=_scaled_field(
            draws[:, 0:count], phase_sigma, workspace, (workspace_key, "delta_theta")
        ),
        delta_phi=_scaled_field(
            draws[:, count : 2 * count], phase_sigma, workspace, (workspace_key, "delta_phi")
        ),
        delta_r_in=_scaled_field(
            draws[:, 2 * count : 3 * count], splitter_sigma, workspace, (workspace_key, "delta_r_in")
        ),
        delta_r_out=_scaled_field(
            draws[:, 3 * count : 4 * count], splitter_sigma, workspace, (workspace_key, "delta_r_out")
        ),
        delta_output_phase=_scaled_field(
            draws[:, 4 * count :],
            phase_std_rows if phase_std_rows is not None else model.phase_std,
            workspace,
            (workspace_key, "delta_output_phase"),
        )
        if extra
        else None,
    )


def sample_mesh_perturbation_batch(
    mesh: MZIMesh,
    model: UncertaintyModel,
    generators: Sequence[np.random.Generator],
    sigma_phs_per_mzi: Optional[np.ndarray] = None,
    sigma_bes_per_mzi: Optional[np.ndarray] = None,
    workspace=None,
    workspace_key=None,
    phase_std_rows: Optional[np.ndarray] = None,
    splitter_std_rows: Optional[np.ndarray] = None,
) -> MeshPerturbationBatch:
    """Draw ``B = len(generators)`` mesh realizations as ``(B, num_mzis)`` arrays.

    Row ``b`` consumes ``generators[b]`` exactly as
    :func:`sample_mesh_perturbation` would, so the stacked result is
    bit-identical to sampling the realizations one at a time from the same
    streams.  ``workspace``/``workspace_key`` (a
    :class:`~repro.training.workspace.VectorizedWorkspace` plus a key
    unique to this mesh within the evaluation) back the draw buffer and
    every perturbation field with reusable arena buffers; the batch is
    then valid until the next workspace-backed draw under the same key.
    ``phase_std_rows``/``splitter_std_rows`` optionally scale each row by
    its own physical stds (sigma-folded sweeps; see
    :func:`mesh_perturbation_batch_from_draws`).
    """
    generators = list(generators)
    if not generators:
        raise ValueError("sample_mesh_perturbation_batch requires at least one generator")
    draws = _draw_rows(generators, mesh_batch_draw_length(mesh, model), workspace, workspace_key)
    return mesh_perturbation_batch_from_draws(
        mesh,
        model,
        draws,
        sigma_phs_per_mzi=sigma_phs_per_mzi,
        sigma_bes_per_mzi=sigma_bes_per_mzi,
        workspace=workspace,
        workspace_key=workspace_key,
        phase_std_rows=phase_std_rows,
        splitter_std_rows=splitter_std_rows,
    )


def diagonal_batch_draw_length(num_mzis: int, model: UncertaintyModel) -> Optional[int]:
    """Draws one Sigma-bank realization consumes, or ``None`` when inactive.

    ``None`` mirrors the gating of :func:`sample_diagonal_perturbation`:
    a disabled Sigma stage (or an empty bank) draws nothing at all and
    yields no perturbation object.
    """
    if not model.perturb_sigma_stage or num_mzis == 0:
        return None
    num_phase = 2 * num_mzis if model.phase_std else 0
    num_splitter = 2 * num_mzis if model.splitter_std else 0
    return num_phase + num_splitter


def diagonal_perturbation_batch_from_draws(
    num_mzis: int,
    model: UncertaintyModel,
    draws,
    workspace=None,
    workspace_key=None,
    phase_std_rows: Optional[np.ndarray] = None,
    splitter_std_rows: Optional[np.ndarray] = None,
) -> DiagonalPerturbationBatch:
    """Map a ``(B, diagonal_batch_draw_length)`` draw matrix to Sigma fields.

    The caller is responsible for the active-stage gating
    (:func:`diagonal_batch_draw_length` returning ``None`` means no draws
    and no perturbation); given the draws this applies the same
    slice-and-scale mapping as :func:`sample_diagonal_perturbation_batch`.
    ``phase_std_rows``/``splitter_std_rows`` optionally scale each row by
    its own physical stds while ``model``'s scalar stds keep supplying the
    family gating (sigma-folded sweeps; see
    :func:`mesh_perturbation_batch_from_draws`).
    """
    phase_sigma = model.phase_std
    splitter_sigma = model.splitter_std
    num_phase = 2 * num_mzis if phase_sigma else 0
    phase_scale = phase_std_rows if phase_std_rows is not None and phase_sigma else phase_sigma
    splitter_scale = (
        splitter_std_rows
        if splitter_std_rows is not None and splitter_sigma
        else splitter_sigma
    )
    batch = draws.shape[0]
    if phase_sigma:
        delta_theta = _scaled_field(
            draws[:, 0:num_mzis], phase_scale, workspace, (workspace_key, "delta_theta")
        )
        delta_phi = _scaled_field(
            draws[:, num_mzis : 2 * num_mzis], phase_scale, workspace, (workspace_key, "delta_phi")
        )
    else:
        delta_theta = _zero_field((batch, num_mzis), workspace, (workspace_key, "delta_theta"))
        delta_phi = _zero_field((batch, num_mzis), workspace, (workspace_key, "delta_phi"))
    if splitter_sigma:
        delta_r_in = _scaled_field(
            draws[:, num_phase : num_phase + num_mzis],
            splitter_scale,
            workspace,
            (workspace_key, "delta_r_in"),
        )
        delta_r_out = _scaled_field(
            draws[:, num_phase + num_mzis :],
            splitter_scale,
            workspace,
            (workspace_key, "delta_r_out"),
        )
    else:
        delta_r_in = _zero_field((batch, num_mzis), workspace, (workspace_key, "delta_r_in"))
        delta_r_out = _zero_field((batch, num_mzis), workspace, (workspace_key, "delta_r_out"))
    return DiagonalPerturbationBatch(
        delta_theta=delta_theta,
        delta_phi=delta_phi,
        delta_r_in=delta_r_in,
        delta_r_out=delta_r_out,
    )


def sample_diagonal_perturbation_batch(
    num_mzis: int,
    model: UncertaintyModel,
    generators: Sequence[np.random.Generator],
    workspace=None,
    workspace_key=None,
    phase_std_rows: Optional[np.ndarray] = None,
    splitter_std_rows: Optional[np.ndarray] = None,
) -> Optional[DiagonalPerturbationBatch]:
    """Draw ``B`` Sigma-bank realizations as ``(B, num_mzis)`` arrays."""
    length = diagonal_batch_draw_length(num_mzis, model)
    if length is None:
        return None
    generators = list(generators)
    if not generators:
        raise ValueError("sample_diagonal_perturbation_batch requires at least one generator")
    draws = _draw_rows(generators, length, workspace, workspace_key)
    return diagonal_perturbation_batch_from_draws(
        num_mzis,
        model,
        draws,
        workspace=workspace,
        workspace_key=workspace_key,
        phase_std_rows=phase_std_rows,
        splitter_std_rows=splitter_std_rows,
    )


def sample_layer_perturbation_batch(
    layer: PhotonicLinearLayer,
    model: UncertaintyModel,
    generators: Sequence[np.random.Generator],
    workspace=None,
    workspace_key=None,
    phase_std_rows: Optional[np.ndarray] = None,
    splitter_std_rows: Optional[np.ndarray] = None,
) -> LayerPerturbationBatch:
    """Draw ``B`` realizations for a full photonic linear layer.

    Each generator is consumed in the same stage order (U mesh, V mesh,
    Sigma bank) as :func:`sample_layer_perturbation`; only the iteration
    over generators is hoisted inside each stage, which does not change any
    stream's own draw sequence.  The optional workspace key is extended per
    stage so the three stages' buffers never alias.
    """
    generators = list(generators)
    return LayerPerturbationBatch(
        u=sample_mesh_perturbation_batch(
            layer.mesh_u, model, generators,
            workspace=workspace, workspace_key=(workspace_key, "u"),
            phase_std_rows=phase_std_rows, splitter_std_rows=splitter_std_rows,
        ),
        v=sample_mesh_perturbation_batch(
            layer.mesh_v, model, generators,
            workspace=workspace, workspace_key=(workspace_key, "v"),
            phase_std_rows=phase_std_rows, splitter_std_rows=splitter_std_rows,
        ),
        sigma=sample_diagonal_perturbation_batch(
            layer.diagonal.num_mzis, model, generators,
            workspace=workspace, workspace_key=(workspace_key, "sigma"),
            phase_std_rows=phase_std_rows, splitter_std_rows=splitter_std_rows,
        ),
    )


def sample_network_perturbation_batch(
    layers: Sequence[PhotonicLinearLayer],
    model: UncertaintyModel,
    generators: Sequence[np.random.Generator],
    workspace=None,
    phase_std_rows: Optional[np.ndarray] = None,
    splitter_std_rows: Optional[np.ndarray] = None,
) -> List[Optional[LayerPerturbationBatch]]:
    """Draw ``B`` realizations for every layer of an SPNN, stacked per layer.

    Equivalent to stacking ``[sample_network_perturbation(layers, model, g)
    for g in generators]`` — generator ``b`` is consumed exactly as in the
    looped path (layer by layer, stage by stage), so the batch reproduces
    the loop sample for sample.  With a ``workspace`` the draw and field
    buffers are recycled across calls (keyed per layer and stage),
    eliminating the per-chunk sampling allocations of the batched Monte
    Carlo engine; values are bit-identical either way.

    ``phase_std_rows``/``splitter_std_rows`` (shape ``(B, 1)``) optionally
    scale each row by its own physical stds — the sigma-folded sweeps
    stack realizations of several uncertainty levels along the batch axis;
    ``model`` must then carry the (uniform) family gating of the fold.
    """
    generators = list(generators)
    return [
        sample_layer_perturbation_batch(
            layer, model, generators,
            workspace=workspace, workspace_key=("network-sample", index),
            phase_std_rows=phase_std_rows, splitter_std_rows=splitter_std_rows,
        )
        for index, layer in enumerate(layers)
    ]
