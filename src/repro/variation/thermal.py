"""Thermal-crosstalk model between neighbouring phase shifters.

The paper attributes part of the phase uncertainty to mutual thermal
crosstalk between thermo-optic actuators placed in proximity (§III-A,
refs. [8], [10]) but folds it into the Gaussian phase-error model.  This
module provides an explicit, physically-motivated crosstalk model used for
the ablation study: heater ``j`` driving temperature ``dT_j`` leaks a
fraction ``c(d_ij)`` of that temperature into waveguide ``i``, where the
coupling decays exponentially with the grid distance between the devices::

    c(d) = coupling * exp(-d / decay_length)

The induced phase error on each device follows from the thermo-optic
relation of :mod:`repro.photonics.phase_shifter`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import VariationModelError
from ..mesh.mesh import MeshPerturbation, MZIMesh
from ..photonics.phase_shifter import phase_from_temperature, temperature_for_phase


@dataclass(frozen=True)
class ThermalCrosstalkModel:
    """Exponential-decay thermal-coupling model on the mesh grid.

    Parameters
    ----------
    coupling:
        Fractional temperature leakage to a device at distance 1 grid unit
        (0 disables crosstalk; typical experimental values are a few
        percent).
    decay_length:
        Exponential decay length of the coupling, in grid units.
    pitch:
        Physical center-to-center spacing between adjacent mesh sites [m];
        retained for reporting, the coupling itself is expressed on the
        grid.
    max_distance:
        Couplings beyond this grid distance are ignored (keeps the coupling
        matrix sparse in spirit and the model local).
    """

    coupling: float = 0.02
    decay_length: float = 1.0
    pitch: float = 100e-6
    max_distance: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coupling < 1.0:
            raise VariationModelError(f"coupling must be in [0, 1), got {self.coupling}")
        if self.decay_length <= 0:
            raise VariationModelError(f"decay_length must be positive, got {self.decay_length}")
        if self.pitch <= 0:
            raise VariationModelError(f"pitch must be positive, got {self.pitch}")
        if self.max_distance <= 0:
            raise VariationModelError(f"max_distance must be positive, got {self.max_distance}")

    # ------------------------------------------------------------------ #
    def coupling_coefficient(self, distance: float) -> float:
        """Temperature-leakage fraction at a given grid distance."""
        if distance <= 0:
            return 0.0
        if distance > self.max_distance:
            return 0.0
        return self.coupling * float(np.exp(-(distance - 1.0) / self.decay_length))

    def coupling_matrix(self, mesh: MZIMesh) -> np.ndarray:
        """Device-to-device coupling matrix over the mesh's MZIs.

        Entry ``(i, j)`` is the fraction of heater ``j``'s drive temperature
        that reaches device ``i`` (zero on the diagonal).
        """
        positions = np.array(mesh.grid_positions(), dtype=np.float64)
        count = len(positions)
        matrix = np.zeros((count, count), dtype=np.float64)
        for i in range(count):
            deltas = positions - positions[i]
            distances = np.hypot(deltas[:, 0], deltas[:, 1])
            for j in range(count):
                if i == j:
                    continue
                matrix[i, j] = self.coupling_coefficient(float(distances[j]))
        return matrix

    # ------------------------------------------------------------------ #
    def induced_phase_errors(self, mesh: MZIMesh) -> tuple[np.ndarray, np.ndarray]:
        """Systematic phase errors induced by crosstalk from the tuned phases.

        Both phase shifters of an MZI share the device's grid site, so the
        drive temperature of device ``j`` is taken as the sum of its two
        shifter temperatures, and the leaked temperature perturbs both
        shifters of device ``i`` equally.

        Returns
        -------
        (delta_theta, delta_phi):
            Arrays of induced phase errors [rad], indexed by MZI.
        """
        thetas = mesh.thetas()
        phis = mesh.phis()
        drive_temps = np.array(
            [temperature_for_phase(t) + temperature_for_phase(p) for t, p in zip(thetas, phis)]
        )
        coupling = self.coupling_matrix(mesh)
        leaked = coupling @ drive_temps
        induced = np.array([phase_from_temperature(dt) for dt in leaked])
        return induced.copy(), induced.copy()

    def perturbation(self, mesh: MZIMesh) -> MeshPerturbation:
        """The deterministic crosstalk-induced :class:`MeshPerturbation`."""
        delta_theta, delta_phi = self.induced_phase_errors(mesh)
        return MeshPerturbation(delta_theta=delta_theta, delta_phi=delta_phi)

    def phase_error_statistics(self, mesh: MZIMesh) -> dict[str, float]:
        """Summary of the induced phase errors (mean/max/std, in radians)."""
        delta_theta, _ = self.induced_phase_errors(mesh)
        if delta_theta.size == 0:
            return {"mean": 0.0, "max": 0.0, "std": 0.0}
        return {
            "mean": float(np.mean(delta_theta)),
            "max": float(np.max(delta_theta)),
            "std": float(np.std(delta_theta)),
        }
