"""Procedural synthetic handwritten-digit dataset (MNIST substitute).

The paper evaluates its SPNN on MNIST.  This environment has no network
access, so an equivalent corpus is generated procedurally: each digit class
is defined by a stroke skeleton (polylines and ellipses in a normalized
coordinate frame), rendered onto a 28x28 grid with per-sample random affine
jitter, stroke-width variation, blur and pixel noise.  The result has the
same shape, value range and class structure as MNIST, so every downstream
code path of the reproduction — FFT feature extraction, complex-valued
training, SVD-to-mesh compilation and Monte Carlo uncertainty analysis —
is exercised identically.  The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.ndimage import gaussian_filter

from ..exceptions import ConfigurationError
from ..utils.rng import RNGLike, ensure_rng

#: Image side length, matching MNIST.
IMAGE_SIZE = 28

#: Number of digit classes.
NUM_CLASSES = 10

Point = Tuple[float, float]
Stroke = List[Point]


def _ellipse(cx: float, cy: float, rx: float, ry: float, start: float = 0.0, stop: float = 2 * np.pi, points: int = 40) -> Stroke:
    """Polyline approximation of an ellipse arc in the unit square."""
    angles = np.linspace(start, stop, points)
    return [(cx + rx * np.cos(a), cy + ry * np.sin(a)) for a in angles]


def _line(p0: Point, p1: Point, points: int = 12) -> Stroke:
    """Polyline with ``points`` samples between two endpoints."""
    ts = np.linspace(0.0, 1.0, points)
    return [(p0[0] + t * (p1[0] - p0[0]), p0[1] + t * (p1[1] - p0[1])) for t in ts]


def _digit_strokes() -> Dict[int, List[Stroke]]:
    """Stroke skeletons for the ten digits in (x, y) with y increasing downward."""
    strokes: Dict[int, List[Stroke]] = {
        0: [_ellipse(0.5, 0.5, 0.28, 0.38)],
        1: [_line((0.38, 0.3), (0.55, 0.15)), _line((0.55, 0.15), (0.55, 0.85))],
        2: [
            _ellipse(0.5, 0.33, 0.26, 0.2, start=np.pi, stop=2.35 * np.pi, points=30),
            _line((0.72, 0.45), (0.28, 0.85)),
            _line((0.28, 0.85), (0.75, 0.85)),
        ],
        3: [
            _ellipse(0.48, 0.33, 0.24, 0.18, start=0.75 * np.pi, stop=2.4 * np.pi, points=30),
            _ellipse(0.48, 0.67, 0.26, 0.2, start=1.6 * np.pi, stop=3.25 * np.pi, points=30),
        ],
        4: [
            _line((0.62, 0.15), (0.3, 0.62)),
            _line((0.3, 0.62), (0.78, 0.62)),
            _line((0.62, 0.15), (0.62, 0.88)),
        ],
        5: [
            _line((0.72, 0.15), (0.32, 0.15)),
            _line((0.32, 0.15), (0.3, 0.48)),
            _ellipse(0.5, 0.65, 0.24, 0.22, start=1.35 * np.pi, stop=2.85 * np.pi, points=30),
        ],
        6: [
            _line((0.62, 0.13), (0.36, 0.5)),
            _ellipse(0.5, 0.66, 0.22, 0.2),
        ],
        7: [
            _line((0.28, 0.16), (0.74, 0.16)),
            _line((0.74, 0.16), (0.42, 0.86)),
        ],
        8: [
            _ellipse(0.5, 0.32, 0.2, 0.17),
            _ellipse(0.5, 0.68, 0.24, 0.2),
        ],
        9: [
            _ellipse(0.5, 0.34, 0.22, 0.2),
            _line((0.7, 0.36), (0.62, 0.87)),
        ],
    }
    return strokes


#: Module-level cache of the digit skeletons.
_DIGIT_STROKES = _digit_strokes()


@dataclass(frozen=True)
class DigitStyle:
    """Per-sample rendering style parameters.

    Attributes mirror common sources of intra-class variation in
    handwritten digits: position, scale, slant, stroke thickness and blur.
    """

    dx: float = 0.0
    dy: float = 0.0
    scale: float = 1.0
    rotation: float = 0.0
    shear: float = 0.0
    stroke_width: float = 1.4
    blur: float = 0.6
    noise: float = 0.02

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Apply the affine style transform to ``(n, 2)`` unit-square points."""
        centered = points - 0.5
        cos_r, sin_r = np.cos(self.rotation), np.sin(self.rotation)
        rot = np.array([[cos_r, -sin_r], [sin_r, cos_r]])
        shear = np.array([[1.0, self.shear], [0.0, 1.0]])
        transformed = centered @ (rot @ shear).T * self.scale
        return transformed + 0.5 + np.array([self.dx, self.dy])


def random_style(rng: RNGLike = None, variability: float = 1.0) -> DigitStyle:
    """Draw a random :class:`DigitStyle`.

    ``variability`` scales every jitter amplitude; 0 gives the canonical
    glyph, 1 the default MNIST-like spread.
    """
    gen = ensure_rng(rng)
    v = float(variability)
    return DigitStyle(
        dx=float(gen.normal(0.0, 0.04 * v)),
        dy=float(gen.normal(0.0, 0.04 * v)),
        scale=float(1.0 + gen.normal(0.0, 0.08 * v)),
        rotation=float(gen.normal(0.0, 0.12 * v)),
        shear=float(gen.normal(0.0, 0.15 * v)),
        stroke_width=float(np.clip(1.4 + gen.normal(0.0, 0.35 * v), 0.8, 2.6)),
        blur=float(np.clip(0.6 + gen.normal(0.0, 0.15 * v), 0.3, 1.2)),
        noise=float(np.clip(0.02 * v, 0.0, 0.08)),
    )


def render_digit(
    digit: int,
    style: DigitStyle | None = None,
    rng: RNGLike = None,
    image_size: int = IMAGE_SIZE,
) -> np.ndarray:
    """Render one digit as a ``(image_size, image_size)`` float image in [0, 1].

    Parameters
    ----------
    digit:
        Class label in ``0..9``.
    style:
        Rendering style; drawn randomly from ``rng`` when omitted.
    rng:
        Seed/generator used for the style and the additive pixel noise.
    image_size:
        Output resolution (28 matches MNIST).
    """
    if digit not in _DIGIT_STROKES:
        raise ConfigurationError(f"digit must be in 0..9, got {digit}")
    gen = ensure_rng(rng)
    if style is None:
        style = random_style(gen)

    canvas = np.zeros((image_size, image_size), dtype=np.float64)
    for stroke in _DIGIT_STROKES[digit]:
        points = style.transform(np.asarray(stroke, dtype=np.float64))
        # Densify the polyline so the rasterization has no gaps.
        dense: List[np.ndarray] = []
        for start, stop in zip(points[:-1], points[1:]):
            seg_len = np.hypot(*(stop - start))
            samples = max(int(seg_len * image_size * 2), 2)
            ts = np.linspace(0.0, 1.0, samples)
            dense.append(start[None, :] + ts[:, None] * (stop - start)[None, :])
        for chunk in dense:
            cols = chunk[:, 0] * (image_size - 1)
            rows = chunk[:, 1] * (image_size - 1)
            valid = (cols >= 0) & (cols <= image_size - 1) & (rows >= 0) & (rows <= image_size - 1)
            cols, rows = cols[valid], rows[valid]
            canvas[np.round(rows).astype(int), np.round(cols).astype(int)] = 1.0

    # Thicken the strokes and soften edges.
    canvas = gaussian_filter(canvas, sigma=style.stroke_width * 0.45)
    if canvas.max() > 0:
        canvas = canvas / canvas.max()
    canvas = np.clip(canvas * 1.6, 0.0, 1.0)
    canvas = gaussian_filter(canvas, sigma=style.blur * 0.5)
    if canvas.max() > 0:
        canvas = canvas / canvas.max()
    if style.noise > 0:
        canvas = np.clip(canvas + gen.normal(0.0, style.noise, canvas.shape), 0.0, 1.0)
    return canvas


@dataclass
class Dataset:
    """A simple in-memory image-classification dataset."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.images) != len(self.labels):
            raise ConfigurationError(
                f"images ({len(self.images)}) and labels ({len(self.labels)}) lengths differ"
            )

    def __len__(self) -> int:
        return len(self.labels)

    def subset(self, indices: Sequence[int]) -> "Dataset":
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.images[indices], self.labels[indices])

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=NUM_CLASSES)


def generate_dataset(
    num_samples: int,
    rng: RNGLike = None,
    image_size: int = IMAGE_SIZE,
    variability: float = 1.0,
    balanced: bool = True,
) -> Dataset:
    """Generate ``num_samples`` synthetic digit images with labels.

    With ``balanced=True`` the class counts differ by at most one; otherwise
    labels are sampled uniformly at random.
    """
    if num_samples < 1:
        raise ConfigurationError(f"num_samples must be >= 1, got {num_samples}")
    gen = ensure_rng(rng)
    if balanced:
        labels = np.arange(num_samples) % NUM_CLASSES
        gen.shuffle(labels)
    else:
        labels = gen.integers(0, NUM_CLASSES, size=num_samples)
    images = np.zeros((num_samples, image_size, image_size), dtype=np.float64)
    for i, label in enumerate(labels):
        images[i] = render_digit(int(label), rng=gen, image_size=image_size, style=random_style(gen, variability))
    return Dataset(images=images, labels=np.asarray(labels, dtype=np.int64))


def load_synthetic_mnist(
    num_train: int = 4000,
    num_test: int = 1000,
    seed: int = 2021,
    image_size: int = IMAGE_SIZE,
    variability: float = 1.0,
) -> Tuple[Dataset, Dataset]:
    """Return ``(train, test)`` synthetic-MNIST datasets.

    The split is deterministic in ``seed`` and the train/test generators are
    independent streams, so enlarging one split never changes the other.
    """
    parent = np.random.SeedSequence(seed)
    train_seq, test_seq = parent.spawn(2)
    train = generate_dataset(num_train, rng=np.random.default_rng(train_seq), image_size=image_size, variability=variability)
    test = generate_dataset(num_test, rng=np.random.default_rng(test_seq), image_size=image_size, variability=variability)
    return train, test
