"""Fourier-domain feature extraction for the SPNN input stage.

The paper converts each 28x28 real-valued image into a complex-valued
feature vector by taking the *shifted* 2-D FFT and keeping only a small
region at the center of the frequency spectrum (a 4x4 crop giving 16
complex features, §III-D).  This module implements that pipeline, plus the
uncompressed 784-dimensional variant used for the baseline-accuracy number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import ShapeError
from .synthetic_mnist import Dataset


def shifted_fft2(images: np.ndarray) -> np.ndarray:
    """Centered 2-D FFT of a batch of images.

    Parameters
    ----------
    images:
        Array of shape ``(n, h, w)`` or ``(h, w)``.

    Returns
    -------
    numpy.ndarray
        Complex spectrum with the DC component moved to the center
        (``fftshift``), same shape as the input.
    """
    images = np.asarray(images, dtype=np.float64)
    single = images.ndim == 2
    if single:
        images = images[np.newaxis]
    if images.ndim != 3:
        raise ShapeError(f"images must have shape (n, h, w) or (h, w), got {images.shape}")
    spectrum = np.fft.fftshift(np.fft.fft2(images), axes=(-2, -1))
    return spectrum[0] if single else spectrum


def center_crop(spectrum: np.ndarray, crop: int) -> np.ndarray:
    """Extract the central ``crop x crop`` block of a (batched) spectrum."""
    spectrum = np.asarray(spectrum)
    single = spectrum.ndim == 2
    if single:
        spectrum = spectrum[np.newaxis]
    if spectrum.ndim != 3:
        raise ShapeError(f"spectrum must have shape (n, h, w) or (h, w), got {spectrum.shape}")
    _, h, w = spectrum.shape
    if crop < 1 or crop > h or crop > w:
        raise ShapeError(f"crop must be in [1, {min(h, w)}], got {crop}")
    top = (h - crop) // 2
    left = (w - crop) // 2
    block = spectrum[:, top : top + crop, left : left + crop]
    return block[0] if single else block


def fft_crop_features(images: np.ndarray, crop: int = 4, normalize: bool = True) -> np.ndarray:
    """Full paper pipeline: shifted FFT -> ``crop x crop`` center -> flatten.

    Parameters
    ----------
    images:
        ``(n, h, w)`` batch of real images.
    crop:
        Side of the central frequency block (4 in the paper -> 16 complex
        features).
    normalize:
        Divide by the number of image pixels so the feature magnitudes are
        O(1) regardless of image size; this keeps the photonic input powers
        in a physically sensible range and stabilizes training.

    Returns
    -------
    numpy.ndarray
        Complex array of shape ``(n, crop*crop)``.
    """
    spectrum = shifted_fft2(images)
    block = center_crop(spectrum, crop)
    single = block.ndim == 2
    if single:
        block = block[np.newaxis]
    features = block.reshape(block.shape[0], -1)
    if normalize:
        images = np.asarray(images)
        pixels = images.shape[-1] * images.shape[-2]
        features = features / pixels
    return features[0] if single else features


def full_fft_features(images: np.ndarray, normalize: bool = True) -> np.ndarray:
    """Uncompressed shifted-FFT features flattened to ``(n, h*w)`` complex."""
    spectrum = shifted_fft2(images)
    single = spectrum.ndim == 2
    if single:
        spectrum = spectrum[np.newaxis]
    features = spectrum.reshape(spectrum.shape[0], -1)
    if normalize:
        images = np.asarray(images)
        pixels = images.shape[-1] * images.shape[-2]
        features = features / pixels
    return features[0] if single else features


@dataclass(frozen=True)
class FeatureConfig:
    """Configuration of the SPNN input feature pipeline."""

    crop: int = 4
    normalize: bool = True

    @property
    def num_features(self) -> int:
        return self.crop * self.crop


class FFTFeatureExtractor:
    """Callable object turning image datasets into complex feature matrices."""

    def __init__(self, config: FeatureConfig | None = None):
        self.config = config if config is not None else FeatureConfig()

    def __call__(self, images: np.ndarray) -> np.ndarray:
        return fft_crop_features(images, crop=self.config.crop, normalize=self.config.normalize)

    def transform_dataset(self, dataset: Dataset) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(features, labels)`` for a :class:`Dataset`."""
        return self(dataset.images), dataset.labels.copy()
