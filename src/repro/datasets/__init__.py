"""Datasets and feature pipelines: synthetic MNIST and shifted-FFT features."""

from .fft_features import (
    FeatureConfig,
    FFTFeatureExtractor,
    center_crop,
    fft_crop_features,
    full_fft_features,
    shifted_fft2,
)
from .loaders import batch_iterator, stratified_split, train_val_split
from .synthetic_mnist import (
    IMAGE_SIZE,
    NUM_CLASSES,
    Dataset,
    DigitStyle,
    generate_dataset,
    load_synthetic_mnist,
    random_style,
    render_digit,
)

__all__ = [
    "IMAGE_SIZE",
    "NUM_CLASSES",
    "Dataset",
    "DigitStyle",
    "render_digit",
    "random_style",
    "generate_dataset",
    "load_synthetic_mnist",
    "shifted_fft2",
    "center_crop",
    "fft_crop_features",
    "full_fft_features",
    "FeatureConfig",
    "FFTFeatureExtractor",
    "train_val_split",
    "stratified_split",
    "batch_iterator",
]
