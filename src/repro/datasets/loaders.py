"""Dataset splitting and batching helpers."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.rng import RNGLike, ensure_rng
from .synthetic_mnist import Dataset


def train_val_split(dataset: Dataset, val_fraction: float = 0.1, rng: RNGLike = None) -> Tuple[Dataset, Dataset]:
    """Split a dataset into train/validation subsets.

    Parameters
    ----------
    dataset:
        Source dataset.
    val_fraction:
        Fraction of samples placed in the validation subset (0 < f < 1).
    rng:
        Seed or generator controlling the shuffle.
    """
    if not 0.0 < val_fraction < 1.0:
        raise ConfigurationError(f"val_fraction must be in (0, 1), got {val_fraction}")
    gen = ensure_rng(rng)
    indices = np.arange(len(dataset))
    gen.shuffle(indices)
    val_size = max(1, int(round(len(dataset) * val_fraction)))
    if val_size >= len(dataset):
        raise ConfigurationError("validation split would consume the entire dataset")
    val_idx = indices[:val_size]
    train_idx = indices[val_size:]
    return dataset.subset(train_idx), dataset.subset(val_idx)


def stratified_split(dataset: Dataset, val_fraction: float = 0.1, rng: RNGLike = None) -> Tuple[Dataset, Dataset]:
    """Class-stratified train/validation split (each class split separately)."""
    if not 0.0 < val_fraction < 1.0:
        raise ConfigurationError(f"val_fraction must be in (0, 1), got {val_fraction}")
    gen = ensure_rng(rng)
    train_indices: list[int] = []
    val_indices: list[int] = []
    for label in np.unique(dataset.labels):
        class_idx = np.flatnonzero(dataset.labels == label)
        gen.shuffle(class_idx)
        val_size = max(1, int(round(len(class_idx) * val_fraction))) if len(class_idx) > 1 else 0
        val_indices.extend(class_idx[:val_size].tolist())
        train_indices.extend(class_idx[val_size:].tolist())
    if not train_indices or not val_indices:
        raise ConfigurationError("stratified split produced an empty subset")
    return dataset.subset(train_indices), dataset.subset(val_indices)


def batch_iterator(
    features: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    shuffle: bool = False,
    rng: RNGLike = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(features, labels)`` batches; the last batch may be smaller."""
    features = np.asarray(features)
    labels = np.asarray(labels)
    if len(features) != len(labels):
        raise ConfigurationError(f"features ({len(features)}) and labels ({len(labels)}) lengths differ")
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    order = np.arange(len(features))
    if shuffle:
        ensure_rng(rng).shuffle(order)
    for start in range(0, len(order), batch_size):
        idx = order[start : start + batch_size]
        yield features[idx], labels[idx]
