"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library failures without
masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape."""


class NotUnitaryError(ReproError, ValueError):
    """A matrix expected to be unitary fails the unitarity tolerance."""


class DecompositionError(ReproError, RuntimeError):
    """A mesh decomposition could not be completed or verified."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or model configuration is invalid."""


class AutogradError(ReproError, RuntimeError):
    """A failure inside the automatic-differentiation engine."""


class TrainingError(ReproError, RuntimeError):
    """Training could not proceed (e.g. divergence, empty dataset)."""


class VariationModelError(ReproError, ValueError):
    """A variation/uncertainty model received invalid parameters."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment runner failed or was asked for an unknown experiment."""
