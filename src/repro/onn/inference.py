"""Batched hardware-inference helpers for Monte Carlo accuracy studies."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..utils.rng import RNGLike, ensure_rng, spawn_rngs
from ..variation.models import UncertaintyModel
from ..variation.sampler import sample_network_perturbation
from .spnn import SPNN, NetworkPerturbation


def hardware_accuracy(
    spnn: SPNN,
    features: np.ndarray,
    labels: np.ndarray,
    perturbations: Optional[NetworkPerturbation] = None,
) -> float:
    """Accuracy of the (optionally perturbed) hardware on a test set."""
    return spnn.accuracy(features, labels, perturbations=perturbations, use_hardware=True)


def monte_carlo_accuracy(
    spnn: SPNN,
    features: np.ndarray,
    labels: np.ndarray,
    model: UncertaintyModel,
    iterations: int,
    rng: RNGLike = None,
    perturbation_factory: Optional[Callable[[np.random.Generator], NetworkPerturbation]] = None,
) -> np.ndarray:
    """Accuracy samples over ``iterations`` uncertainty realizations.

    Parameters
    ----------
    spnn:
        Compiled network under test.
    features, labels:
        Evaluation set (the paper uses the full MNIST test set).
    model:
        Component uncertainty model used by the default sampler.
    iterations:
        Number of Monte Carlo iterations (1000 in the paper).
    rng:
        Seed; each iteration receives an independent child stream.
    perturbation_factory:
        Optional custom sampler ``generator -> NetworkPerturbation``
        (used by the zonal experiments); defaults to the global Gaussian
        sampler with ``model``.

    Returns
    -------
    numpy.ndarray
        Accuracy per iteration, shape ``(iterations,)``.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    generators = spawn_rngs(rng, iterations)
    accuracies = np.empty(iterations, dtype=np.float64)
    for index, generator in enumerate(generators):
        if perturbation_factory is not None:
            perturbation = perturbation_factory(generator)
        else:
            perturbation = sample_network_perturbation(spnn.photonic_layers, model, generator)
        accuracies[index] = spnn.accuracy(features, labels, perturbations=perturbation, use_hardware=True)
    return accuracies


def predict_batched(
    spnn: SPNN,
    features: np.ndarray,
    perturbations: Optional[NetworkPerturbation] = None,
    batch_size: int = 2048,
) -> np.ndarray:
    """Class predictions computed in batches (bounds peak memory on large sets)."""
    features = np.asarray(features)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    outputs: List[np.ndarray] = []
    for start in range(0, len(features), batch_size):
        chunk = features[start : start + batch_size]
        outputs.append(spnn.predict(chunk, perturbations=perturbations, use_hardware=True))
    return np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.int64)
