"""Batched hardware-inference helpers for Monte Carlo accuracy studies.

Two Monte Carlo evaluation paths are provided:

* the historical *looped* path (``vectorized=False``), which rebuilds every
  layer's perturbed matrix and runs the forward pass once per iteration, and
* the *vectorized* path (default), which stacks the ``B`` Monte Carlo
  realizations along a leading batch axis and evaluates the perturbed
  meshes and the forward pass for all realizations at once.

Both paths run through :class:`~repro.analysis.monte_carlo.MonteCarloRunner`
and therefore through the pluggable execution backends: passing
``workers=N`` shards the realization chunks across ``N`` worker processes.
The trials are module-level callable dataclasses
(:class:`NetworkAccuracyTrial`, :class:`NetworkAccuracyBatchTrial`) so they
pickle cleanly into those workers.

**RNG-equivalence guarantee.** Both paths spawn the same independent child
stream per iteration (:func:`repro.utils.rng.spawn_rngs`) and consume each
stream with exactly the same draws; the batched linear algebra applies the
same per-slice kernels NumPy uses for the 2-D products, and chunk
scheduling never touches the streams.  At a fixed seed the vectorized path
therefore reproduces the looped path *bit for bit*, sample for sample, for
every backend and worker count — it is purely a wall-clock optimization
(4-7x on the paper's 1000-iteration runs, growing as the per-iteration
engine cost dominates, times the process-level scaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..analysis.monte_carlo import MonteCarloRunner
from ..execution import BackendLike
from ..execution.shared import ArrayLike, resolve_array, resolve_network
from ..training.workspace import process_workspace
from ..utils.rng import RNGLike
from ..variation.models import UncertaintyModel
from ..variation.process import IIDGaussianProcess, PerturbationProcess
from .spnn import SPNN, NetworkPerturbation, stack_network_perturbations

#: Target working-set bytes of one scheduled Monte Carlo chunk — matches the
#: ~8 MB activation-chunk target of :meth:`SPNN.accuracy_batch`, so the
#: runner's default chunking keeps a whole chunk (sampling buffers, stacked
#: matrices and one forward block) near cache-friendly size no matter how
#: large the evaluation set grows.
CHUNK_TARGET_BYTES = 8 * 1024 * 1024


def hardware_accuracy(
    spnn: SPNN,
    features: np.ndarray,
    labels: np.ndarray,
    perturbations: Optional[NetworkPerturbation] = None,
) -> float:
    """Accuracy of the (optionally perturbed) hardware on a test set."""
    return spnn.accuracy(features, labels, perturbations=perturbations, use_hardware=True)


@dataclass(frozen=True, eq=False)
class NetworkAccuracyTrial:
    """Scalar Monte Carlo trial: one perturbation realization -> accuracy.

    A picklable module-level callable (usable by process backends) that
    consumes its generator exactly as the historical inline loop did:
    sample a network perturbation, evaluate hardware accuracy.

    ``spnn`` may be a plain :class:`SPNN` or a
    :class:`~repro.execution.shared.SharedNetwork` handle — sweeps over
    process backends host the compiled mesh parameters in shared memory
    once (:func:`~repro.execution.shared.shared_network`) so the per-chunk
    payload shrinks to the perturbation draws.
    """

    spnn: object
    features: ArrayLike
    labels: ArrayLike
    model: Optional[UncertaintyModel] = None
    perturbation_factory: Optional[Callable[[np.random.Generator], NetworkPerturbation]] = None
    #: Perturbation process supplying the draws; defaults to the i.i.d.
    #: Gaussian process, bit-identical to the historical raw-sampler path.
    #: Mutually exclusive with ``perturbation_factory``.
    process: Optional[PerturbationProcess] = None

    def __post_init__(self) -> None:
        if self.process is not None and self.perturbation_factory is not None:
            raise ValueError("process and perturbation_factory are mutually exclusive")

    def sample(self, generator: np.random.Generator) -> NetworkPerturbation:
        if self.perturbation_factory is not None:
            return self.perturbation_factory(generator)
        process = self.process if self.process is not None else IIDGaussianProcess()
        return process.sample_single(
            resolve_network(self.spnn).photonic_layers, self.model, generator
        )

    def __call__(self, generator: np.random.Generator) -> float:
        return resolve_network(self.spnn).accuracy(
            resolve_array(self.features),
            resolve_array(self.labels),
            perturbations=self.sample(generator),
            use_hardware=True,
        )


@dataclass(frozen=True, eq=False)
class NetworkAccuracyBatchTrial:
    """Batch Monte Carlo trial: one accuracy per child generator.

    Draws every stream directly into stacked ``(B, ...)`` perturbation
    buffers (or stacks per-stream draws of a custom factory) and evaluates
    them with :meth:`SPNN.accuracy_batch`.  Consumes each generator exactly
    as :class:`NetworkAccuracyTrial` does, so the samples are bit-identical
    to the looped path.  ``spnn`` may be a plain :class:`SPNN` or a
    :class:`~repro.execution.shared.SharedNetwork` handle (shared-memory
    hosted mesh parameters, rebuilt once per worker process).
    """

    spnn: object
    features: ArrayLike
    labels: ArrayLike
    model: Optional[UncertaintyModel] = None
    perturbation_factory: Optional[Callable[[np.random.Generator], NetworkPerturbation]] = None
    #: Perturbation process supplying the stacked draws; defaults to the
    #: i.i.d. Gaussian process, bit-identical to the historical raw-sampler
    #: path.  Mutually exclusive with ``perturbation_factory``.
    process: Optional[PerturbationProcess] = None
    #: Realizations per forward-pass chunk inside ``accuracy_batch`` (memory
    #: bound); automatic when ``None``.  Does not change the samples.
    forward_chunk_size: Optional[int] = None
    #: Recycle the per-chunk scratch buffers through the process-local
    #: workspace arena (:func:`repro.training.workspace.process_workspace`).
    #: Each worker process lazily creates its own arena, so buffer reuse is
    #: aliasing-safe under every backend; samples are bit-identical.
    use_workspace: bool = False

    def __post_init__(self) -> None:
        if self.process is not None and self.perturbation_factory is not None:
            raise ValueError("process and perturbation_factory are mutually exclusive")

    def preferred_chunk_size(self) -> int:
        """Realizations per chunk keeping one vectorized call near the target.

        Consulted by :class:`~repro.analysis.monte_carlo.MonteCarloRunner`
        when no explicit ``chunk_size`` is given.  The estimate counts what
        one realization adds to a chunk's working set — its slice of the
        forward activations, the stacked per-layer hardware matrices, and
        the perturbation sampling buffers — so the default chunk shrinks as
        the evaluation set grows (the paper's 10k MNIST test set lands at a
        handful of realizations per chunk) instead of letting a whole
        1000-iteration run blow past the ~8 MB activation-chunk target in
        one call.  Chunking never changes the samples.
        """
        spnn = resolve_network(self.spnn)
        features = resolve_array(self.features)
        samples = int(features.shape[0]) if features.ndim > 1 else 1
        architecture = spnn.architecture
        width = max(architecture.layer_dims)
        activation_bytes = samples * width * 16  # complex128 forward block
        matrix_bytes = sum(out * inp for out, inp in architecture.weight_shapes()) * 16
        mzis = (
            sum(layer.num_mzis for layer in spnn.photonic_layers)
            if spnn.is_compiled
            else 0
        )
        # Four perturbed parameter families per MZI, drawn then scaled.
        sampling_bytes = 2 * 4 * mzis * 8
        per_realization = activation_bytes + matrix_bytes + sampling_bytes
        return max(1, CHUNK_TARGET_BYTES // max(1, per_realization))

    def __call__(self, generators: Sequence[np.random.Generator]) -> np.ndarray:
        generators = list(generators)
        spnn = resolve_network(self.spnn)
        workspace = process_workspace() if self.use_workspace else None
        if self.perturbation_factory is None:
            process = self.process if self.process is not None else IIDGaussianProcess()
            batch = process.sample_batch(
                spnn.photonic_layers, self.model, generators, workspace=workspace
            )
        else:
            batch = stack_network_perturbations(
                [self.perturbation_factory(generator) for generator in generators],
                workspace=workspace,
            )
        return spnn.accuracy_batch(
            resolve_array(self.features),
            resolve_array(self.labels),
            batch,
            batch_size=len(generators),
            chunk_size=self.forward_chunk_size,
            workspace=workspace,
        )


@dataclass(frozen=True, eq=False)
class SigmaFoldedAccuracyBatchTrial(NetworkAccuracyBatchTrial):
    """Batch trial whose rows carry *different* uncertainty levels.

    The sigma-folded sweeps (:func:`repro.analysis.yield_analysis.
    yield_sweep`) stack the realizations of several sigmas along the Monte
    Carlo batch axis and evaluate them in shared vectorized chunks — one
    column sweep and one forward pass per chunk instead of one scheduling
    barrier per sigma.  ``model`` supplies the (uniform) family gating of
    the fold; ``phase_std_rows``/``splitter_std_rows`` hold each row's own
    *physical* standard deviations, shape ``(B, 1)`` aligned with the
    chunk's generators.  Scaling a row's normalized draws by its actual
    stds is the exact float multiply the per-sigma trial performs, so the
    folded samples are bit-identical to running each sigma separately with
    the same child streams — for every backend, worker count and chunk
    size (chunks may freely cross sigma boundaries).

    Only the default i.i.d. Gaussian sampling path supports folding:
    custom factories and temporal processes draw per-row state the fold
    cannot rescale.
    """

    phase_std_rows: Optional[np.ndarray] = None
    splitter_std_rows: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.perturbation_factory is not None:
            raise ValueError("sigma folding requires the default sampler (no perturbation_factory)")
        if self.process is not None and not isinstance(self.process, IIDGaussianProcess):
            raise ValueError("sigma folding requires the i.i.d. Gaussian process")

    def __call__(self, generators: Sequence[np.random.Generator]) -> np.ndarray:
        from ..variation.sampler import sample_network_perturbation_batch

        generators = list(generators)
        spnn = resolve_network(self.spnn)
        workspace = process_workspace() if self.use_workspace else None
        batch = sample_network_perturbation_batch(
            spnn.photonic_layers,
            self.model,
            generators,
            workspace=workspace,
            phase_std_rows=self.phase_std_rows,
            splitter_std_rows=self.splitter_std_rows,
        )
        return spnn.accuracy_batch(
            resolve_array(self.features),
            resolve_array(self.labels),
            batch,
            batch_size=len(generators),
            chunk_size=self.forward_chunk_size,
            workspace=workspace,
        )


def monte_carlo_accuracy(
    spnn: SPNN,
    features: ArrayLike,
    labels: ArrayLike,
    model: UncertaintyModel,
    iterations: int,
    rng: RNGLike = None,
    perturbation_factory: Optional[Callable[[np.random.Generator], NetworkPerturbation]] = None,
    process: Optional[PerturbationProcess] = None,
    vectorized: bool = True,
    chunk_size: Optional[int] = None,
    backend: BackendLike = None,
    workers: Optional[int] = None,
    use_workspace: bool = False,
) -> np.ndarray:
    """Accuracy samples over ``iterations`` uncertainty realizations.

    Parameters
    ----------
    spnn:
        Compiled network under test.
    features, labels:
        Evaluation set (the paper uses the full MNIST test set).  Plain
        arrays or :class:`~repro.execution.shared.SharedArray` handles —
        sweeps over process backends host the eval set in shared memory
        once (:func:`~repro.execution.shared.shared_eval_arrays`) so it is
        not re-pickled into the workers for every chunk.
    model:
        Component uncertainty model used by the default sampler.
    iterations:
        Number of Monte Carlo iterations (1000 in the paper).
    rng:
        Seed; each iteration receives an independent child stream.
    perturbation_factory:
        Optional custom sampler ``generator -> NetworkPerturbation``
        (used by the zonal experiments); defaults to the global Gaussian
        sampler with ``model``.  Works with both evaluation paths; must be
        picklable (module-level) when used with a process backend.
    process:
        Optional :class:`~repro.variation.process.PerturbationProcess`
        supplying the draws (its stateless fabrication-draw marginal; for
        *temporal* studies use :func:`repro.analysis.timeline.
        timeline_sweep`).  Defaults to the i.i.d. Gaussian process, which
        reproduces the historical samples bit for bit.  Mutually exclusive
        with ``perturbation_factory``.
    vectorized:
        Evaluate all realizations with the batched hardware path (default).
        The looped path (``False``) produces bit-identical samples and is
        kept for cross-checking and tiny runs.
    chunk_size:
        Realizations per scheduled Monte Carlo chunk: bounds the peak
        memory of one vectorized sampling + evaluation call and sets the
        work-unit granularity when sharding across workers (the forward
        pass additionally auto-chunks within a call to stay
        cache-resident).  Picked automatically when omitted.  Chunking
        never changes the samples.
    backend, workers:
        Execution-backend knobs (see :func:`repro.execution.resolve_backend`):
        ``workers=N`` shards the realization chunks across ``N`` worker
        processes, bit-identical to the serial run at the same seed.
    use_workspace:
        Recycle the vectorized path's scratch buffers through the
        process-local workspace arena (one per worker process).  Purely an
        allocation optimization; samples are bit-identical.

    Returns
    -------
    numpy.ndarray
        Accuracy per iteration, shape ``(iterations,)``.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    runner = MonteCarloRunner(
        iterations=iterations, chunk_size=chunk_size, backend=backend, workers=workers
    )
    if not vectorized:
        trial = NetworkAccuracyTrial(
            spnn=spnn,
            features=features,
            labels=labels,
            model=model,
            perturbation_factory=perturbation_factory,
            process=process,
        )
        return runner.run(trial, rng=rng).samples
    batch_trial = NetworkAccuracyBatchTrial(
        spnn=spnn,
        features=features,
        labels=labels,
        model=model,
        perturbation_factory=perturbation_factory,
        process=process,
        use_workspace=use_workspace,
    )
    return runner.run_batched(batch_trial, rng=rng).samples


def predict_batched(
    spnn: SPNN,
    features: np.ndarray,
    perturbations: Optional[NetworkPerturbation] = None,
    batch_size: int = 2048,
) -> np.ndarray:
    """Class predictions computed in batches (bounds peak memory on large sets)."""
    features = np.asarray(features)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    outputs: List[np.ndarray] = []
    for start in range(0, len(features), batch_size):
        chunk = features[start : start + batch_size]
        outputs.append(spnn.predict(chunk, perturbations=perturbations, use_hardware=True))
    return np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.int64)
