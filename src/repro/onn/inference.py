"""Batched hardware-inference helpers for Monte Carlo accuracy studies.

Two Monte Carlo evaluation paths are provided:

* the historical *looped* path (``vectorized=False``), which rebuilds every
  layer's perturbed matrix and runs the forward pass once per iteration, and
* the *vectorized* path (default), which stacks the ``B`` Monte Carlo
  realizations along a leading batch axis and evaluates the perturbed
  meshes and the forward pass for all realizations at once.

**RNG-equivalence guarantee.** Both paths spawn the same independent child
stream per iteration (:func:`repro.utils.rng.spawn_rngs`) and consume each
stream with exactly the same draws; the batched linear algebra applies the
same per-slice kernels NumPy uses for the 2-D products.  At a fixed seed the
vectorized path therefore reproduces the looped path *bit for bit*, sample
for sample — it is purely a wall-clock optimization (4-7x on the paper's
1000-iteration runs, growing as the per-iteration engine cost dominates).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..utils.rng import RNGLike, spawn_rngs
from ..variation.models import UncertaintyModel
from ..variation.sampler import sample_network_perturbation, sample_network_perturbation_batch
from .spnn import SPNN, NetworkPerturbation, stack_network_perturbations


def hardware_accuracy(
    spnn: SPNN,
    features: np.ndarray,
    labels: np.ndarray,
    perturbations: Optional[NetworkPerturbation] = None,
) -> float:
    """Accuracy of the (optionally perturbed) hardware on a test set."""
    return spnn.accuracy(features, labels, perturbations=perturbations, use_hardware=True)


def monte_carlo_accuracy(
    spnn: SPNN,
    features: np.ndarray,
    labels: np.ndarray,
    model: UncertaintyModel,
    iterations: int,
    rng: RNGLike = None,
    perturbation_factory: Optional[Callable[[np.random.Generator], NetworkPerturbation]] = None,
    vectorized: bool = True,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Accuracy samples over ``iterations`` uncertainty realizations.

    Parameters
    ----------
    spnn:
        Compiled network under test.
    features, labels:
        Evaluation set (the paper uses the full MNIST test set).
    model:
        Component uncertainty model used by the default sampler.
    iterations:
        Number of Monte Carlo iterations (1000 in the paper).
    rng:
        Seed; each iteration receives an independent child stream.
    perturbation_factory:
        Optional custom sampler ``generator -> NetworkPerturbation``
        (used by the zonal experiments); defaults to the global Gaussian
        sampler with ``model``.  Works with both evaluation paths.
    vectorized:
        Evaluate all realizations with the batched hardware path (default).
        The looped path (``False``) produces bit-identical samples and is
        kept for cross-checking and tiny runs.
    chunk_size:
        Realizations per forward-pass chunk (keeps the activation workspace
        cache-resident); chosen automatically from the evaluation-set size
        when omitted.  Chunking does not change the samples.

    Returns
    -------
    numpy.ndarray
        Accuracy per iteration, shape ``(iterations,)``.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    generators = spawn_rngs(rng, iterations)

    def sample(generator: np.random.Generator) -> NetworkPerturbation:
        if perturbation_factory is not None:
            return perturbation_factory(generator)
        return sample_network_perturbation(spnn.photonic_layers, model, generator)

    if not vectorized:
        accuracies = np.empty(iterations, dtype=np.float64)
        for index, generator in enumerate(generators):
            accuracies[index] = spnn.accuracy(
                features, labels, perturbations=sample(generator), use_hardware=True
            )
        return accuracies

    if perturbation_factory is None:
        # Fast path: draw every stream directly into stacked (B, ...) buffers.
        batch = sample_network_perturbation_batch(spnn.photonic_layers, model, generators)
    else:
        batch = stack_network_perturbations([sample(generator) for generator in generators])
    return spnn.accuracy_batch(
        features, labels, batch, batch_size=iterations, chunk_size=chunk_size
    )


def predict_batched(
    spnn: SPNN,
    features: np.ndarray,
    perturbations: Optional[NetworkPerturbation] = None,
    batch_size: int = 2048,
) -> np.ndarray:
    """Class predictions computed in batches (bounds peak memory on large sets)."""
    features = np.asarray(features)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    outputs: List[np.ndarray] = []
    for start in range(0, len(features), batch_size):
        chunk = features[start : start + batch_size]
        outputs.append(spnn.predict(chunk, perturbations=perturbations, use_hardware=True))
    return np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.int64)
