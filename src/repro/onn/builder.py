"""End-to-end construction of the paper's SPNN: data -> training -> hardware.

The paper's flow (§III-D) is:

1. take the image corpus, compute shifted-FFT features and keep the 4x4
   center crop (16 complex features),
2. train the complex-valued software network (two hidden layers of 16
   neurons, modulus-Softplus activations, squared-modulus + LogSoftMax
   output, cross-entropy loss),
3. map the trained weight matrices onto MZI meshes via SVD + Clements.

:func:`build_trained_spnn` performs all three steps and returns the
compiled :class:`~repro.onn.spnn.SPNN` together with the held-out test set,
ready for the EXP 1 / EXP 2 Monte Carlo studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..datasets.fft_features import fft_crop_features
from ..datasets.synthetic_mnist import Dataset, load_synthetic_mnist
from ..nn.activations import LogSoftmax, ModulusSoftplus, ModulusSquared
from ..nn.layers import ComplexLinear
from ..nn.metrics import TrainingHistory
from ..nn.module import Sequential
from ..nn.optim import Adam
from ..nn.trainer import Trainer, TrainerConfig
from ..utils.rng import RNGLike, ensure_rng
from .spnn import SPNN, SPNNArchitecture


@dataclass
class SPNNTrainingConfig:
    """Hyper-parameters for building and training the software model."""

    architecture: SPNNArchitecture = field(default_factory=SPNNArchitecture)
    epochs: int = 60
    batch_size: int = 64
    learning_rate: float = 2e-2
    num_train: int = 4000
    num_test: int = 1000
    fft_crop: int = 4
    seed: int = 2021


@dataclass
class SPNNTask:
    """A trained SPNN together with the datasets used to build and test it."""

    spnn: SPNN
    history: TrainingHistory
    train_features: np.ndarray
    train_labels: np.ndarray
    test_features: np.ndarray
    test_labels: np.ndarray
    baseline_accuracy: float

    @property
    def num_test_samples(self) -> int:
        return len(self.test_labels)


def build_software_model(architecture: SPNNArchitecture, rng: RNGLike = None) -> Sequential:
    """Software model matching the paper's SPNN pipeline.

    Every hidden linear layer is followed by modulus-Softplus; the final
    layer by squared-modulus (intensity) and LogSoftMax.
    """
    gen = ensure_rng(rng)
    modules: List = []
    dims = architecture.layer_dims
    for index in range(architecture.num_linear_layers):
        modules.append(ComplexLinear(dims[index], dims[index + 1], bias=False, rng=gen))
        if index != architecture.num_linear_layers - 1:
            modules.append(ModulusSoftplus(beta=architecture.softplus_beta))
    modules.append(ModulusSquared())
    modules.append(LogSoftmax())
    return Sequential(*modules)


def extract_weights(model: Sequential) -> List[np.ndarray]:
    """Collect the complex weight matrices of a software model, in layer order."""
    return [module.weight_matrix() for module in model if isinstance(module, ComplexLinear)]


def spnn_from_model(model: Sequential, architecture: SPNNArchitecture, compile_hardware: bool = True) -> SPNN:
    """Wrap a trained software model into a (compiled) :class:`SPNN`."""
    return SPNN(extract_weights(model), architecture=architecture, compile_hardware=compile_hardware)


def train_software_model(
    features: np.ndarray,
    labels: np.ndarray,
    config: SPNNTrainingConfig,
    val_features: Optional[np.ndarray] = None,
    val_labels: Optional[np.ndarray] = None,
    rng: RNGLike = None,
) -> Tuple[Sequential, TrainingHistory]:
    """Train the complex-valued software model with Adam + cross-entropy."""
    gen = ensure_rng(rng if rng is not None else config.seed)
    model = build_software_model(config.architecture, rng=gen)
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    trainer = Trainer(
        model,
        optimizer,
        config=TrainerConfig(epochs=config.epochs, batch_size=config.batch_size),
        rng=gen,
    )
    history = trainer.fit(features, labels, val_features, val_labels)
    return model, history


def prepare_feature_sets(
    config: SPNNTrainingConfig,
    dataset_pair: Optional[Tuple[Dataset, Dataset]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Dataset -> FFT features: ``(train_x, train_y, test_x, test_y)``.

    Shared by :func:`build_trained_spnn` and the experiments that train
    several models on *identical* data (e.g. baseline vs. noise-aware in
    the robustness study), so the corpus and feature extraction are
    generated exactly once per configuration.
    """
    if dataset_pair is None:
        dataset_pair = load_synthetic_mnist(
            num_train=config.num_train, num_test=config.num_test, seed=config.seed
        )
    train_set, test_set = dataset_pair

    train_features = fft_crop_features(train_set.images, crop=config.fft_crop)
    test_features = fft_crop_features(test_set.images, crop=config.fft_crop)
    if train_features.shape[1] != config.architecture.input_size:
        raise ValueError(
            f"FFT crop {config.fft_crop} produces {train_features.shape[1]} features but the "
            f"architecture expects {config.architecture.input_size}"
        )
    return train_features, train_set.labels, test_features, test_set.labels


def build_trained_spnn(
    config: Optional[SPNNTrainingConfig] = None,
    dataset_pair: Optional[Tuple[Dataset, Dataset]] = None,
    rng: RNGLike = None,
) -> SPNNTask:
    """Full pipeline: dataset -> FFT features -> training -> compiled SPNN.

    Parameters
    ----------
    config:
        Training/configuration options; defaults reproduce the paper's
        architecture with a laptop-sized synthetic corpus.
    dataset_pair:
        Pre-generated ``(train, test)`` datasets; generated from the config
        seed when omitted.
    rng:
        Seed controlling weight initialization and batch order (defaults to
        ``config.seed``).
    """
    config = config if config is not None else SPNNTrainingConfig()
    train_features, train_labels, test_features, test_labels = prepare_feature_sets(
        config, dataset_pair
    )

    model, history = train_software_model(
        train_features,
        train_labels,
        config,
        val_features=test_features,
        val_labels=test_labels,
        rng=rng,
    )
    spnn = spnn_from_model(model, config.architecture, compile_hardware=True)
    baseline_accuracy = spnn.accuracy(test_features, test_labels, use_hardware=True)
    return SPNNTask(
        spnn=spnn,
        history=history,
        train_features=train_features,
        train_labels=train_labels,
        test_features=test_features,
        test_labels=test_labels,
        baseline_accuracy=baseline_accuracy,
    )
