"""System-level SPNN model: trained software network + photonic hardware twin.

The paper's SPNN (§III-D) is a fully connected feedforward network with two
hidden layers of 16 complex-valued neurons:

* input features: 16 complex values (4x4 center crop of the shifted FFT),
* linear layers of sizes 16x16, 16x16 and 16x10, each realized in hardware
  as ``U @ Sigma @ V^H`` MZI meshes (Clements design) with a gain stage,
* the non-linear Softplus applied to the modulus after each hidden linear
  layer,
* a squared-modulus intensity measurement after the output layer, followed
  by LogSoftMax.

:class:`SPNN` owns both views of this network: the *software* view (the
complex weight matrices, as trained) and the *hardware* view (the compiled
meshes), and evaluates inference through either one — with or without
uncertainty realizations — so that the accuracy impact of variations can be
measured exactly as in the paper's EXP 1 / EXP 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arrays import active_array_backend
from ..arrays import kernels as _kernels
from ..exceptions import ConfigurationError, ShapeError
from ..mesh.svd_layer import LayerPerturbation, LayerPerturbationBatch, PhotonicLinearLayer
from ..utils.validation import as_complex_array

#: Network perturbation: one entry per linear layer (None = that layer ideal).
NetworkPerturbation = List[Optional[LayerPerturbation]]

#: Batched network perturbation: one stacked entry per linear layer
#: (None = that layer ideal in every realization).
NetworkPerturbationBatch = List[Optional[LayerPerturbationBatch]]


def stack_network_perturbations(
    realizations: Sequence[NetworkPerturbation],
    workspace=None,
) -> NetworkPerturbationBatch:
    """Stack per-iteration network perturbations into a leading batch axis.

    ``realizations[b][l]`` is realization ``b`` of layer ``l``; the result
    has one :class:`LayerPerturbationBatch` per layer (or ``None`` when the
    layer is unperturbed in every realization).  With a ``workspace`` the
    stacked arrays live in reusable arena buffers keyed per layer and
    stage, eliminating the per-call stack allocations of custom-sampler
    Monte Carlo chunks; the batch is then valid until the next
    workspace-backed stack.
    """
    realizations = list(realizations)
    if not realizations:
        raise ValueError("cannot stack an empty sequence of network perturbations")
    num_layers = len(realizations[0])
    if any(len(r) != num_layers for r in realizations):
        raise ShapeError("all network perturbations must cover the same number of layers")
    batch: NetworkPerturbationBatch = []
    for layer_index in range(num_layers):
        stages = [r[layer_index] for r in realizations]
        if all(stage is None for stage in stages):
            batch.append(None)
        else:
            batch.append(
                LayerPerturbationBatch.stack(
                    [stage if stage is not None else LayerPerturbation.none() for stage in stages],
                    workspace=workspace,
                    workspace_key=("network-stack", layer_index),
                )
            )
    return batch


@dataclass(frozen=True)
class SPNNArchitecture:
    """Architecture of the paper's SPNN.

    Parameters
    ----------
    layer_dims:
        Neuron counts per layer including input and output, e.g.
        ``(16, 16, 16, 10)`` for the paper's two-hidden-layer network.
    softplus_beta:
        Sharpness of the modulus-Softplus activation.
    scheme:
        Mesh topology used when compiling to hardware.
    """

    layer_dims: Tuple[int, ...] = (16, 16, 16, 10)
    softplus_beta: float = 1.0
    scheme: str = "clements"

    def __post_init__(self) -> None:
        if len(self.layer_dims) < 2:
            raise ConfigurationError("layer_dims must contain at least input and output sizes")
        if any(d < 1 for d in self.layer_dims):
            raise ConfigurationError(f"all layer dimensions must be >= 1, got {self.layer_dims}")
        if self.softplus_beta <= 0:
            raise ConfigurationError(f"softplus_beta must be positive, got {self.softplus_beta}")

    @property
    def num_linear_layers(self) -> int:
        return len(self.layer_dims) - 1

    @property
    def input_size(self) -> int:
        return self.layer_dims[0]

    @property
    def output_size(self) -> int:
        return self.layer_dims[-1]

    def weight_shapes(self) -> List[Tuple[int, int]]:
        """``(out, in)`` shapes of every linear layer."""
        return [
            (self.layer_dims[i + 1], self.layer_dims[i]) for i in range(self.num_linear_layers)
        ]


# --------------------------------------------------------------------------- #
# numerically stable real helpers (thin wrappers over the xp kernels)
# --------------------------------------------------------------------------- #
# The arithmetic lives in :mod:`repro.arrays.kernels` and targets the active
# array backend's namespace; with the default (NumPy) backend the call
# sequences are exactly the historical ones, so results are bit-identical.


def _softplus(
    x: np.ndarray, beta: float = 1.0, threshold: float = 30.0, out: Optional[np.ndarray] = None
) -> np.ndarray:
    return _kernels.softplus(active_array_backend().xp, x, beta=beta, threshold=threshold, out=out)


def _log_softmax(x: np.ndarray) -> np.ndarray:
    return _kernels.log_softmax(active_array_backend().xp, x)


def _matmul_result_shape(activations: np.ndarray, matrix: np.ndarray) -> Tuple[int, ...]:
    """Shape of ``activations @ swapaxes(matrix, -2, -1)`` under broadcasting."""
    return _kernels.matmul_result_shape(activations, matrix)


def _matmul_transposed(
    activations: np.ndarray, matrix: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """``activations @ matrix.T`` (see :func:`repro.arrays.kernels.matmul_transposed`)."""
    return _kernels.matmul_transposed(active_array_backend().xp, activations, matrix, out=out)


class SPNN:
    """Silicon-photonic neural network: weights plus compiled MZI hardware.

    Parameters
    ----------
    weights:
        Complex weight matrices, one per linear layer, each of shape
        ``(out, in)`` and consistent with ``architecture.layer_dims``.
    architecture:
        Network architecture description.
    compile_hardware:
        When ``True`` (default) the weight matrices are immediately
        decomposed onto MZI meshes.  Pass ``False`` to delay compilation
        (e.g. while the software model is still being trained) and call
        :meth:`compile` later.
    """

    def __init__(
        self,
        weights: Sequence[np.ndarray],
        architecture: SPNNArchitecture = SPNNArchitecture(),
        compile_hardware: bool = True,
    ):
        expected_shapes = architecture.weight_shapes()
        if len(weights) != len(expected_shapes):
            raise ConfigurationError(
                f"expected {len(expected_shapes)} weight matrices, got {len(weights)}"
            )
        self.architecture = architecture
        self.weights: List[np.ndarray] = []
        for index, (weight, shape) in enumerate(zip(weights, expected_shapes)):
            weight = as_complex_array(weight, f"weights[{index}]")
            if weight.shape != shape:
                raise ShapeError(
                    f"weights[{index}] must have shape {shape}, got {weight.shape}"
                )
            self.weights.append(weight.copy())
        self.photonic_layers: List[PhotonicLinearLayer] = []
        if compile_hardware:
            self.compile()

    # ------------------------------------------------------------------ #
    # hardware compilation
    # ------------------------------------------------------------------ #
    def compile(self) -> "SPNN":
        """Decompose every weight matrix onto MZI meshes (idempotent)."""
        self.photonic_layers = [
            PhotonicLinearLayer(weight, scheme=self.architecture.scheme) for weight in self.weights
        ]
        return self

    @property
    def is_compiled(self) -> bool:
        return len(self.photonic_layers) == len(self.weights)

    def _require_compiled(self) -> None:
        if not self.is_compiled:
            raise ConfigurationError("SPNN hardware is not compiled; call compile() first")

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def num_linear_layers(self) -> int:
        return len(self.weights)

    def hardware_summary(self) -> Dict[str, int]:
        """MZI and phase-shifter counts across the whole network.

        For the paper's (16, 16, 16, 10) architecture this reports 687 MZIs
        and 1374 tunable phase shifters, matching the number quoted in the
        abstract.
        """
        self._require_compiled()
        total_mzis = sum(layer.num_mzis for layer in self.photonic_layers)
        per_layer = [layer.hardware_summary() for layer in self.photonic_layers]
        return {
            "num_linear_layers": self.num_linear_layers,
            "total_mzis": total_mzis,
            "total_phase_shifters": 2 * total_mzis,
            "unitary_mzis": sum(p["u_mzis"] + p["v_mzis"] for p in per_layer),
            "sigma_mzis": sum(p["sigma_mzis"] for p in per_layer),
        }

    def unitary_meshes(self) -> List[Tuple[str, "object"]]:
        """The six unitary multipliers with their paper-style names.

        Returns pairs like ``("U_L0", mesh)`` / ``("VH_L0", mesh)`` in layer
        order — the objects indexed by the EXP 2 heatmaps (Fig. 5a-f).
        """
        self._require_compiled()
        named = []
        for index, layer in enumerate(self.photonic_layers):
            named.append((f"U_L{index}", layer.mesh_u))
            named.append((f"VH_L{index}", layer.mesh_v))
        return named

    # ------------------------------------------------------------------ #
    # inference: software (ideal weights)
    # ------------------------------------------------------------------ #
    def forward_software(self, features: np.ndarray) -> np.ndarray:
        """Log-probabilities using the ideal (trained) weight matrices."""
        return self._forward_with_matrices(features, self.weights)

    # ------------------------------------------------------------------ #
    # inference: hardware (compiled meshes, optional uncertainties)
    # ------------------------------------------------------------------ #
    def hardware_matrices(
        self, perturbations: Optional[NetworkPerturbation] = None
    ) -> List[np.ndarray]:
        """The matrices the hardware implements under a perturbation realization."""
        self._require_compiled()
        if perturbations is None:
            perturbations = [None] * self.num_linear_layers
        if len(perturbations) != self.num_linear_layers:
            raise ConfigurationError(
                f"expected {self.num_linear_layers} layer perturbations, got {len(perturbations)}"
            )
        return [
            layer.matrix(perturbation)
            for layer, perturbation in zip(self.photonic_layers, perturbations)
        ]

    def forward_hardware(
        self,
        features: np.ndarray,
        perturbations: Optional[NetworkPerturbation] = None,
    ) -> np.ndarray:
        """Log-probabilities using the compiled hardware (optionally perturbed)."""
        matrices = self.hardware_matrices(perturbations)
        return self._forward_with_matrices(features, matrices)

    # ------------------------------------------------------------------ #
    # inference: batched hardware (B uncertainty realizations at once)
    # ------------------------------------------------------------------ #
    def hardware_matrices_batch(
        self,
        perturbations: Optional[NetworkPerturbationBatch] = None,
        batch_size: Optional[int] = None,
        workspace=None,
    ) -> List[np.ndarray]:
        """Per-layer hardware matrices for ``B`` realizations, each ``(B, out, in)``.

        With a ``workspace`` every layer's mesh sweep, column scaling and
        final stacked matmul write into reusable arena buffers keyed per
        layer (bit-identical values); the matrices are then valid until the
        next workspace-backed call.
        """
        self._require_compiled()
        if perturbations is None:
            perturbations = [None] * self.num_linear_layers
        if len(perturbations) != self.num_linear_layers:
            raise ConfigurationError(
                f"expected {self.num_linear_layers} layer perturbations, got {len(perturbations)}"
            )
        if batch_size is None:
            for perturbation in perturbations:
                if perturbation is not None:
                    batch_size = perturbation.batch_size
                    break
            else:
                raise ValueError("batch_size is required when every layer perturbation is None")
        return [
            layer.matrix_batch(
                perturbation,
                batch_size=batch_size,
                workspace=workspace,
                workspace_key=("spnn/layer", index),
            )
            for index, (layer, perturbation) in enumerate(
                zip(self.photonic_layers, perturbations)
            )
        ]

    def forward_hardware_batch(
        self,
        features: np.ndarray,
        perturbations: Optional[NetworkPerturbationBatch] = None,
        batch_size: Optional[int] = None,
        workspace=None,
    ) -> np.ndarray:
        """Log-probabilities for ``B`` uncertainty realizations at once.

        Parameters
        ----------
        features:
            Evaluation set of shape ``(samples, input_size)`` (or a single
            1-D feature vector), shared by every realization.
        perturbations:
            One stacked perturbation per layer (``None`` = ideal layer);
            produced by :func:`stack_network_perturbations` or the
            ``*_batch`` samplers.
        batch_size:
            Required when ``perturbations`` is ``None`` or all-``None``.
        workspace:
            Optional :class:`~repro.training.workspace.VectorizedWorkspace`
            backing the activation buffers with reusable allocations.
            Values are bit-identical with and without it.

        Returns
        -------
        numpy.ndarray
            Log-probabilities of shape ``(B, samples, output_size)``,
            bit-identical to stacking ``B`` :meth:`forward_hardware` calls
            on the individual realizations.
        """
        matrices = self.hardware_matrices_batch(
            perturbations, batch_size=batch_size, workspace=workspace
        )
        return self._forward_batch_with_matrices(
            self._validated_features(features), matrices, workspace=workspace
        )

    def _validated_features(self, features: np.ndarray) -> np.ndarray:
        features = as_complex_array(features, "features")
        if features.ndim == 1:
            features = features[np.newaxis, :]
        if features.ndim != 2 or features.shape[1] != self.architecture.input_size:
            raise ShapeError(
                f"features must have shape (batch, {self.architecture.input_size}), got {features.shape}"
            )
        return features

    def _forward_batch_with_matrices(
        self, features: np.ndarray, matrices: Sequence[np.ndarray], workspace=None
    ) -> np.ndarray:
        """Forward pass of validated ``(samples, n)`` features through stacked matrices."""
        return _log_softmax(
            self._modulus_batch_with_matrices(features, matrices, workspace=workspace) ** 2
        )

    def _modulus_batch_with_matrices(
        self, features: np.ndarray, matrices: Sequence[np.ndarray], workspace=None
    ) -> np.ndarray:
        """Batched counterpart of :meth:`_modulus_with_matrices`, ``(B, samples, out)``.

        With a ``workspace`` the per-stage activation blocks (stacked
        matmul results, modulus and Softplus outputs) live in reusable
        arena buffers, one key per pipeline stage so no two live
        intermediates alias; every buffer is fully overwritten, keeping the
        values bit-identical to the allocating path.  The returned modulus
        may be a workspace view — valid until the next workspace-backed
        call.  Under a device array backend the features move across once
        (cached transfer) and the whole pipeline runs device-resident.
        """
        backend = active_array_backend()
        xp = backend.xp
        if not backend.is_host:
            features = backend.asarray_cached(features)
        activations = features[None, :, :]  # (1, samples, n) broadcasts over B
        last = len(matrices) - 1
        beta = self.architecture.softplus_beta
        for index, matrix in enumerate(matrices):
            out = None
            if workspace is not None:
                out = workspace.buffer(
                    ("spnn/matmul", index), _matmul_result_shape(activations, matrix), np.complex128
                )
            activations = _matmul_transposed(activations, matrix, out=out)
            if index != last:
                if workspace is not None:
                    modulus = xp.abs(
                        activations,
                        out=workspace.buffer(("spnn/modulus", index), activations.shape, np.float64),
                    )
                    activations = _softplus(
                        modulus,
                        beta=beta,
                        out=workspace.buffer(("spnn/softplus", index), activations.shape, np.float64),
                    )
                else:
                    activations = _softplus(xp.abs(activations), beta=beta)
        if workspace is not None:
            return xp.abs(
                activations,
                out=workspace.buffer(("spnn/modulus", last), activations.shape, np.float64),
            )
        return xp.abs(activations)

    def accuracy_batch(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        perturbations: Optional[NetworkPerturbationBatch] = None,
        batch_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
        workspace=None,
    ) -> np.ndarray:
        """Classification accuracy per realization, shape ``(B,)``.

        The perturbed hardware matrices are evaluated for the whole batch at
        once (they are small), while the forward pass over the evaluation
        set runs in chunks of ``chunk_size`` realizations so the activation
        workspace stays cache-resident; the chunk size is picked
        automatically when omitted.  Chunking does not change the results.
        A :class:`~repro.training.workspace.VectorizedWorkspace` passed as
        ``workspace`` recycles the per-chunk activation buffers across
        chunks (and across calls); results are bit-identical either way.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
        if labels.size == 0:
            raise ConfigurationError("cannot compute accuracy on an empty dataset")
        features = self._validated_features(features)
        if features.shape[0] != labels.shape[0]:
            raise ShapeError(
                f"features batch {features.shape[0]} does not match labels {labels.shape}"
            )
        backend = active_array_backend()
        xp = backend.xp
        matrices = self.hardware_matrices_batch(
            perturbations, batch_size=batch_size, workspace=workspace
        )
        batch = int(matrices[0].shape[0])
        if chunk_size is None:
            chunk_size = self._forward_chunk_size(features.shape[0])
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        device_labels = labels if backend.is_host else backend.asarray_cached(labels)
        accuracies = xp.empty(batch, dtype=xp.float64)
        for start in range(0, batch, chunk_size):
            stop = min(start + chunk_size, batch)
            # argmax over the output modulus equals argmax over the published
            # log-probabilities (see _modulus_with_matrices), so the
            # normalization is skipped on this hot path.
            modulus = self._modulus_batch_with_matrices(
                features, [matrix[start:stop] for matrix in matrices], workspace=workspace
            )
            predictions = xp.argmax(modulus, axis=-1)
            accuracies[start:stop] = xp.mean(predictions == device_labels[None, :], axis=1)
        return accuracies

    def _forward_chunk_size(self, num_samples: int, target_bytes: int = 8 * 1024 * 1024) -> int:
        """Realizations per forward chunk keeping activations near cache size."""
        width = max(self.architecture.layer_dims)
        bytes_per_realization = max(1, num_samples) * width * 16  # complex128
        return max(1, target_bytes // bytes_per_realization)

    # ------------------------------------------------------------------ #
    # shared forward pass
    # ------------------------------------------------------------------ #
    def _forward_with_matrices(self, features: np.ndarray, matrices: Sequence[np.ndarray]) -> np.ndarray:
        single = np.asarray(features).ndim == 1
        modulus = self._modulus_with_matrices(self._validated_features(features), matrices)
        log_probs = _kernels.log_softmax(np, modulus**2)
        return log_probs[0] if single else log_probs

    def _modulus_with_matrices(self, features: np.ndarray, matrices: Sequence[np.ndarray]) -> np.ndarray:
        """Output-field modulus of validated ``(samples, n)`` features.

        The modulus is the monotonic core of the readout: the published
        log-probabilities are ``log_softmax(modulus**2)``, and both squaring
        and log-softmax preserve per-row ``argmax`` exactly (floating-point
        squaring of non-negative values and subtracting a per-row constant
        are monotone), so prediction/accuracy helpers can consume the
        modulus directly and skip the normalization work.

        This is the single-realization reference path and is host-only by
        design (its matrices come from the host-only mesh evaluators), so
        the kernels are pinned to the NumPy namespace rather than the
        active backend — a scalar trial scheduled under ``GpuBackend``
        simply computes on the host.
        """
        activations = features
        last = len(matrices) - 1
        for index, matrix in enumerate(matrices):
            activations = _kernels.matmul_transposed(np, activations, matrix)
            if index != last:
                modulus = np.abs(activations)  # host-only path
                activations = _kernels.softplus(np, modulus, beta=self.architecture.softplus_beta)
        return np.abs(activations)  # host-only path

    # ------------------------------------------------------------------ #
    # prediction / accuracy helpers
    # ------------------------------------------------------------------ #
    def predict(
        self,
        features: np.ndarray,
        perturbations: Optional[NetworkPerturbation] = None,
        use_hardware: bool = True,
    ) -> np.ndarray:
        """Predicted class indices.

        Returns a ``(batch,)`` array for 2-D features and a scalar (0-D
        array) for a single 1-D feature vector, mirroring the shape
        convention of the forward passes.
        """
        if use_hardware:
            log_probs = self.forward_hardware(features, perturbations)
        else:
            log_probs = self.forward_software(features)
        return np.argmax(log_probs, axis=-1)  # host-only path

    def accuracy(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        perturbations: Optional[NetworkPerturbation] = None,
        use_hardware: bool = True,
    ) -> float:
        """Classification accuracy on ``(features, labels)``.

        Accepts a scalar label together with a single 1-D feature vector.
        """
        labels = np.asarray(labels, dtype=np.int64)
        single = np.asarray(features).ndim == 1
        matrices: Sequence[np.ndarray] = (
            self.hardware_matrices(perturbations) if use_hardware else self.weights
        )
        modulus = self._modulus_with_matrices(self._validated_features(features), matrices)
        # argmax over the modulus equals argmax over the log-probabilities
        # (see _modulus_with_matrices), matching predict() exactly.
        predictions = np.argmax(modulus, axis=-1)  # host-only path
        if single:
            predictions = predictions[0]
        if np.ndim(predictions) == 0 and labels.shape == (1,):
            predictions = np.asarray(predictions)[np.newaxis]
        if np.shape(predictions) != labels.shape:
            raise ShapeError(
                f"predictions shape {np.shape(predictions)} does not match labels {labels.shape}"
            )
        if labels.size == 0:
            raise ConfigurationError("cannot compute accuracy on an empty dataset")
        return float(np.mean(predictions == labels))  # host-only path

    def hardware_fidelity(self) -> float:
        """Max |difference| between nominal hardware matrices and the weights."""
        self._require_compiled()
        return max(layer.reconstruction_error() for layer in self.photonic_layers)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"SPNN(layer_dims={self.architecture.layer_dims}, "
            f"compiled={self.is_compiled})"
        )
