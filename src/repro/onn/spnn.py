"""System-level SPNN model: trained software network + photonic hardware twin.

The paper's SPNN (§III-D) is a fully connected feedforward network with two
hidden layers of 16 complex-valued neurons:

* input features: 16 complex values (4x4 center crop of the shifted FFT),
* linear layers of sizes 16x16, 16x16 and 16x10, each realized in hardware
  as ``U @ Sigma @ V^H`` MZI meshes (Clements design) with a gain stage,
* the non-linear Softplus applied to the modulus after each hidden linear
  layer,
* a squared-modulus intensity measurement after the output layer, followed
  by LogSoftMax.

:class:`SPNN` owns both views of this network: the *software* view (the
complex weight matrices, as trained) and the *hardware* view (the compiled
meshes), and evaluates inference through either one — with or without
uncertainty realizations — so that the accuracy impact of variations can be
measured exactly as in the paper's EXP 1 / EXP 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..mesh.svd_layer import LayerPerturbation, PhotonicLinearLayer
from ..utils.validation import as_complex_array

#: Network perturbation: one entry per linear layer (None = that layer ideal).
NetworkPerturbation = List[Optional[LayerPerturbation]]


@dataclass(frozen=True)
class SPNNArchitecture:
    """Architecture of the paper's SPNN.

    Parameters
    ----------
    layer_dims:
        Neuron counts per layer including input and output, e.g.
        ``(16, 16, 16, 10)`` for the paper's two-hidden-layer network.
    softplus_beta:
        Sharpness of the modulus-Softplus activation.
    scheme:
        Mesh topology used when compiling to hardware.
    """

    layer_dims: Tuple[int, ...] = (16, 16, 16, 10)
    softplus_beta: float = 1.0
    scheme: str = "clements"

    def __post_init__(self) -> None:
        if len(self.layer_dims) < 2:
            raise ConfigurationError("layer_dims must contain at least input and output sizes")
        if any(d < 1 for d in self.layer_dims):
            raise ConfigurationError(f"all layer dimensions must be >= 1, got {self.layer_dims}")
        if self.softplus_beta <= 0:
            raise ConfigurationError(f"softplus_beta must be positive, got {self.softplus_beta}")

    @property
    def num_linear_layers(self) -> int:
        return len(self.layer_dims) - 1

    @property
    def input_size(self) -> int:
        return self.layer_dims[0]

    @property
    def output_size(self) -> int:
        return self.layer_dims[-1]

    def weight_shapes(self) -> List[Tuple[int, int]]:
        """``(out, in)`` shapes of every linear layer."""
        return [
            (self.layer_dims[i + 1], self.layer_dims[i]) for i in range(self.num_linear_layers)
        ]


# --------------------------------------------------------------------------- #
# numerically stable real helpers (pure NumPy inference path)
# --------------------------------------------------------------------------- #


def _softplus(x: np.ndarray, beta: float = 1.0, threshold: float = 30.0) -> np.ndarray:
    scaled = beta * x
    return np.where(scaled > threshold, x, np.log1p(np.exp(np.minimum(scaled, threshold))) / beta)


def _log_softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - np.max(x, axis=-1, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))


class SPNN:
    """Silicon-photonic neural network: weights plus compiled MZI hardware.

    Parameters
    ----------
    weights:
        Complex weight matrices, one per linear layer, each of shape
        ``(out, in)`` and consistent with ``architecture.layer_dims``.
    architecture:
        Network architecture description.
    compile_hardware:
        When ``True`` (default) the weight matrices are immediately
        decomposed onto MZI meshes.  Pass ``False`` to delay compilation
        (e.g. while the software model is still being trained) and call
        :meth:`compile` later.
    """

    def __init__(
        self,
        weights: Sequence[np.ndarray],
        architecture: SPNNArchitecture = SPNNArchitecture(),
        compile_hardware: bool = True,
    ):
        expected_shapes = architecture.weight_shapes()
        if len(weights) != len(expected_shapes):
            raise ConfigurationError(
                f"expected {len(expected_shapes)} weight matrices, got {len(weights)}"
            )
        self.architecture = architecture
        self.weights: List[np.ndarray] = []
        for index, (weight, shape) in enumerate(zip(weights, expected_shapes)):
            weight = as_complex_array(weight, f"weights[{index}]")
            if weight.shape != shape:
                raise ShapeError(
                    f"weights[{index}] must have shape {shape}, got {weight.shape}"
                )
            self.weights.append(weight.copy())
        self.photonic_layers: List[PhotonicLinearLayer] = []
        if compile_hardware:
            self.compile()

    # ------------------------------------------------------------------ #
    # hardware compilation
    # ------------------------------------------------------------------ #
    def compile(self) -> "SPNN":
        """Decompose every weight matrix onto MZI meshes (idempotent)."""
        self.photonic_layers = [
            PhotonicLinearLayer(weight, scheme=self.architecture.scheme) for weight in self.weights
        ]
        return self

    @property
    def is_compiled(self) -> bool:
        return len(self.photonic_layers) == len(self.weights)

    def _require_compiled(self) -> None:
        if not self.is_compiled:
            raise ConfigurationError("SPNN hardware is not compiled; call compile() first")

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def num_linear_layers(self) -> int:
        return len(self.weights)

    def hardware_summary(self) -> Dict[str, int]:
        """MZI and phase-shifter counts across the whole network.

        For the paper's (16, 16, 16, 10) architecture this reports 687 MZIs
        and 1374 tunable phase shifters, matching the number quoted in the
        abstract.
        """
        self._require_compiled()
        total_mzis = sum(layer.num_mzis for layer in self.photonic_layers)
        per_layer = [layer.hardware_summary() for layer in self.photonic_layers]
        return {
            "num_linear_layers": self.num_linear_layers,
            "total_mzis": total_mzis,
            "total_phase_shifters": 2 * total_mzis,
            "unitary_mzis": sum(p["u_mzis"] + p["v_mzis"] for p in per_layer),
            "sigma_mzis": sum(p["sigma_mzis"] for p in per_layer),
        }

    def unitary_meshes(self) -> List[Tuple[str, "object"]]:
        """The six unitary multipliers with their paper-style names.

        Returns pairs like ``("U_L0", mesh)`` / ``("VH_L0", mesh)`` in layer
        order — the objects indexed by the EXP 2 heatmaps (Fig. 5a-f).
        """
        self._require_compiled()
        named = []
        for index, layer in enumerate(self.photonic_layers):
            named.append((f"U_L{index}", layer.mesh_u))
            named.append((f"VH_L{index}", layer.mesh_v))
        return named

    # ------------------------------------------------------------------ #
    # inference: software (ideal weights)
    # ------------------------------------------------------------------ #
    def forward_software(self, features: np.ndarray) -> np.ndarray:
        """Log-probabilities using the ideal (trained) weight matrices."""
        return self._forward_with_matrices(features, self.weights)

    # ------------------------------------------------------------------ #
    # inference: hardware (compiled meshes, optional uncertainties)
    # ------------------------------------------------------------------ #
    def hardware_matrices(
        self, perturbations: Optional[NetworkPerturbation] = None
    ) -> List[np.ndarray]:
        """The matrices the hardware implements under a perturbation realization."""
        self._require_compiled()
        if perturbations is None:
            perturbations = [None] * self.num_linear_layers
        if len(perturbations) != self.num_linear_layers:
            raise ConfigurationError(
                f"expected {self.num_linear_layers} layer perturbations, got {len(perturbations)}"
            )
        return [
            layer.matrix(perturbation)
            for layer, perturbation in zip(self.photonic_layers, perturbations)
        ]

    def forward_hardware(
        self,
        features: np.ndarray,
        perturbations: Optional[NetworkPerturbation] = None,
    ) -> np.ndarray:
        """Log-probabilities using the compiled hardware (optionally perturbed)."""
        matrices = self.hardware_matrices(perturbations)
        return self._forward_with_matrices(features, matrices)

    # ------------------------------------------------------------------ #
    # shared forward pass
    # ------------------------------------------------------------------ #
    def _forward_with_matrices(self, features: np.ndarray, matrices: Sequence[np.ndarray]) -> np.ndarray:
        features = as_complex_array(features, "features")
        single = features.ndim == 1
        if single:
            features = features[np.newaxis, :]
        if features.ndim != 2 or features.shape[1] != self.architecture.input_size:
            raise ShapeError(
                f"features must have shape (batch, {self.architecture.input_size}), got {features.shape}"
            )
        activations = features
        last = len(matrices) - 1
        for index, matrix in enumerate(matrices):
            activations = activations @ matrix.T
            if index != last:
                activations = _softplus(np.abs(activations), beta=self.architecture.softplus_beta)
                activations = activations.astype(np.complex128)
        intensities = np.abs(activations) ** 2
        log_probs = _log_softmax(intensities)
        return log_probs[0] if single else log_probs

    # ------------------------------------------------------------------ #
    # prediction / accuracy helpers
    # ------------------------------------------------------------------ #
    def predict(
        self,
        features: np.ndarray,
        perturbations: Optional[NetworkPerturbation] = None,
        use_hardware: bool = True,
    ) -> np.ndarray:
        """Predicted class indices."""
        if use_hardware:
            log_probs = self.forward_hardware(features, perturbations)
        else:
            log_probs = self.forward_software(features)
        return np.argmax(np.atleast_2d(log_probs), axis=-1)

    def accuracy(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        perturbations: Optional[NetworkPerturbation] = None,
        use_hardware: bool = True,
    ) -> float:
        """Classification accuracy on ``(features, labels)``."""
        labels = np.asarray(labels, dtype=np.int64)
        predictions = self.predict(features, perturbations, use_hardware=use_hardware)
        if predictions.shape != labels.shape:
            raise ShapeError(
                f"predictions shape {predictions.shape} does not match labels {labels.shape}"
            )
        if labels.size == 0:
            raise ConfigurationError("cannot compute accuracy on an empty dataset")
        return float(np.mean(predictions == labels))

    def hardware_fidelity(self) -> float:
        """Max |difference| between nominal hardware matrices and the weights."""
        self._require_compiled()
        return max(layer.reconstruction_error() for layer in self.photonic_layers)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"SPNN(layer_dims={self.architecture.layer_dims}, "
            f"compiled={self.is_compiled})"
        )
