"""System-level SPNN: architecture, builder pipeline and inference helpers."""

from .builder import (
    SPNNTask,
    SPNNTrainingConfig,
    build_software_model,
    build_trained_spnn,
    extract_weights,
    prepare_feature_sets,
    spnn_from_model,
    train_software_model,
)
from .inference import hardware_accuracy, monte_carlo_accuracy, predict_batched
from .spnn import (
    SPNN,
    NetworkPerturbation,
    NetworkPerturbationBatch,
    SPNNArchitecture,
    stack_network_perturbations,
)

__all__ = [
    "SPNN",
    "SPNNArchitecture",
    "NetworkPerturbation",
    "NetworkPerturbationBatch",
    "stack_network_perturbations",
    "SPNNTask",
    "SPNNTrainingConfig",
    "build_software_model",
    "train_software_model",
    "prepare_feature_sets",
    "extract_weights",
    "spnn_from_model",
    "build_trained_spnn",
    "hardware_accuracy",
    "monte_carlo_accuracy",
    "predict_batched",
]
