"""repro — Modeling Silicon-Photonic Neural Networks under Uncertainties.

A from-scratch Python reproduction of S. Banerjee, M. Nikdast and
K. Chakrabarty, *"Modeling Silicon-Photonic Neural Networks under
Uncertainties"* (DATE 2021, arXiv:2012.10594).

The package is organized as a hierarchy mirroring the paper's methodology:

* :mod:`repro.photonics` — component/device models (phase shifters, beam
  splitters, MZIs, gain stages) with uncertainty hooks,
* :mod:`repro.mesh` — Clements/Reck decompositions, programmable MZI
  meshes, the SVD-based photonic linear layer,
* :mod:`repro.onn` — the system-level SPNN (software twin + compiled
  hardware twin),
* :mod:`repro.variation` — Gaussian/zonal/correlated uncertainty models and
  thermal crosstalk,
* :mod:`repro.analysis` — RVD, sensitivity maps, Monte Carlo engine,
  criticality ranking, yield sweeps,
* :mod:`repro.arrays` — the device-agnostic array seam (pluggable ``xp``
  namespaces: NumPy reference, optional CuPy, strict mock device),
* :mod:`repro.execution` — pluggable backends (serial / multiprocess /
  gpu) that schedule the Monte Carlo chunks, bit-identical at every
  worker count (GPU: allclose at fixed seeds),
* :mod:`repro.experiments` — runners that regenerate every figure and
  headline number of the paper,
* substrates: :mod:`repro.autograd`, :mod:`repro.nn`, :mod:`repro.datasets`,
  :mod:`repro.utils`.
"""

from . import analysis, arrays, autograd, datasets, execution, mesh, nn, onn, photonics, training, utils, variation
from .analysis import (
    MonteCarloRunner,
    device_sensitivity_map,
    per_mzi_rvd_criticality,
    rvd,
    yield_sweep,
)
from .execution import GpuBackend, MultiprocessBackend, SerialBackend, resolve_backend
from .exceptions import (
    AutogradError,
    ConfigurationError,
    DecompositionError,
    ExperimentError,
    NotUnitaryError,
    ReproError,
    ShapeError,
    TrainingError,
    VariationModelError,
)
from .mesh import (
    DiagonalStage,
    LayerPerturbation,
    LayerPerturbationBatch,
    MeshPerturbation,
    MeshPerturbationBatch,
    MZIMesh,
    PhotonicLinearLayer,
    clements_decompose,
    reck_decompose,
)
from .onn import (
    SPNN,
    SPNNArchitecture,
    SPNNTask,
    SPNNTrainingConfig,
    build_trained_spnn,
    monte_carlo_accuracy,
    stack_network_perturbations,
)
from .photonics import MZI, BeamSplitter, PhaseShifter, mzi_transfer, mzi_transfer_nonideal
from .training import NoiseAwareTrainer, NoiseInjector, PerturbationSchedule
from .variation import (
    CorrelatedFPVModel,
    ThermalCrosstalkModel,
    UncertaintyModel,
    ZoneGrid,
    sample_network_perturbation,
    sample_network_perturbation_batch,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "analysis",
    "arrays",
    "autograd",
    "datasets",
    "execution",
    "mesh",
    "nn",
    "onn",
    "photonics",
    "training",
    "utils",
    "variation",
    # exceptions
    "ReproError",
    "ShapeError",
    "NotUnitaryError",
    "DecompositionError",
    "ConfigurationError",
    "AutogradError",
    "TrainingError",
    "VariationModelError",
    "ExperimentError",
    # frequently used API
    "PhaseShifter",
    "BeamSplitter",
    "MZI",
    "mzi_transfer",
    "mzi_transfer_nonideal",
    "MZIMesh",
    "MeshPerturbation",
    "MeshPerturbationBatch",
    "DiagonalStage",
    "PhotonicLinearLayer",
    "LayerPerturbation",
    "LayerPerturbationBatch",
    "clements_decompose",
    "reck_decompose",
    "SPNN",
    "SPNNArchitecture",
    "SPNNTask",
    "SPNNTrainingConfig",
    "build_trained_spnn",
    "monte_carlo_accuracy",
    "stack_network_perturbations",
    "UncertaintyModel",
    "ZoneGrid",
    "ThermalCrosstalkModel",
    "CorrelatedFPVModel",
    "sample_network_perturbation",
    "sample_network_perturbation_batch",
    "rvd",
    "device_sensitivity_map",
    "per_mzi_rvd_criticality",
    "MonteCarloRunner",
    "yield_sweep",
    "SerialBackend",
    "MultiprocessBackend",
    "GpuBackend",
    "resolve_backend",
    "NoiseInjector",
    "PerturbationSchedule",
    "NoiseAwareTrainer",
]
