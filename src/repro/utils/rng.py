"""Random-number-generator helpers.

Every stochastic routine in the library accepts a ``rng`` argument that may
be ``None``, an integer seed, or a :class:`numpy.random.Generator`.  This
module centralizes the conversion so that Monte Carlo experiments are
reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for a freshly seeded generator, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator (which
        is returned unchanged).

    Examples
    --------
    >>> gen = ensure_rng(1234)
    >>> float(gen.standard_normal()) == float(ensure_rng(1234).standard_normal())
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, an int seed, a SeedSequence or a Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: RNGLike, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used by the Monte Carlo engine so that each iteration draws from an
    independent stream regardless of evaluation order.  Children are derived
    with :meth:`numpy.random.SeedSequence.spawn`, the mechanism NumPy
    provides for collision-free stream splitting: each child gets a distinct
    spawn key that is mixed into the seed material, so no two children can
    collide no matter how many are spawned.

    Repeated calls with the same *stateful* parent (a ``Generator`` or
    ``SeedSequence`` object) yield fresh, still-independent children, while
    repeated calls with the same ``int`` seed reproduce the same children.

    .. note:: **Compatibility.** Earlier versions derived child seeds by
       drawing int64 values from the parent generator
       (``parent.integers(0, 2**63 - 1)``).  That scheme had a
       birthday-collision risk between "independent" streams (~1e-7 already
       at one million children) and could never produce the top seed value.
       The spawn-based derivation fixes both, but the concrete sample values
       of every seeded Monte Carlo run shift relative to those versions.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(rng, np.random.Generator):
        return list(rng.spawn(count))
    if isinstance(rng, np.random.SeedSequence):
        sequence = rng
    elif rng is None or isinstance(rng, (int, np.integer)):
        sequence = np.random.SeedSequence(rng)
    else:
        raise TypeError(
            f"rng must be None, an int seed, a SeedSequence or a Generator, got {type(rng)!r}"
        )
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
