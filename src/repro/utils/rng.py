"""Random-number-generator helpers.

Every stochastic routine in the library accepts a ``rng`` argument that may
be ``None``, an integer seed, or a :class:`numpy.random.Generator`.  This
module centralizes the conversion so that Monte Carlo experiments are
reproducible end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for a freshly seeded generator, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator (which
        is returned unchanged).

    Examples
    --------
    >>> gen = ensure_rng(1234)
    >>> float(gen.standard_normal()) == float(ensure_rng(1234).standard_normal())
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, an int seed, a SeedSequence or a Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: RNGLike, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used by the Monte Carlo engine so that each iteration draws from an
    independent stream regardless of evaluation order.  Children are derived
    with :meth:`numpy.random.SeedSequence.spawn`, the mechanism NumPy
    provides for collision-free stream splitting: each child gets a distinct
    spawn key that is mixed into the seed material, so no two children can
    collide no matter how many are spawned.

    Repeated calls with the same *stateful* parent (a ``Generator`` or
    ``SeedSequence`` object) yield fresh, still-independent children, while
    repeated calls with the same ``int`` seed reproduce the same children.

    .. note:: **Compatibility.** Earlier versions derived child seeds by
       drawing int64 values from the parent generator
       (``parent.integers(0, 2**63 - 1)``).  That scheme had a
       birthday-collision risk between "independent" streams (~1e-7 already
       at one million children) and could never produce the top seed value.
       The spawn-based derivation fixes both, but the concrete sample values
       of every seeded Monte Carlo run shift relative to those versions.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(rng, np.random.Generator):
        return list(rng.spawn(count))
    if isinstance(rng, np.random.SeedSequence):
        sequence = rng
    elif rng is None or isinstance(rng, (int, np.integer)):
        sequence = np.random.SeedSequence(rng)
    else:
        raise TypeError(
            f"rng must be None, an int seed, a SeedSequence or a Generator, got {type(rng)!r}"
        )
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


# --------------------------------------------------------------------------- #
# compact child-stream payloads for worker processes
# --------------------------------------------------------------------------- #

#: Either a materialized run of child generators or its compact recipe.
StreamsLike = Union[Sequence[np.random.Generator], "StreamSlice"]


@dataclass(frozen=True)
class StreamSlice:
    """Picklable ``(seed, count)`` recipe for a run of spawned child streams.

    A chunk of ``spawn_rngs`` children is fully determined by the parent's
    seed material plus the range of spawn indices: NumPy derives child
    ``i`` of a parent :class:`~numpy.random.SeedSequence` as
    ``SeedSequence(entropy, spawn_key=parent.spawn_key + (i,))``.  Shipping
    that recipe instead of the pickled generators shrinks a Monte Carlo
    chunk's stream payload from ~75 bytes per realization to O(100) bytes
    per *chunk*, and the workers rebuild generators bit-identical to the
    parent's — the RNG-equivalence guarantee is untouched because the
    recipe names exactly the same seed material.

    Instances are built with :meth:`from_generators` from freshly spawned
    children (it verifies the run is contiguous and untouched, returning
    ``None`` for anything it cannot prove equivalent) and materialized in
    the workers with :meth:`generators` / :func:`materialize_streams`.
    """

    entropy: object
    spawn_key: Tuple[int, ...]
    first: int
    count: int
    pool_size: int = 4
    bit_generator: str = "PCG64"

    def __len__(self) -> int:
        return self.count

    def seed_sequences(self) -> List[np.random.SeedSequence]:
        """The child seed sequences the slice describes."""
        return [
            np.random.SeedSequence(
                entropy=self.entropy,
                spawn_key=self.spawn_key + (index,),
                pool_size=self.pool_size,
            )
            for index in range(self.first, self.first + self.count)
        ]

    def generators(self) -> List[np.random.Generator]:
        """Materialize the child generators, bit-identical to the originals."""
        bit_generator_cls = getattr(np.random, self.bit_generator)
        return [
            np.random.Generator(bit_generator_cls(sequence))
            for sequence in self.seed_sequences()
        ]

    @classmethod
    def from_generators(
        cls, generators: Sequence[np.random.Generator], trust_fresh: bool = False
    ) -> Optional["StreamSlice"]:
        """Compress a run of spawned child generators, or ``None``.

        Succeeds only when every generator wraps a seed sequence spawned
        from one common parent, with consecutive spawn indices — i.e. a
        contiguous slice of one ``spawn_rngs``/``SeedSequence.spawn`` call
        — and (unless ``trust_fresh``) its bit generator is still in the
        freshly seeded state, so the reconstruction is provably
        bit-identical.  Callers that just spawned the children (the Monte
        Carlo scheduler) pass ``trust_fresh=True`` to skip the state
        comparison.
        """
        generators = list(generators)
        if not generators:
            return None
        keys = []
        for generator in generators:
            if not isinstance(generator, np.random.Generator):
                return None
            sequence = getattr(generator.bit_generator, "seed_seq", None)
            if not isinstance(sequence, np.random.SeedSequence) or not sequence.spawn_key:
                return None
            keys.append(sequence)
        head = keys[0]
        parent_key = tuple(head.spawn_key[:-1])
        first = int(head.spawn_key[-1])
        bit_generator = type(generators[0].bit_generator).__name__
        for offset, (generator, sequence) in enumerate(zip(generators, keys)):
            if (
                type(generator.bit_generator).__name__ != bit_generator
                or sequence.entropy != head.entropy
                or sequence.pool_size != head.pool_size
                or tuple(sequence.spawn_key[:-1]) != parent_key
                or int(sequence.spawn_key[-1]) != first + offset
                or sequence.n_children_spawned != 0
            ):
                return None
        slice_ = cls(
            entropy=head.entropy,
            spawn_key=parent_key,
            first=first,
            count=len(generators),
            pool_size=int(head.pool_size),
            bit_generator=bit_generator,
        )
        if not trust_fresh:
            rebuilt = slice_.generators()
            if any(
                original.bit_generator.state != copy.bit_generator.state
                for original, copy in zip(generators, rebuilt)
            ):
                return None
        return slice_


def materialize_streams(streams: StreamsLike) -> List[np.random.Generator]:
    """Child generators from either form of a chunk's stream payload.

    Worker-side counterpart of :meth:`StreamSlice.from_generators`: accepts
    the compact slice (rebuilding the generators from seed material) or an
    already-materialized sequence (returned as a list, unchanged).
    """
    if isinstance(streams, StreamSlice):
        return streams.generators()
    return list(streams)
