"""Serialization helpers for experiment results.

Experiment runners return plain dataclasses / dictionaries of NumPy arrays.
These helpers persist them as JSON (human-readable summaries) or ``.npz``
(full numeric payloads) so that benchmark runs can be archived and compared
against the paper's reported numbers.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np


def _to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _to_jsonable(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        if np.iscomplexobj(value):
            return {"real": value.real.tolist(), "imag": value.imag.tolist(), "__complex_array__": True}
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, complex):
        return {"real": value.real, "imag": value.imag, "__complex__": True}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    return value


def to_jsonable(value: Any) -> Any:
    """Public wrapper around the recursive JSON conversion."""
    return _to_jsonable(value)


def save_json(data: Any, path: str | Path, indent: int = 2) -> Path:
    """Write ``data`` (dataclass / dict / arrays) to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(_to_jsonable(data), handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON document previously written by :func:`save_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_arrays(path: str | Path, **arrays: np.ndarray) -> Path:
    """Save named arrays to a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_arrays(path: str | Path) -> dict[str, np.ndarray]:
    """Load arrays from an ``.npz`` archive into a plain dictionary."""
    with np.load(Path(path)) as data:
        return {key: data[key] for key in data.files}


def format_table(headers: list[str], rows: list[list[Any]], float_fmt: str = "{:.4f}") -> str:
    """Render a small ASCII table (used by CLI experiment reports)."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, (float, np.floating)):
                rendered.append(float_fmt.format(float(cell)))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def _line(cells: list[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    sep = "-+-".join("-" * w for w in widths)
    lines = [_line(headers), sep]
    lines.extend(_line(row) for row in rendered_rows)
    return "\n".join(lines)
