"""Light-weight argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import ShapeError


def as_complex_array(value, name: str = "array") -> np.ndarray:
    """Convert ``value`` to a ``complex128`` NumPy array.

    Raises
    ------
    ShapeError
        If the value cannot be interpreted as a numeric array.
    """
    try:
        arr = np.asarray(value, dtype=np.complex128)
    except (TypeError, ValueError) as exc:
        raise ShapeError(f"{name} cannot be converted to a complex array: {exc}") from exc
    return arr


def as_float_array(value, name: str = "array") -> np.ndarray:
    """Convert ``value`` to a ``float64`` NumPy array."""
    try:
        arr = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ShapeError(f"{name} cannot be converted to a float array: {exc}") from exc
    return arr


def check_square_matrix(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Ensure ``matrix`` is a 2-D square array and return it."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ShapeError(f"{name} must be a square 2-D matrix, got shape {matrix.shape}")
    return matrix


def check_matrix_shape(matrix: np.ndarray, shape: Sequence[int], name: str = "matrix") -> np.ndarray:
    """Ensure ``matrix`` has exactly ``shape``."""
    matrix = np.asarray(matrix)
    if tuple(matrix.shape) != tuple(shape):
        raise ShapeError(f"{name} must have shape {tuple(shape)}, got {matrix.shape}")
    return matrix


def check_positive(value: float, name: str = "value", allow_zero: bool = False) -> float:
    """Ensure a scalar is positive (or non-negative when ``allow_zero``)."""
    value = float(value)
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_in_range(value: float, low: float, high: float, name: str = "value") -> float:
    """Ensure ``low <= value <= high``."""
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_probability_vector(vector: np.ndarray, name: str = "probabilities", atol: float = 1e-6) -> np.ndarray:
    """Ensure a vector is a valid probability distribution."""
    vector = as_float_array(vector, name)
    if vector.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {vector.shape}")
    if np.any(vector < -atol):
        raise ValueError(f"{name} contains negative entries")
    if not np.isclose(vector.sum(), 1.0, atol=atol):
        raise ValueError(f"{name} must sum to 1, got {vector.sum()}")
    return vector


def check_index(index: int, size: int, name: str = "index") -> int:
    """Ensure ``0 <= index < size`` and return ``index`` as ``int``."""
    index = int(index)
    if not 0 <= index < size:
        raise IndexError(f"{name} must be in [0, {size}), got {index}")
    return index


def check_lengths_match(*sequences: Iterable, names: Sequence[str] | None = None) -> None:
    """Ensure all sequences have the same length."""
    lengths = [len(list(s)) if not hasattr(s, "__len__") else len(s) for s in sequences]
    if len(set(lengths)) > 1:
        labels = names if names is not None else [f"arg{i}" for i in range(len(sequences))]
        detail = ", ".join(f"{label}={length}" for label, length in zip(labels, lengths))
        raise ShapeError(f"sequence lengths differ: {detail}")
