"""Linear-algebra utilities used throughout the photonic-mesh machinery.

The functions here are intentionally small, pure and NumPy-only: Haar-random
unitary sampling, unitarity checks, matrix distances and SVD helpers used by
the SVD-based photonic linear layers (paper §II-B).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import NotUnitaryError, ShapeError
from .rng import RNGLike, ensure_rng
from .validation import as_complex_array, check_square_matrix

#: Default absolute tolerance for unitarity checks.
DEFAULT_UNITARY_ATOL = 1e-8


def random_unitary(n: int, rng: RNGLike = None) -> np.ndarray:
    """Draw an ``n x n`` unitary matrix from the Haar measure.

    Uses the QR-based construction of Mezzadri (2007): a complex Ginibre
    matrix is QR-factorized and the phases of R's diagonal are absorbed into
    Q so that the distribution is exactly Haar.

    Parameters
    ----------
    n:
        Matrix dimension (``n >= 1``).
    rng:
        Seed or generator for reproducibility.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    gen = ensure_rng(rng)
    z = (gen.standard_normal((n, n)) + 1j * gen.standard_normal((n, n))) / np.sqrt(2.0)
    q, r = np.linalg.qr(z)
    diag = np.diagonal(r)
    phases = diag / np.abs(diag)
    return q * phases[np.newaxis, :]


def random_complex_matrix(rows: int, cols: int, rng: RNGLike = None, scale: float = 1.0) -> np.ndarray:
    """Draw a dense complex Gaussian matrix with the given standard deviation."""
    if rows < 1 or cols < 1:
        raise ValueError(f"rows and cols must be >= 1, got {rows}x{cols}")
    gen = ensure_rng(rng)
    return scale * (gen.standard_normal((rows, cols)) + 1j * gen.standard_normal((rows, cols))) / np.sqrt(2.0)


def is_unitary(matrix: np.ndarray, atol: float = DEFAULT_UNITARY_ATOL) -> bool:
    """Return ``True`` when ``matrix`` is unitary within ``atol``."""
    matrix = as_complex_array(matrix, "matrix")
    matrix = check_square_matrix(matrix, "matrix")
    identity = np.eye(matrix.shape[0], dtype=np.complex128)
    return bool(
        np.allclose(matrix.conj().T @ matrix, identity, atol=atol)
        and np.allclose(matrix @ matrix.conj().T, identity, atol=atol)
    )


def assert_unitary(matrix: np.ndarray, atol: float = DEFAULT_UNITARY_ATOL, name: str = "matrix") -> np.ndarray:
    """Validate unitarity and return the matrix as ``complex128``.

    Raises
    ------
    NotUnitaryError
        If the deviation from unitarity exceeds ``atol``.
    """
    matrix = as_complex_array(matrix, name)
    matrix = check_square_matrix(matrix, name)
    if not is_unitary(matrix, atol=atol):
        deviation = unitarity_deviation(matrix)
        raise NotUnitaryError(f"{name} is not unitary (max deviation {deviation:.3e}, atol {atol:.1e})")
    return matrix


def unitarity_deviation(matrix: np.ndarray) -> float:
    """Return ``max |M^H M - I|`` as a scalar measure of non-unitarity."""
    matrix = as_complex_array(matrix, "matrix")
    matrix = check_square_matrix(matrix, "matrix")
    identity = np.eye(matrix.shape[0], dtype=np.complex128)
    return float(np.max(np.abs(matrix.conj().T @ matrix - identity)))


def fidelity(actual: np.ndarray, target: np.ndarray) -> float:
    """Normalized matrix fidelity ``|Tr(T^H A)|^2 / (N * Tr(A^H A))``.

    Equals 1 when ``actual`` matches ``target`` up to a global phase, which
    is the natural equivalence for interferometer meshes.
    """
    actual = as_complex_array(actual, "actual")
    target = as_complex_array(target, "target")
    if actual.shape != target.shape:
        raise ShapeError(f"shape mismatch: actual {actual.shape} vs target {target.shape}")
    num = np.abs(np.trace(target.conj().T @ actual)) ** 2
    den = actual.shape[0] * np.abs(np.trace(actual.conj().T @ actual))
    if den == 0:
        return 0.0
    return float(num / den)


def frobenius_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Frobenius-norm distance ``||a - b||_F``."""
    a = as_complex_array(a, "a")
    b = as_complex_array(b, "b")
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.linalg.norm(a - b))


def relative_frobenius_distance(actual: np.ndarray, target: np.ndarray) -> float:
    """``||actual - target||_F / ||target||_F`` (0 when both are zero)."""
    target = as_complex_array(target, "target")
    norm = np.linalg.norm(target)
    if norm == 0:
        return 0.0 if np.linalg.norm(as_complex_array(actual, "actual")) == 0 else np.inf
    return frobenius_distance(actual, target) / float(norm)


def svd_decompose(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Singular-value decomposition ``M = U @ diag(s) @ Vh`` (full matrices).

    Returns square unitary ``U`` (m x m), singular values ``s`` (length
    ``min(m, n)``) and square unitary ``Vh`` (n x n), matching the way the
    paper maps a weight matrix onto two unitary MZI meshes and a diagonal
    stage (§II-B).
    """
    matrix = as_complex_array(matrix, "matrix")
    if matrix.ndim != 2:
        raise ShapeError(f"matrix must be 2-D, got shape {matrix.shape}")
    u, s, vh = np.linalg.svd(matrix, full_matrices=True)
    return u, s, vh


def svd_reconstruct(u: np.ndarray, s: np.ndarray, vh: np.ndarray) -> np.ndarray:
    """Rebuild ``M`` from the output of :func:`svd_decompose`."""
    u = as_complex_array(u, "u")
    vh = as_complex_array(vh, "vh")
    s = np.asarray(s, dtype=np.float64)
    m, n = u.shape[0], vh.shape[0]
    sigma = np.zeros((m, n), dtype=np.complex128)
    k = min(m, n)
    if s.shape != (k,):
        raise ShapeError(f"singular values must have length {k}, got shape {s.shape}")
    sigma[:k, :k] = np.diag(s)
    return u @ sigma @ vh


def embed_two_mode_block(n: int, m: int, block: np.ndarray) -> np.ndarray:
    """Embed a 2x2 ``block`` acting on modes ``(m, m+1)`` into an ``n x n`` identity."""
    block = as_complex_array(block, "block")
    if block.shape != (2, 2):
        raise ShapeError(f"block must be 2x2, got {block.shape}")
    if not 0 <= m < n - 1:
        raise IndexError(f"mode index m must satisfy 0 <= m < n-1, got m={m}, n={n}")
    full = np.eye(n, dtype=np.complex128)
    full[m : m + 2, m : m + 2] = block
    return full


def apply_two_mode_left(matrix: np.ndarray, m: int, block: np.ndarray) -> np.ndarray:
    """Return ``embed(block) @ matrix`` without forming the embedded matrix."""
    matrix = as_complex_array(matrix, "matrix")
    block = as_complex_array(block, "block")
    out = matrix.copy()
    rows = matrix[m : m + 2, :]
    out[m : m + 2, :] = block @ rows
    return out


def apply_two_mode_right(matrix: np.ndarray, m: int, block: np.ndarray) -> np.ndarray:
    """Return ``matrix @ embed(block)`` without forming the embedded matrix."""
    matrix = as_complex_array(matrix, "matrix")
    block = as_complex_array(block, "block")
    out = matrix.copy()
    cols = matrix[:, m : m + 2]
    out[:, m : m + 2] = cols @ block
    return out


def global_phase_aligned(actual: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Rotate ``actual`` by a global phase so it best matches ``target``.

    The optimal phase maximizes ``Re(e^{-i a} Tr(T^H A))``; it is the phase
    of the trace inner product.
    """
    actual = as_complex_array(actual, "actual")
    target = as_complex_array(target, "target")
    inner = np.trace(target.conj().T @ actual)
    if np.abs(inner) == 0:
        return actual
    return actual * np.exp(-1j * np.angle(inner))


def condition_number(matrix: np.ndarray) -> float:
    """2-norm condition number of a matrix (``inf`` for singular matrices)."""
    matrix = as_complex_array(matrix, "matrix")
    s = np.linalg.svd(matrix, compute_uv=False)
    if s[-1] == 0:
        return float("inf")
    return float(s[0] / s[-1])
