"""Mini-batch training loop for the SPNN software model.

The paper trains the complex-valued network in software (with a
cross-entropy loss) and then maps the trained weight matrices onto MZI
meshes.  :class:`Trainer` performs that software training step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from ..autograd.tensor import Tensor
from ..exceptions import TrainingError
from ..utils.rng import RNGLike, ensure_rng
from .losses import CrossEntropyLoss
from .metrics import RunningAverage, TrainingHistory, top1_accuracy
from .module import Module
from .optim import Optimizer


def iterate_minibatches(
    features: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    rng: RNGLike = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(batch_features, batch_targets)`` minibatches.

    The final partial batch is always yielded so every sample is seen once
    per epoch.
    """
    features = np.asarray(features)
    targets = np.asarray(targets)
    if len(features) != len(targets):
        raise TrainingError(f"features ({len(features)}) and targets ({len(targets)}) lengths differ")
    if len(features) == 0:
        raise TrainingError("cannot iterate over an empty dataset")
    if batch_size < 1:
        raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
    indices = np.arange(len(features))
    if shuffle:
        ensure_rng(rng).shuffle(indices)
    for start in range(0, len(indices), batch_size):
        batch = indices[start : start + batch_size]
        yield features[batch], targets[batch]


@dataclass
class TrainerConfig:
    """Hyper-parameters for :class:`Trainer`."""

    epochs: int = 10
    batch_size: int = 64
    shuffle: bool = True
    log_every: int = 0  # 0 disables progress printing
    clip_grad_norm: Optional[float] = None


class Trainer:
    """Trains a :class:`Module` classifier with an :class:`Optimizer`.

    Parameters
    ----------
    model:
        The network; its output must be log-probabilities or logits
        compatible with ``loss_fn``.
    optimizer:
        Optimizer instance bound to ``model.parameters()``.
    loss_fn:
        Loss module/callable taking ``(outputs, targets)``.  Defaults to
        cross-entropy over log-probabilities (the paper's setup, where the
        model ends with LogSoftMax).
    config:
        Loop hyper-parameters.
    rng:
        Seed controlling batch shuffling.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Optional[Callable] = None,
        config: Optional[TrainerConfig] = None,
        rng: RNGLike = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn if loss_fn is not None else CrossEntropyLoss(from_log_probs=True)
        self.config = config if config is not None else TrainerConfig()
        self.rng = ensure_rng(rng)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    def _clip_gradients(self) -> None:
        max_norm = self.config.clip_grad_norm
        if max_norm is None:
            return
        total = 0.0
        for param in self.optimizer.parameters:
            if param.grad is not None:
                total += float(np.sum(np.abs(param.grad) ** 2))
        norm = np.sqrt(total)
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.optimizer.parameters:
                if param.grad is not None:
                    param.grad = param.grad * scale

    def train_epoch(self, features: np.ndarray, targets: np.ndarray) -> Tuple[float, float]:
        """Run one epoch; returns ``(mean_loss, mean_accuracy)``."""
        self.model.train()
        loss_avg = RunningAverage()
        acc_avg = RunningAverage()
        for batch_x, batch_y in iterate_minibatches(
            features, targets, self.config.batch_size, shuffle=self.config.shuffle, rng=self.rng
        ):
            self.optimizer.zero_grad()
            outputs = self.model(Tensor(batch_x))
            loss = self.loss_fn(outputs, batch_y)
            loss.backward()
            self._clip_gradients()
            self.optimizer.step()
            loss_avg.update(float(np.real(loss.item())), weight=len(batch_y))
            acc_avg.update(top1_accuracy(outputs, batch_y), weight=len(batch_y))
        return loss_avg.value, acc_avg.value

    def evaluate(self, features: np.ndarray, targets: np.ndarray, batch_size: Optional[int] = None) -> Tuple[float, float]:
        """Return ``(mean_loss, accuracy)`` on a held-out set (no updates)."""
        self.model.eval()
        batch_size = batch_size or self.config.batch_size
        loss_avg = RunningAverage()
        acc_avg = RunningAverage()
        for batch_x, batch_y in iterate_minibatches(features, targets, batch_size, shuffle=False):
            outputs = self.model(Tensor(batch_x))
            loss = self.loss_fn(outputs, batch_y)
            loss_avg.update(float(np.real(loss.item())), weight=len(batch_y))
            acc_avg.update(top1_accuracy(outputs, batch_y), weight=len(batch_y))
        return loss_avg.value, acc_avg.value

    def fit(
        self,
        train_features: np.ndarray,
        train_targets: np.ndarray,
        val_features: Optional[np.ndarray] = None,
        val_targets: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train for ``config.epochs`` epochs and return the history."""
        for epoch in range(self.config.epochs):
            train_loss, train_acc = self.train_epoch(train_features, train_targets)
            if val_features is not None and val_targets is not None:
                val_loss, val_acc = self.evaluate(val_features, val_targets)
            else:
                val_loss, val_acc = None, None
            self.history.record(train_loss, train_acc, val_loss, val_acc)
            if self.config.log_every and (epoch + 1) % self.config.log_every == 0:
                message = f"epoch {epoch + 1:3d}: train loss {train_loss:.4f}, train acc {train_acc:.3f}"
                if val_acc is not None:
                    message += f", val acc {val_acc:.3f}"
                print(message)
            if not np.isfinite(train_loss):
                raise TrainingError(f"training diverged at epoch {epoch + 1} (loss={train_loss})")
        return self.history
