"""Mini-batch training loop for the SPNN software model.

The paper trains the complex-valued network in software (with a
cross-entropy loss) and then maps the trained weight matrices onto MZI
meshes.  :class:`Trainer` performs that software training step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from ..autograd.tensor import Tensor
from ..exceptions import TrainingError
from ..observability.progress import emit_epoch
from ..utils.rng import RNGLike, ensure_rng
from .losses import CrossEntropyLoss
from .metrics import RunningAverage, TrainingHistory, top1_accuracy
from .module import Module
from .optim import Optimizer

#: Early-stop hook signature: receives the history accumulated so far
#: (including the epoch just finished) and returns ``True`` to stop training.
EarlyStopFn = Callable[[TrainingHistory], bool]


def iterate_minibatches(
    features: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    rng: RNGLike = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(batch_features, batch_targets)`` minibatches.

    The final partial batch is always yielded so every sample is seen once
    per epoch.
    """
    features = np.asarray(features)
    targets = np.asarray(targets)
    if len(features) != len(targets):
        raise TrainingError(f"features ({len(features)}) and targets ({len(targets)}) lengths differ")
    if len(features) == 0:
        raise TrainingError("cannot iterate over an empty dataset")
    if batch_size < 1:
        raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
    indices = np.arange(len(features))
    if shuffle:
        ensure_rng(rng).shuffle(indices)
    for start in range(0, len(indices), batch_size):
        batch = indices[start : start + batch_size]
        yield features[batch], targets[batch]


@dataclass
class TrainerConfig:
    """Hyper-parameters for :class:`Trainer`."""

    epochs: int = 10
    batch_size: int = 64
    shuffle: bool = True
    log_every: int = 0  # 0 disables progress printing
    clip_grad_norm: Optional[float] = None


class Trainer:
    """Trains a :class:`Module` classifier with an :class:`Optimizer`.

    Parameters
    ----------
    model:
        The network; its output must be log-probabilities or logits
        compatible with ``loss_fn``.
    optimizer:
        Optimizer instance bound to ``model.parameters()``.
    loss_fn:
        Loss module/callable taking ``(outputs, targets)``.  Defaults to
        cross-entropy over log-probabilities (the paper's setup, where the
        model ends with LogSoftMax).
    config:
        Loop hyper-parameters.
    rng:
        Seed controlling batch shuffling.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Optional[Callable] = None,
        config: Optional[TrainerConfig] = None,
        rng: RNGLike = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn if loss_fn is not None else CrossEntropyLoss(from_log_probs=True)
        self.config = config if config is not None else TrainerConfig()
        self.rng = ensure_rng(rng)
        self.history = TrainingHistory()
        #: Index of the epoch currently being trained (set by :meth:`fit`);
        #: subclasses may read it inside :meth:`training_step` (e.g. to
        #: evaluate a perturbation schedule).
        self.epoch = 0

    # ------------------------------------------------------------------ #
    def _clip_gradients(self) -> None:
        max_norm = self.config.clip_grad_norm
        if max_norm is None:
            return
        total = 0.0
        for param in self.optimizer.parameters:
            if param.grad is not None:
                total += float(np.sum(np.abs(param.grad) ** 2))
        norm = np.sqrt(total)
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.optimizer.parameters:
                if param.grad is not None:
                    param.grad = param.grad * scale

    def _progress_extra(self) -> dict:
        """Extra fields for the structured per-epoch progress record.

        Subclasses append what only they know — the noise-aware trainer
        reports injector recompile counters and the scheduled sigma scale.
        """
        return {}

    def training_step(self, batch_x: np.ndarray, batch_y: np.ndarray) -> Tuple[Tensor, Tensor, np.ndarray]:
        """Forward pass + loss for one minibatch.

        Returns ``(loss, outputs, targets)`` where ``targets`` are the labels
        matching ``outputs`` row for row.  Subclasses override this single
        hook to change how the loss is computed (e.g. noise-injected
        training averages the loss over several perturbation draws and
        returns the correspondingly tiled targets) while reusing the
        epoch loop, gradient clipping and bookkeeping of the base class.
        """
        outputs = self.model(Tensor(batch_x))
        loss = self.loss_fn(outputs, batch_y)
        return loss, outputs, batch_y

    def train_epoch(self, features: np.ndarray, targets: np.ndarray) -> Tuple[float, float]:
        """Run one epoch; returns ``(mean_loss, mean_accuracy)``."""
        self.model.train()
        loss_avg = RunningAverage()
        acc_avg = RunningAverage()
        for batch_x, batch_y in iterate_minibatches(
            features, targets, self.config.batch_size, shuffle=self.config.shuffle, rng=self.rng
        ):
            self.optimizer.zero_grad()
            loss, outputs, step_targets = self.training_step(batch_x, batch_y)
            loss.backward()
            self._clip_gradients()
            self.optimizer.step()
            loss_avg.update(float(np.real(loss.item())), weight=len(batch_y))
            acc_avg.update(top1_accuracy(outputs, step_targets), weight=len(batch_y))
        return loss_avg.value, acc_avg.value

    def evaluate(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        batch_size: Optional[int] = None,
        shuffle: bool = False,
        rng: RNGLike = None,
        max_batches: Optional[int] = None,
    ) -> Tuple[float, float]:
        """Return ``(mean_loss, accuracy)`` on a held-out set (no updates).

        Parameters
        ----------
        features, targets:
            Evaluation set.
        batch_size:
            Evaluation batch size (defaults to the training batch size).
        shuffle, rng:
            Seedable batch order: with ``shuffle=True`` the batches are
            drawn in a reproducible random order controlled by ``rng`` —
            combined with ``max_batches`` this evaluates a seeded random
            subsample (cheap periodic validation on large sets).
        max_batches:
            Stop after this many batches (``None`` evaluates everything).
        """
        self.model.eval()
        batch_size = batch_size or self.config.batch_size
        if max_batches is not None and max_batches < 1:
            raise TrainingError(f"max_batches must be >= 1, got {max_batches}")
        loss_avg = RunningAverage()
        acc_avg = RunningAverage()
        for index, (batch_x, batch_y) in enumerate(
            iterate_minibatches(features, targets, batch_size, shuffle=shuffle, rng=rng)
        ):
            if max_batches is not None and index >= max_batches:
                break
            outputs = self.model(Tensor(batch_x))
            loss = self.loss_fn(outputs, batch_y)
            loss_avg.update(float(np.real(loss.item())), weight=len(batch_y))
            acc_avg.update(top1_accuracy(outputs, batch_y), weight=len(batch_y))
        return loss_avg.value, acc_avg.value

    def fit(
        self,
        train_features: np.ndarray,
        train_targets: np.ndarray,
        val_features: Optional[np.ndarray] = None,
        val_targets: Optional[np.ndarray] = None,
        early_stop: Optional[EarlyStopFn] = None,
    ) -> TrainingHistory:
        """Train for ``config.epochs`` epochs and return the history.

        Parameters
        ----------
        train_features, train_targets:
            Training set.
        val_features, val_targets:
            Optional held-out set evaluated after every epoch.
        early_stop:
            Optional hook called after every recorded epoch with the
            :class:`TrainingHistory` so far; returning ``True`` ends
            training immediately (the history stays truthful — it contains
            exactly the epochs that ran).
        """
        for epoch in range(self.config.epochs):
            self.epoch = epoch
            train_loss, train_acc = self.train_epoch(train_features, train_targets)
            if val_features is not None and val_targets is not None:
                val_loss, val_acc = self.evaluate(val_features, val_targets)
            else:
                val_loss, val_acc = None, None
            self.history.record(train_loss, train_acc, val_loss, val_acc)
            if self.config.log_every and (epoch + 1) % self.config.log_every == 0:
                message = f"epoch {epoch + 1:3d}: train loss {train_loss:.4f}, train acc {train_acc:.3f}"
                if val_acc is not None:
                    message += f", val acc {val_acc:.3f}"
                # Without a progress sink this prints ``message`` verbatim
                # (the historical behavior); with one, the structured record
                # goes to the sink instead.
                emit_epoch(
                    message,
                    epoch=epoch + 1,
                    train_loss=float(train_loss),
                    train_acc=float(train_acc),
                    val_loss=None if val_loss is None else float(val_loss),
                    val_acc=None if val_acc is None else float(val_acc),
                    lr=getattr(self.optimizer, "lr", None),
                    **self._progress_extra(),
                )
            if not np.isfinite(train_loss):
                raise TrainingError(f"training diverged at epoch {epoch + 1} (loss={train_loss})")
            if early_stop is not None and early_stop(self.history):
                break
        return self.history
