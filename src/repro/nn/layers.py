"""Linear layers (real and complex) used to build the SPNN software model.

The paper's SPNN stacks fully connected layers with complex-valued weights;
the complex weight matrix is later decomposed with an SVD and compiled onto
MZI meshes (paper §II-B).  :class:`ComplexLinear` is the software-side
counterpart of one photonic linear layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd.tensor import Tensor, as_tensor
from ..utils.rng import RNGLike, ensure_rng
from .module import Module, Parameter


class ComplexLinear(Module):
    """Fully connected layer ``y = x @ W^T + b`` with complex weights.

    Parameters
    ----------
    in_features, out_features:
        Layer dimensions.  The photonic realization uses an
        ``out_features x in_features`` weight matrix decomposed as
        ``U diag(s) V^H``.
    bias:
        Whether to include an additive complex bias.  The paper's photonic
        layers are purely multiplicative, so the SPNN model uses
        ``bias=False`` by default; the option is kept for software-only
        experiments.
    rng:
        Seed or generator for weight initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = False,
        rng: RNGLike = None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(f"layer dimensions must be >= 1, got {in_features} -> {out_features}")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        gen = ensure_rng(rng)
        # Complex Glorot-style initialization: variance 1/(fan_in + fan_out)
        # split evenly between real and imaginary parts.
        scale = np.sqrt(1.0 / (in_features + out_features))
        weight = scale * (
            gen.standard_normal((out_features, in_features))
            + 1j * gen.standard_normal((out_features, in_features))
        ) / np.sqrt(2.0)
        self.weight = Parameter(weight)
        if bias:
            self.bias: Optional[Parameter] = Parameter(np.zeros(out_features, dtype=np.complex128))
        else:
            self.bias = None

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def weight_matrix(self) -> np.ndarray:
        """Return a copy of the complex weight matrix (``out x in``)."""
        return self.weight.data.copy()

    def set_weight_matrix(self, matrix: np.ndarray) -> None:
        """Overwrite the weight matrix (used when loading calibrated weights)."""
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (self.out_features, self.in_features):
            raise ValueError(
                f"weight must have shape {(self.out_features, self.in_features)}, got {matrix.shape}"
            )
        self.weight.data = matrix

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"ComplexLinear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class RealLinear(Module):
    """Fully connected layer with real weights (used by baseline models)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RNGLike = None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(f"layer dimensions must be >= 1, got {in_features} -> {out_features}")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        gen = ensure_rng(rng)
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = Parameter(scale * gen.standard_normal((out_features, in_features)))
        if bias:
            self.bias: Optional[Parameter] = Parameter(np.zeros(out_features, dtype=np.float64))
        else:
            self.bias = None

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"RealLinear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"
