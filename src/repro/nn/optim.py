"""Optimizers for the neural-network substrate.

Both optimizers treat complex parameters as pairs of real parameters, which
is consistent with the Wirtinger gradient convention of
:mod:`repro.autograd` — the stored gradient of a complex tensor is exactly
``dL/dRe + i dL/dIm`` so the update rules below are ordinary SGD/Adam on the
underlying real degrees of freedom.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..autograd.tensor import Tensor
from ..exceptions import TrainingError


class Optimizer:
    """Base class holding a parameter list and a ``zero_grad`` helper."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise TrainingError("optimizer received an empty parameter list")
        for param in self.parameters:
            if not isinstance(param, Tensor):
                raise TrainingError(f"optimizer parameters must be Tensors, got {type(param)!r}")
            if not param.requires_grad:
                raise TrainingError("optimizer received a parameter with requires_grad=False")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise TrainingError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with complex-parameter support.

    The second moment uses ``|grad|^2`` so complex parameters receive a
    per-entry adaptive step size identical to running Adam on the stacked
    real/imaginary representation with tied scaling.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise TrainingError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise TrainingError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise TrainingError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros(p.shape, dtype=np.float64) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.abs(grad) ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
