"""Activation modules matching the paper's SPNN pipeline (§III-D).

The paper applies the non-linear Softplus to the *modulus* of the complex
activations after each linear layer, a squared-modulus intensity measurement
after the output layer, and a final LogSoftMax to obtain a probability
distribution.  Each of these is provided as a :class:`Module` so the SPNN
architecture can be expressed declaratively.
"""

from __future__ import annotations

from ..autograd import functional as F
from ..autograd.tensor import Tensor, as_tensor
from .module import Module


class ModulusSoftplus(Module):
    """``softplus(|z|)`` — the hidden-layer non-linearity of the paper's SPNN.

    The output is real; subsequent complex linear layers treat it as a
    complex vector with zero imaginary part, which mirrors an
    intensity-based electro-optic activation followed by re-modulation.
    """

    def __init__(self, beta: float = 1.0):
        super().__init__()
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)

    def forward(self, x) -> Tensor:
        return F.softplus(as_tensor(x).abs(), beta=self.beta)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ModulusSoftplus(beta={self.beta})"


class ModulusSquared(Module):
    """``|z|^2`` — models the photodetector intensity measurement."""

    def forward(self, x) -> Tensor:
        return as_tensor(x).abs2()

    def __repr__(self) -> str:  # pragma: no cover
        return "ModulusSquared()"


class Modulus(Module):
    """``|z|`` — field-amplitude measurement (used by ablation variants)."""

    def forward(self, x) -> Tensor:
        return as_tensor(x).abs()

    def __repr__(self) -> str:  # pragma: no cover
        return "Modulus()"


class LogSoftmax(Module):
    """Log-softmax along the class axis, producing log-probabilities."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = int(axis)

    def forward(self, x) -> Tensor:
        return F.log_softmax(x, axis=self.axis)

    def __repr__(self) -> str:  # pragma: no cover
        return f"LogSoftmax(axis={self.axis})"


class Softplus(Module):
    """Plain real Softplus activation."""

    def __init__(self, beta: float = 1.0):
        super().__init__()
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)

    def forward(self, x) -> Tensor:
        return F.softplus(x, beta=self.beta)


class ReLU(Module):
    """Plain real ReLU activation (baseline digital models)."""

    def forward(self, x) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    """Plain real tanh activation."""

    def forward(self, x) -> Tensor:
        return F.tanh(x)
