"""Module/Parameter abstractions for the neural-network substrate.

A deliberately small subset of the familiar ``torch.nn`` API: modules own
parameters (complex or real :class:`~repro.autograd.tensor.Tensor` objects
with ``requires_grad=True``), can be nested, and expose ``state_dict`` /
``load_state_dict`` so a trained software model can be persisted and later
compiled onto photonic hardware.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from ..autograd.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable parameter."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for optimization and
    serialization.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError("Module subclasses must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # parameter traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter in the module tree."""
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs including ``self``."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of real-valued degrees of freedom.

        Complex parameters count twice (real and imaginary parts), matching
        how the optimizer actually updates them.
        """
        total = 0
        for param in self.parameters():
            total += param.size * (2 if param.is_complex else 1)
        return total

    # ------------------------------------------------------------------ #
    # train / eval switches
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", bool(mode))
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to array copies."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if name in state:
                value = np.asarray(state[name])
                if value.shape != param.shape:
                    raise ValueError(f"parameter {name!r}: shape {value.shape} does not match {param.shape}")
                param.data = value.astype(param.data.dtype)


class Sequential(Module):
    """Compose modules so that each one feeds the next."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._ordered.append(module)

    def forward(self, x):
        for module in self._ordered:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]
