"""Classification metrics and running averages used during training."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..autograd.tensor import Tensor


def top1_accuracy(outputs, targets) -> float:
    """Fraction of samples whose arg-max output matches the target class."""
    data = outputs.data if isinstance(outputs, Tensor) else np.asarray(outputs)
    targets = np.asarray(targets, dtype=np.int64)
    predictions = np.argmax(data, axis=-1)
    if predictions.shape != targets.shape:
        raise ValueError(f"prediction shape {predictions.shape} does not match targets {targets.shape}")
    if targets.size == 0:
        raise ValueError("cannot compute accuracy on an empty batch")
    return float(np.mean(predictions == targets))


def confusion_matrix(outputs, targets, num_classes: int) -> np.ndarray:
    """Return the ``num_classes x num_classes`` confusion matrix (rows = true)."""
    data = outputs.data if isinstance(outputs, Tensor) else np.asarray(outputs)
    predictions = np.argmax(data, axis=-1)
    targets = np.asarray(targets, dtype=np.int64)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, pred in zip(targets, predictions):
        matrix[true, pred] += 1
    return matrix


def per_class_accuracy(conf_matrix: np.ndarray) -> np.ndarray:
    """Per-class recall from a confusion matrix; NaN for absent classes."""
    conf_matrix = np.asarray(conf_matrix, dtype=np.float64)
    totals = conf_matrix.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(totals > 0, np.diag(conf_matrix) / totals, np.nan)


@dataclass
class RunningAverage:
    """Numerically simple running mean used for per-epoch loss tracking."""

    total: float = 0.0
    count: int = 0

    def update(self, value: float, weight: int = 1) -> None:
        self.total += float(value) * weight
        self.count += int(weight)

    @property
    def value(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0


@dataclass
class TrainingHistory:
    """Per-epoch record of training/validation loss and accuracy."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    def record(self, train_loss: float, train_accuracy: float, val_loss: float | None = None, val_accuracy: float | None = None) -> None:
        self.train_loss.append(float(train_loss))
        self.train_accuracy.append(float(train_accuracy))
        if val_loss is not None:
            self.val_loss.append(float(val_loss))
        if val_accuracy is not None:
            self.val_accuracy.append(float(val_accuracy))

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }
