"""Neural-network substrate: modules, layers, activations, losses, optimizers."""

from .activations import (
    LogSoftmax,
    Modulus,
    ModulusSoftplus,
    ModulusSquared,
    ReLU,
    Softplus,
    Tanh,
)
from .layers import ComplexLinear, RealLinear
from .losses import CrossEntropyLoss, MSELoss, NLLLoss
from .metrics import (
    RunningAverage,
    TrainingHistory,
    confusion_matrix,
    per_class_accuracy,
    top1_accuracy,
)
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, Optimizer
from .trainer import EarlyStopFn, Trainer, TrainerConfig, iterate_minibatches

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ComplexLinear",
    "RealLinear",
    "ModulusSoftplus",
    "ModulusSquared",
    "Modulus",
    "LogSoftmax",
    "Softplus",
    "ReLU",
    "Tanh",
    "CrossEntropyLoss",
    "NLLLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "Trainer",
    "TrainerConfig",
    "EarlyStopFn",
    "iterate_minibatches",
    "top1_accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "RunningAverage",
    "TrainingHistory",
]
