"""Loss modules for training the SPNN software model."""

from __future__ import annotations

import numpy as np

from ..autograd import functional as F
from ..autograd.tensor import Tensor
from .module import Module


class CrossEntropyLoss(Module):
    """Cross-entropy between logits and integer class targets.

    Matches the paper's training setup (§III-D): the network ends with a
    LogSoftMax, so this module accepts either raw logits
    (``from_log_probs=False``) or already-log-softmaxed outputs
    (``from_log_probs=True``).
    """

    def __init__(self, from_log_probs: bool = False, reduction: str = "mean"):
        super().__init__()
        if reduction not in {"mean", "sum", "none"}:
            raise ValueError(f"unknown reduction {reduction!r}")
        self.from_log_probs = bool(from_log_probs)
        self.reduction = reduction

    def forward(self, outputs, targets) -> Tensor:
        targets = np.asarray(targets, dtype=np.int64)
        if self.from_log_probs:
            return F.nll_loss(outputs, targets, reduction=self.reduction)
        return F.cross_entropy(outputs, targets, reduction=self.reduction)


class NLLLoss(Module):
    """Negative log-likelihood loss over log-probabilities."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        if reduction not in {"mean", "sum", "none"}:
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, log_probs, targets) -> Tensor:
        return F.nll_loss(log_probs, np.asarray(targets, dtype=np.int64), reduction=self.reduction)


class MSELoss(Module):
    """Mean squared error between real-valued predictions and targets."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        if reduction not in {"mean", "sum", "none"}:
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, predictions, targets) -> Tensor:
        return F.mse_loss(predictions, targets, reduction=self.reduction)
