"""Command-line interface: ``spnn-repro <experiment> [options]``.

Runs any of the paper's experiments from the shell and prints the same rows
the paper reports.  Results can optionally be saved as JSON for archival.

Examples
--------
::

    spnn-repro list
    spnn-repro fig2
    spnn-repro fig3 --smoke
    spnn-repro exp1 --smoke --output exp1.json
    spnn-repro exp1 --workers 4   # shard MC realizations over 4 processes
    spnn-repro yield --smoke      # parametric yield vs sigma (§I motivation)
    spnn-repro robust --smoke     # noise-aware training vs baseline (EXP 3)
    spnn-repro drift --smoke      # temporal drift + recalibration (EXP 4)
    spnn-repro summary            # hardware inventory (1374 phase shifters)
    spnn-repro worker --connect HOST:PORT   # join a sweep fleet as a worker
    spnn-repro yield --smoke --backend fleet --workers 2   # run on the fleet

``--workers N`` shards the Monte Carlo realizations of the supporting
experiments across N worker processes; the samples are bit-identical to the
serial run at the same seed (the child RNG streams are spawned before any
scheduling), so the flag only changes wall-clock time, never results.

``--backend fleet`` (optionally with ``--fleet HOST:PORT`` to pick the
coordinator's bind address) schedules the same chunks over persistent
network workers started with ``spnn-repro worker --connect``; results stay
bit-identical for any fleet size and cache state.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from contextlib import nullcontext
from typing import Optional, Sequence

from .experiments.registry import build_registry, get_experiment, list_experiments
from .observability import PrintProgressSink, Stopwatch, observe, use_progress_sink
from .onn.builder import SPNNTrainingConfig, build_trained_spnn
from .utils.serialization import format_table, save_json, to_jsonable


def _print_experiment_list() -> None:
    rows = [[identifier, description] for identifier, description in sorted(list_experiments().items())]
    print(format_table(["experiment", "description"], rows))


def _run_summary(smoke: bool) -> dict:
    """Train/compile the SPNN and print its hardware inventory."""
    training = SPNNTrainingConfig(num_train=600, num_test=200, epochs=20) if smoke else SPNNTrainingConfig()
    task = build_trained_spnn(training)
    summary = task.spnn.hardware_summary()
    summary["baseline_accuracy_percent"] = 100.0 * task.baseline_accuracy
    rows = [[key, value] for key, value in summary.items()]
    print("SPNN hardware inventory (paper: 687 MZIs, 1374 tunable phase shifters)")
    print(format_table(["quantity", "value"], rows))
    return summary


def _run_info() -> dict:
    """Print (and return) the environment diagnostics behind a run.

    Answers the usual "why is my run slow / which kernel ran / why is the
    GPU path unavailable" questions without a debugger: platform, CPU
    budget, array-backend availability, which sweep kernels can serve each
    backend (with the reason when one cannot run at all), and the
    ``REPRO_*`` environment overrides currently in force.
    """
    import platform

    import socket

    from .arrays.namespace import array_backend_names, available_array_backends, get_array_backend
    from .arrays.sweep import SWEEP_KERNEL_ENV, available_sweep_kernels, get_sweep_kernel, sweep_kernel_names
    from .execution.backends import GPU_ARRAY_BACKEND_ENV, available_workers
    from .execution.fleet import FLEET_ADDRESS_ENV, artifact_store, default_fleet_address, parse_address
    from .execution.fleet.server import FLEET_SCHEDULING_ENV
    from .observability import TRACE_ENV
    from .tuning import AUTOTUNE_ENV, tuning_status

    info: dict = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus_available": available_workers(),
        "cpu_count": os.cpu_count() or 1,
    }
    usable = available_array_backends()
    backends: dict = {}
    for name in array_backend_names():
        entry: dict = {"available": name in usable}
        if entry["available"]:
            entry["sweep_kernels"] = list(available_sweep_kernels(get_array_backend(name)))
        backends[name] = entry
    info["array_backends"] = backends
    kernels: dict = {}
    for name in sweep_kernel_names():
        kernel = get_sweep_kernel(name)
        kernels[name] = {
            "available": kernel.available(),
            "reason": kernel.unavailable_reason(),
        }
    info["sweep_kernels"] = kernels
    # Fleet diagnostics: can the coordinator's transport actually bind the
    # configured address, and what does the process artifact cache hold?
    fleet_address = default_fleet_address()
    try:
        host, port = parse_address(fleet_address)
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.bind((host, port))
        bindable, bind_error = True, None
    except OSError as error:
        bindable, bind_error = False, f"{type(error).__name__}: {error}"
    except ValueError as error:
        bindable, bind_error = False, str(error)
    info["fleet"] = {
        "coordinator_address": fleet_address,
        "transport_bindable": bindable,
        "transport_error": bind_error,
        "artifact_cache": artifact_store().stats(),
    }
    info["autotune"] = tuning_status()
    overrides = (
        SWEEP_KERNEL_ENV,
        TRACE_ENV,
        GPU_ARRAY_BACKEND_ENV,
        FLEET_ADDRESS_ENV,
        AUTOTUNE_ENV,
        FLEET_SCHEDULING_ENV,
    )
    info["env_overrides"] = {
        variable: os.environ[variable] for variable in overrides if os.environ.get(variable)
    }

    print("spnn-repro environment diagnostics")
    print(
        format_table(
            ["quantity", "value"],
            [
                ["platform", info["platform"]],
                ["python", info["python"]],
                ["cpus available", info["cpus_available"]],
                ["cpu count", info["cpu_count"]],
            ],
        )
    )
    print()
    print(
        format_table(
            ["array backend", "available", "sweep kernels"],
            [
                [name, "yes" if entry["available"] else "no", ", ".join(entry.get("sweep_kernels", [])) or "-"]
                for name, entry in backends.items()
            ],
        )
    )
    print()
    print(
        format_table(
            ["sweep kernel", "available", "unavailable reason"],
            [
                [name, "yes" if entry["available"] else "no", entry["reason"] or "-"]
                for name, entry in kernels.items()
            ],
        )
    )
    cache = info["fleet"]["artifact_cache"]
    print(
        format_table(
            ["fleet", "value"],
            [
                ["coordinator address", info["fleet"]["coordinator_address"]],
                [
                    "transport bindable",
                    "yes" if bindable else f"no ({bind_error})",
                ],
                [
                    "artifact cache",
                    f"{cache['entries']} entries, {cache['bytes']} bytes "
                    f"({cache['hits']} hits, {cache['misses']} misses)",
                ],
            ],
        )
    )
    print()
    autotune = info["autotune"]
    if autotune["cached"] == "stale":
        cache_state = "stale (re-run 'spnn-repro calibrate')"
    elif autotune["cached"]:
        cache_state = f"calibrated ({autotune['grid_points']} grid points)"
    else:
        cache_state = "cold (calibrates lazily on first hinted dispatch)"
    print(
        format_table(
            ["autotune", "value"],
            [
                ["enabled", "yes" if autotune["enabled"] else f"no ({AUTOTUNE_ENV}=off)"],
                ["cost table", cache_state],
                ["cache path", autotune["cache_path"]],
            ],
        )
    )
    print()
    if info["env_overrides"]:
        print(
            format_table(
                ["env override", "value"],
                [[variable, value] for variable, value in info["env_overrides"].items()],
            )
        )
    else:
        print("no REPRO_* environment overrides active")
    return info


def _run_calibrate() -> dict:
    """``spnn-repro calibrate`` — fit and cache the machine's cost table.

    Runs the one-shot sweep-kernel micro-benchmark eagerly (the same one
    hinted dispatch triggers lazily on a cold cache), prints the measured
    grid, and writes the table under the per-user cache directory so every
    later process on this machine starts warm.
    """
    from .tuning import cache_path, install_table
    from .tuning.calibrate import run_calibration

    print("calibrating sweep kernels (one-shot per-machine micro-benchmark)...")
    table = run_calibration(progress=lambda line: print(f"  {line}"))
    path = table.save(cache_path(table.fingerprint))
    install_table(table, backend_name=table.backend)
    print(f"\ncost table written to {path}")
    print(
        f"{sum(len(v) for v in table.grid.values())} grid points over "
        f"kernels: {', '.join(table.kernels())}"
    )
    return table.to_payload()


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spnn-repro",
        description="Reproduce the experiments of 'Modeling Silicon-Photonic Neural Networks under Uncertainties' (DATE 2021).",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (fig2, fig3, exp1, exp2, exp3/robust, yield, "
            "drift/exp4, baseline), 'summary', 'info', 'calibrate' (fit the "
            "per-machine sweep-kernel cost table), 'list' or 'worker' "
            "(join a sweep fleet; requires --connect)"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use the fast smoke configuration instead of the paper-scale one",
    )
    parser.add_argument(
        "--iterations",
        type=_positive_int,
        default=None,
        help="override the number of Monte Carlo iterations (where applicable)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help=(
            "shard Monte Carlo realizations across N worker processes "
            "(bit-identical to the serial run; applies to experiments with a workers knob)"
        ),
    )
    parser.add_argument(
        "--device",
        choices=["cpu", "gpu"],
        default=None,
        help=(
            "run the Monte Carlo realizations on this device: 'gpu' evaluates "
            "chunks device-resident through the CuPy array backend (or the "
            "strict mock stand-in selected by REPRO_GPU_ARRAY_BACKEND on "
            "CPU-only machines); 'cpu' (default) keeps the serial/multiprocess "
            "backends"
        ),
    )
    parser.add_argument(
        "--bisect",
        action="store_true",
        help=(
            "refine the max tolerable sigma by bisection after the coarse sweep "
            "(O(log) extra Monte Carlo runs; 'yield' and 'exp3'/'robust' only)"
        ),
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the result (JSON) to this path",
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "record an observability trace of the run (spans, worker chunk "
            "frames, kernel dispatches) and write it to PATH as JSONL; "
            "bit-identical results, timing-only overhead"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the aggregated metrics report (JSON) of the traced run to PATH",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a heartbeat line as each scheduled chunk group completes",
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "multiprocess", "gpu", "fleet"],
        default=None,
        help=(
            "execution backend for the Monte Carlo chunks; 'fleet' schedules "
            "over persistent network workers (started with "
            "'spnn-repro worker --connect'), with --workers as the minimum "
            "fleet size to wait for"
        ),
    )
    parser.add_argument(
        "--fleet",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help=(
            "bind the fleet coordinator at this address (implies "
            "--backend fleet; default: REPRO_FLEET_ADDRESS or 127.0.0.1:0)"
        ),
    )
    parser.add_argument(
        "--connect",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="('worker' only) the fleet coordinator address to serve chunks for",
    )
    return parser


def _run_worker(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """``spnn-repro worker --connect HOST:PORT`` — serve a fleet until EOF."""
    if not args.connect:
        parser.error("'worker' requires --connect HOST:PORT (the coordinator address)")
    for flag, name in (
        (args.workers, "--workers"), (args.device, "--device"),
        (args.bisect, "--bisect"), (args.iterations, "--iterations"),
        (args.backend, "--backend"), (args.fleet, "--fleet"),
        (args.trace, "--trace"), (args.metrics_out, "--metrics-out"),
    ):
        if flag:
            parser.error(f"'worker' does not support {name}")
    from .execution.fleet import run_worker

    print(f"[worker] pid {os.getpid()} connecting to {args.connect}", flush=True)
    chunks = run_worker(args.connect)
    print(f"[worker] coordinator gone; served {chunks} chunk(s)")
    return 0


def _fleet_backend(args: argparse.Namespace):
    """Build the :class:`FleetBackend` behind ``--backend fleet``/``--fleet``."""
    from .execution.fleet import FleetBackend

    backend = FleetBackend(
        address=args.fleet,  # None falls back to REPRO_FLEET_ADDRESS / 127.0.0.1:0
        min_workers=args.workers if args.workers is not None else 1,
    )
    print(
        f"[fleet] coordinator listening at {backend.address} — start workers "
        f"with: spnn-repro worker --connect {backend.address}",
        flush=True,
    )
    return backend


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``spnn-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    identifier = args.experiment.lower()
    if identifier == "worker":
        return _run_worker(parser, args)
    if args.connect is not None:
        parser.error("--connect only applies to the 'worker' command")
    if args.fleet is not None and args.backend is None:
        args.backend = "fleet"
    if args.fleet is not None and args.backend != "fleet":
        parser.error("--fleet only applies to --backend fleet")
    if identifier in ("list", "summary", "info", "calibrate") and args.workers is not None:
        parser.error(f"{identifier!r} does not support --workers")
    if identifier in ("list", "summary", "info", "calibrate") and args.bisect:
        parser.error(f"{identifier!r} does not support --bisect")
    if identifier in ("list", "summary", "info", "calibrate") and args.device is not None:
        parser.error(f"{identifier!r} does not support --device")
    if identifier in ("list", "summary", "info", "calibrate") and args.backend is not None:
        parser.error(f"{identifier!r} does not support --backend/--fleet")
    if identifier in ("list", "info", "calibrate") and (args.trace or args.metrics_out or args.progress):
        parser.error(f"{identifier!r} does not support --trace/--metrics-out/--progress")
    if args.device == "gpu" and args.workers is not None and args.workers > 1:
        parser.error(
            "--device gpu cannot be combined with --workers > 1 "
            "(the GPU executes chunks in order; its concurrency lives in the device kernels)"
        )
    if identifier == "list":
        _print_experiment_list()
        return 0
    if identifier == "info":
        info = _run_info()
        if args.output:
            save_json(info, args.output)
        return 0
    if identifier == "calibrate":
        payload = _run_calibrate()
        if args.output:
            save_json(payload, args.output)
        return 0
    if identifier == "summary":
        tracing = (
            observe(trace_path=args.trace, metrics_path=args.metrics_out)
            if (args.trace or args.metrics_out)
            else nullcontext()
        )
        progress = use_progress_sink(PrintProgressSink()) if args.progress else nullcontext()
        with tracing, progress:
            summary = _run_summary(args.smoke)
        if args.output:
            save_json(summary, args.output)
        return 0

    spec = get_experiment(identifier)
    config = spec.smoke_config if args.smoke else spec.default_config
    if args.iterations is not None and hasattr(config, "iterations"):
        config = dataclasses.replace(config, iterations=args.iterations)
    if args.backend is not None:
        if not hasattr(config, "backend"):
            parser.error(f"experiment {spec.identifier!r} does not support --backend")
        if args.device is not None:
            parser.error("--backend cannot be combined with --device (the backend already decided)")
        if args.backend == "fleet":
            # --workers becomes the minimum fleet size (inside the backend
            # instance) rather than a config knob: resolve_backend forbids
            # combining a Backend instance with a separate workers count.
            config = dataclasses.replace(config, backend=_fleet_backend(args))
            args.workers = None
        else:
            config = dataclasses.replace(config, backend=args.backend)
    if args.workers is not None:
        if not hasattr(config, "workers"):
            parser.error(f"experiment {spec.identifier!r} does not support --workers")
        config = dataclasses.replace(config, workers=args.workers)
    if args.device is not None:
        if not hasattr(config, "device"):
            parser.error(f"experiment {spec.identifier!r} does not support --device")
        config = dataclasses.replace(config, device=args.device)
    if args.bisect:
        if not hasattr(config, "bisect"):
            parser.error(f"experiment {spec.identifier!r} does not support --bisect")
        config = dataclasses.replace(config, bisect=True)

    tracing = (
        observe(trace_path=args.trace, metrics_path=args.metrics_out)
        if (args.trace or args.metrics_out)
        else nullcontext()
    )
    progress = use_progress_sink(PrintProgressSink()) if args.progress else nullcontext()
    watch = Stopwatch()
    with tracing, progress:
        result = spec.runner(config)
    elapsed = watch.seconds

    if hasattr(result, "report"):
        print(result.report())
    else:  # pragma: no cover - all current experiments define report()
        print(result)
    print(f"\n[{spec.identifier}] completed in {elapsed:.1f}s")

    if args.output:
        save_json(to_jsonable(result), args.output)
        print(f"result written to {args.output}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics_out:
        print(f"metrics report written to {args.metrics_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
