"""Command-line interface: ``spnn-repro <experiment> [options]``.

Runs any of the paper's experiments from the shell and prints the same rows
the paper reports.  Results can optionally be saved as JSON for archival.

Examples
--------
::

    spnn-repro list
    spnn-repro fig2
    spnn-repro fig3 --smoke
    spnn-repro exp1 --smoke --output exp1.json
    spnn-repro exp1 --workers 4   # shard MC realizations over 4 processes
    spnn-repro yield --smoke      # parametric yield vs sigma (§I motivation)
    spnn-repro robust --smoke     # noise-aware training vs baseline (EXP 3)
    spnn-repro drift --smoke      # temporal drift + recalibration (EXP 4)
    spnn-repro summary            # hardware inventory (1374 phase shifters)

``--workers N`` shards the Monte Carlo realizations of the supporting
experiments across N worker processes; the samples are bit-identical to the
serial run at the same seed (the child RNG streams are spawned before any
scheduling), so the flag only changes wall-clock time, never results.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Optional, Sequence

from .experiments.registry import build_registry, get_experiment, list_experiments
from .onn.builder import SPNNTrainingConfig, build_trained_spnn
from .utils.serialization import format_table, save_json, to_jsonable


def _print_experiment_list() -> None:
    rows = [[identifier, description] for identifier, description in sorted(list_experiments().items())]
    print(format_table(["experiment", "description"], rows))


def _run_summary(smoke: bool) -> dict:
    """Train/compile the SPNN and print its hardware inventory."""
    training = SPNNTrainingConfig(num_train=600, num_test=200, epochs=20) if smoke else SPNNTrainingConfig()
    task = build_trained_spnn(training)
    summary = task.spnn.hardware_summary()
    summary["baseline_accuracy_percent"] = 100.0 * task.baseline_accuracy
    rows = [[key, value] for key, value in summary.items()]
    print("SPNN hardware inventory (paper: 687 MZIs, 1374 tunable phase shifters)")
    print(format_table(["quantity", "value"], rows))
    return summary


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spnn-repro",
        description="Reproduce the experiments of 'Modeling Silicon-Photonic Neural Networks under Uncertainties' (DATE 2021).",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (fig2, fig3, exp1, exp2, exp3/robust, yield, "
            "drift/exp4, baseline), 'summary' or 'list'"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use the fast smoke configuration instead of the paper-scale one",
    )
    parser.add_argument(
        "--iterations",
        type=_positive_int,
        default=None,
        help="override the number of Monte Carlo iterations (where applicable)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help=(
            "shard Monte Carlo realizations across N worker processes "
            "(bit-identical to the serial run; applies to experiments with a workers knob)"
        ),
    )
    parser.add_argument(
        "--device",
        choices=["cpu", "gpu"],
        default=None,
        help=(
            "run the Monte Carlo realizations on this device: 'gpu' evaluates "
            "chunks device-resident through the CuPy array backend (or the "
            "strict mock stand-in selected by REPRO_GPU_ARRAY_BACKEND on "
            "CPU-only machines); 'cpu' (default) keeps the serial/multiprocess "
            "backends"
        ),
    )
    parser.add_argument(
        "--bisect",
        action="store_true",
        help=(
            "refine the max tolerable sigma by bisection after the coarse sweep "
            "(O(log) extra Monte Carlo runs; 'yield' and 'exp3'/'robust' only)"
        ),
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the result (JSON) to this path",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``spnn-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    identifier = args.experiment.lower()
    if identifier in ("list", "summary") and args.workers is not None:
        parser.error(f"{identifier!r} does not support --workers")
    if identifier in ("list", "summary") and args.bisect:
        parser.error(f"{identifier!r} does not support --bisect")
    if identifier in ("list", "summary") and args.device is not None:
        parser.error(f"{identifier!r} does not support --device")
    if args.device == "gpu" and args.workers is not None and args.workers > 1:
        parser.error(
            "--device gpu cannot be combined with --workers > 1 "
            "(the GPU executes chunks in order; its concurrency lives in the device kernels)"
        )
    if identifier == "list":
        _print_experiment_list()
        return 0
    if identifier == "summary":
        summary = _run_summary(args.smoke)
        if args.output:
            save_json(summary, args.output)
        return 0

    spec = get_experiment(identifier)
    config = spec.smoke_config if args.smoke else spec.default_config
    if args.iterations is not None and hasattr(config, "iterations"):
        config = dataclasses.replace(config, iterations=args.iterations)
    if args.workers is not None:
        if not hasattr(config, "workers"):
            parser.error(f"experiment {spec.identifier!r} does not support --workers")
        config = dataclasses.replace(config, workers=args.workers)
    if args.device is not None:
        if not hasattr(config, "device"):
            parser.error(f"experiment {spec.identifier!r} does not support --device")
        config = dataclasses.replace(config, device=args.device)
    if args.bisect:
        if not hasattr(config, "bisect"):
            parser.error(f"experiment {spec.identifier!r} does not support --bisect")
        config = dataclasses.replace(config, bisect=True)

    start = time.time()
    result = spec.runner(config)
    elapsed = time.time() - start

    if hasattr(result, "report"):
        print(result.report())
    else:  # pragma: no cover - all current experiments define report()
        print(result)
    print(f"\n[{spec.identifier}] completed in {elapsed:.1f}s")

    if args.output:
        save_json(to_jsonable(result), args.output)
        print(f"result written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
