"""Clements rectangular decomposition of a unitary into an MZI mesh.

Implements the algorithm of W. R. Clements et al., *"Optimal design for
universal multiport interferometers"*, Optica 3(12), 2016 — the design the
paper uses for all of its unitary multipliers (§II-B).  An ``N x N`` unitary
is expressed with exactly ``N(N-1)/2`` MZIs arranged in a rectangle of ``N``
columns, plus ``N`` output phase shifters.

Algorithm outline
-----------------
Elements of ``U`` are nulled along anti-diagonals, alternating between
right-multiplications by ``T^{-1}`` (even sweeps) and left-multiplications
by ``T`` (odd sweeps), until only a diagonal ``D`` remains.  The
left-applied inverses are then commuted through ``D`` using the identity
``T^{-1} D = D' T'`` so that the final form is
``U = D_out @ (product of MZI matrices)`` — i.e. a physical mesh followed by
an output phase screen.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Tuple

import numpy as np

from ..exceptions import DecompositionError
from ..photonics.mzi import mzi_transfer
from ..utils.linalg import assert_unitary
from .decomposition import (
    NULLING_TOLERANCE,
    MeshDecomposition,
    MZIConfig,
    assign_columns,
    factor_diag_times_mzi,
    solve_left_nulling,
    solve_right_nulling,
    wrap_phase,
)

_TWO_PI = 2.0 * math.pi


def clements_decompose(unitary: np.ndarray, atol: float = 1e-8) -> MeshDecomposition:
    """Decompose ``unitary`` into a rectangular Clements mesh.

    Parameters
    ----------
    unitary:
        The ``N x N`` unitary matrix to realize.
    atol:
        Unitarity tolerance for the input and the reconstruction check.

    Returns
    -------
    MeshDecomposition
        MZI settings in propagation order plus output phases; its
        :meth:`~repro.mesh.decomposition.MeshDecomposition.reconstruct`
        reproduces ``unitary`` to numerical precision.
    """
    unitary = assert_unitary(unitary, atol=atol, name="unitary")
    n = unitary.shape[0]
    work = unitary.astype(np.complex128).copy()

    # Operations recorded during the nulling sweeps.
    right_ops: List[Tuple[int, float, float]] = []  # (mode, theta, phi): applied as U @ T^{-1}
    left_ops: List[Tuple[int, float, float]] = []  # (mode, theta, phi): applied as T @ U

    for sweep in range(n - 1):
        if sweep % 2 == 0:
            # Null elements using right-multiplications by T^{-1}.
            for j in range(sweep + 1):
                mode = sweep - j
                row = n - 1 - j
                theta, phi = solve_right_nulling(work[row, mode], work[row, mode + 1])
                t_inv = mzi_transfer(theta, phi).conj().T
                work[:, mode : mode + 2] = work[:, mode : mode + 2] @ t_inv
                right_ops.append((mode, theta, phi))
        else:
            # Null elements using left-multiplications by T.
            for j in range(sweep + 1):
                mode = n - 2 + j - sweep
                col = j
                theta, phi = solve_left_nulling(work[mode, col], work[mode + 1, col])
                t_mat = mzi_transfer(theta, phi)
                work[mode : mode + 2, :] = t_mat @ work[mode : mode + 2, :]
                left_ops.append((mode, theta, phi))

    # ``work`` should now be diagonal.
    off_diagonal = work - np.diag(np.diagonal(work))
    if np.max(np.abs(off_diagonal)) > 1e-7:
        raise DecompositionError(
            f"Clements nulling failed: residual off-diagonal magnitude "
            f"{np.max(np.abs(off_diagonal)):.3e}"
        )
    diag = np.diagonal(work).copy()

    # We now have:  D = L_p ... L_1 @ U @ T_1^{-1} ... T_k^{-1}
    # hence         U = L_1^{-1} ... L_p^{-1} @ D @ T_k ... T_1.
    # Commute every L_i^{-1} through the diagonal from the innermost outwards:
    # L^{-1} @ D = D' @ T', which keeps the expression in the form
    # (remaining L^{-1}s) @ D' @ (T' ... ) @ (T_k ... T_1).
    commuted_ops: List[Tuple[int, float, float]] = []
    for mode, theta, phi in reversed(left_ops):
        t_inv = mzi_transfer(theta, phi).conj().T
        block = t_inv @ np.diag(diag[mode : mode + 2])
        a, b, new_theta, new_phi = factor_diag_times_mzi(block)
        diag = diag.copy()
        diag[mode] = a
        diag[mode + 1] = b
        commuted_ops.append((mode, new_theta, new_phi))

    # In matrix-product order (left to right) the expression is now
    #   U = diag @ C_p' @ ... @ C_1' @ T_k @ T_{k-1} ... @ T_1
    # where C_i' is the commuted version of L_i and T_j the j-th right op.
    # Propagation order (first device the light meets) is the reverse:
    # T_1, T_2, ..., T_k, C_1', ..., C_p' — i.e. the right ops in application
    # order followed by the commuted ops in the order they were generated
    # (innermost left op first).
    propagation: List[Tuple[int, float, float]] = list(right_ops) + list(commuted_ops)

    modes = [op[0] for op in propagation]
    columns = assign_columns(modes, n)
    configs = [
        MZIConfig(mode=mode, theta=theta, phi=phi, column=column, index=idx)
        for idx, ((mode, theta, phi), column) in enumerate(zip(propagation, columns))
    ]
    output_phases = np.array([wrap_phase(angle) for angle in np.angle(diag)], dtype=np.float64)

    decomposition = MeshDecomposition(n=n, configs=configs, output_phases=output_phases, scheme="clements")
    reconstruction = decomposition.reconstruct()
    if not np.allclose(reconstruction, unitary, atol=max(atol, 1e-7)):
        raise DecompositionError(
            "Clements decomposition failed the reconstruction check "
            f"(max error {np.max(np.abs(reconstruction - unitary)):.3e})"
        )
    return decomposition


def clements_mzi_count(n: int) -> int:
    """Number of MZIs in an ``n``-mode Clements mesh (``n(n-1)/2``)."""
    if n < 1:
        raise DecompositionError(f"n must be >= 1, got {n}")
    return n * (n - 1) // 2


# --------------------------------------------------------------------------- #
# trusted fast path: phase-only re-decomposition for incremental recompiles
# --------------------------------------------------------------------------- #
#
# The nulling *structure* of the Clements algorithm — which mode pair is
# nulled at which point of which sweep, and hence the propagation order and
# physical column of every MZI — depends only on ``n``, never on the matrix
# values.  A mesh compiled once can therefore be *retuned* to a nearby
# unitary by recomputing only the phases, reusing the cached layout, column
# grouping and device bookkeeping.  The helpers below do exactly that, with
# scalar ``math``/``cmath`` arithmetic in the inner loops and none of the
# defensive validation of :func:`clements_decompose` (input unitarity check,
# per-block refactoring checks, full propagation-order reconstruction).
# They are meant for *trusted* inputs — unitary factors freshly produced by
# LAPACK — and callers are expected to validate the retuned mesh against its
# target cheaply (one vectorized ``matrix()`` evaluation) and fall back to
# the exact, fully validated decomposition when the check fails; that is how
# :meth:`repro.mesh.svd_layer.PhotonicLinearLayer.retune_from_weight` uses
# them.


def _fast_mzi_block(theta: float, phi: float) -> np.ndarray:
    """Scalar 2x2 MZI transfer matrix (Eq. 1), no broadcasting machinery."""
    e_theta = cmath.exp(1j * theta)
    e_phi = cmath.exp(1j * phi)
    bar = (e_theta - 1.0) / 2.0
    cross = 1j * (e_theta + 1.0) / 2.0
    out = np.empty((2, 2), dtype=np.complex128)
    out[0, 0] = e_phi * bar
    out[0, 1] = cross
    out[1, 0] = e_phi * cross
    out[1, 1] = -bar
    return out


def _fast_mzi_block_inverse(theta: float, phi: float) -> np.ndarray:
    """``T(theta, phi)^H`` assembled directly (the blocks are unitary)."""
    e_theta = cmath.exp(-1j * theta)
    e_phi = cmath.exp(-1j * phi)
    bar = (e_theta - 1.0) / 2.0
    cross = -1j * (e_theta + 1.0) / 2.0
    out = np.empty((2, 2), dtype=np.complex128)
    out[0, 0] = e_phi * bar
    out[0, 1] = e_phi * cross
    out[1, 0] = cross
    out[1, 1] = -bar
    return out


def _fast_solve_right(u_left: complex, u_right: complex) -> Tuple[float, float]:
    """Scalar :func:`~repro.mesh.decomposition.solve_right_nulling`."""
    if abs(u_left) < NULLING_TOLERANCE:
        if abs(u_right) < NULLING_TOLERANCE:
            return 0.0, 0.0
        return math.pi, 0.0
    ratio = -u_right / u_left
    theta = 2.0 * math.atan(abs(ratio))
    phi = -cmath.phase(ratio)
    return theta % _TWO_PI, phi % _TWO_PI


def _fast_solve_left(u_upper: complex, u_lower: complex) -> Tuple[float, float]:
    """Scalar :func:`~repro.mesh.decomposition.solve_left_nulling`."""
    if abs(u_lower) < NULLING_TOLERANCE:
        if abs(u_upper) < NULLING_TOLERANCE:
            return 0.0, 0.0
        return math.pi, 0.0
    ratio = u_upper / u_lower
    theta = 2.0 * math.atan(abs(ratio))
    phi = -cmath.phase(ratio)
    return theta % _TWO_PI, phi % _TWO_PI


def _fast_factor_diag_times_mzi(
    w00: complex, w01: complex, w10: complex, w11: complex
) -> Tuple[complex, complex, float, float]:
    """Scalar, unvalidated :func:`~repro.mesh.decomposition.factor_diag_times_mzi`."""
    sin_half = min(abs(w00), 1.0)
    cos_half = min(abs(w01), 1.0)
    theta = 2.0 * math.atan2(sin_half, cos_half)
    half = cmath.exp(1j * theta / 2.0)
    sin_half = math.sin(theta / 2.0)
    cos_half = math.cos(theta / 2.0)
    if sin_half > NULLING_TOLERANCE and cos_half > NULLING_TOLERANCE:
        phi = cmath.phase(w00) - cmath.phase(w01)
        a = w01 / (1j * half * cos_half)
        b = -w11 / (1j * half * sin_half)
    elif sin_half <= NULLING_TOLERANCE:
        # theta ~ 0: the block is anti-diagonal.
        phi = 0.0
        a = w01 / (1j * half)
        b = w10 / (1j * half)
    else:
        # theta ~ pi: the block is diagonal.
        phi = 0.0
        a = w00 / (1j * half)
        b = -w11 / (1j * half)
    return a, b, theta % _TWO_PI, phi % _TWO_PI


def clements_phases(unitary: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Clements phases of a *trusted* unitary, skipping all validation.

    Returns ``(thetas, phis, output_phases)`` in exactly the propagation
    order :func:`clements_decompose` produces for the same ``n``, so the
    result can be written straight into a cached
    :class:`~repro.mesh.mesh.MZIMesh` via
    :meth:`~repro.mesh.mesh.MZIMesh.retune`.

    Compared to :func:`clements_decompose` this skips the input unitarity
    assertion, the per-block refactoring checks and the full
    propagation-order reconstruction check, and runs the 2x2 inner loops on
    scalars — several times faster on the meshes of the paper's
    architecture.  The only check kept is the residual-diagonality test of
    the nulled work matrix, which catches grossly non-unitary input.
    Callers own the final accuracy check (compare the retuned mesh against
    the target) and the exact-recompile fallback.

    Raises
    ------
    DecompositionError
        If the nulling sweeps leave a non-diagonal residual (non-unitary or
        badly conditioned input).
    """
    unitary = np.asarray(unitary, dtype=np.complex128)
    if unitary.ndim != 2 or unitary.shape[0] != unitary.shape[1]:
        raise DecompositionError(f"unitary must be square, got shape {unitary.shape}")
    n = unitary.shape[0]
    work = unitary.copy()

    right_phases: List[Tuple[float, float]] = []
    left_ops: List[Tuple[int, float, float]] = []

    for sweep in range(n - 1):
        if sweep % 2 == 0:
            for j in range(sweep + 1):
                mode = sweep - j
                row = n - 1 - j
                theta, phi = _fast_solve_right(
                    complex(work[row, mode]), complex(work[row, mode + 1])
                )
                t_inv = _fast_mzi_block_inverse(theta, phi)
                work[:, mode : mode + 2] = work[:, mode : mode + 2] @ t_inv
                right_phases.append((theta, phi))
        else:
            for j in range(sweep + 1):
                mode = n - 2 + j - sweep
                col = j
                theta, phi = _fast_solve_left(
                    complex(work[mode, col]), complex(work[mode + 1, col])
                )
                t_mat = _fast_mzi_block(theta, phi)
                work[mode : mode + 2, :] = t_mat @ work[mode : mode + 2, :]
                left_ops.append((mode, theta, phi))

    off_diagonal = work - np.diag(np.diagonal(work))
    residual = float(np.max(np.abs(off_diagonal))) if n > 1 else 0.0
    if residual > 1e-7:
        raise DecompositionError(
            f"fast Clements nulling failed: residual off-diagonal magnitude {residual:.3e}"
        )
    diag = [complex(value) for value in np.diagonal(work)]

    # Commute the left-applied inverses through the diagonal, innermost
    # first — same algebra as clements_decompose, scalar arithmetic
    # (``T^H @ diag(d0, d1)`` written out elementwise).
    commuted_phases: List[Tuple[float, float]] = []
    for mode, theta, phi in reversed(left_ops):
        e_theta = cmath.exp(-1j * theta)
        e_phi = cmath.exp(-1j * phi)
        bar = (e_theta - 1.0) / 2.0
        cross = -1j * (e_theta + 1.0) / 2.0
        d0 = diag[mode]
        d1 = diag[mode + 1]
        a, b, new_theta, new_phi = _fast_factor_diag_times_mzi(
            e_phi * bar * d0, e_phi * cross * d1, cross * d0, -bar * d1
        )
        diag[mode] = a
        diag[mode + 1] = b
        commuted_phases.append((new_theta, new_phi))

    ordered = right_phases + commuted_phases
    thetas = np.array([pair[0] for pair in ordered], dtype=np.float64)
    phis = np.array([pair[1] for pair in ordered], dtype=np.float64)
    output_phases = np.mod(np.angle(np.array(diag, dtype=np.complex128)), _TWO_PI)
    return thetas, phis, output_phases
