"""Clements rectangular decomposition of a unitary into an MZI mesh.

Implements the algorithm of W. R. Clements et al., *"Optimal design for
universal multiport interferometers"*, Optica 3(12), 2016 — the design the
paper uses for all of its unitary multipliers (§II-B).  An ``N x N`` unitary
is expressed with exactly ``N(N-1)/2`` MZIs arranged in a rectangle of ``N``
columns, plus ``N`` output phase shifters.

Algorithm outline
-----------------
Elements of ``U`` are nulled along anti-diagonals, alternating between
right-multiplications by ``T^{-1}`` (even sweeps) and left-multiplications
by ``T`` (odd sweeps), until only a diagonal ``D`` remains.  The
left-applied inverses are then commuted through ``D`` using the identity
``T^{-1} D = D' T'`` so that the final form is
``U = D_out @ (product of MZI matrices)`` — i.e. a physical mesh followed by
an output phase screen.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..exceptions import DecompositionError
from ..photonics.mzi import mzi_transfer
from ..utils.linalg import assert_unitary
from .decomposition import (
    MeshDecomposition,
    MZIConfig,
    assign_columns,
    factor_diag_times_mzi,
    solve_left_nulling,
    solve_right_nulling,
    wrap_phase,
)


def clements_decompose(unitary: np.ndarray, atol: float = 1e-8) -> MeshDecomposition:
    """Decompose ``unitary`` into a rectangular Clements mesh.

    Parameters
    ----------
    unitary:
        The ``N x N`` unitary matrix to realize.
    atol:
        Unitarity tolerance for the input and the reconstruction check.

    Returns
    -------
    MeshDecomposition
        MZI settings in propagation order plus output phases; its
        :meth:`~repro.mesh.decomposition.MeshDecomposition.reconstruct`
        reproduces ``unitary`` to numerical precision.
    """
    unitary = assert_unitary(unitary, atol=atol, name="unitary")
    n = unitary.shape[0]
    work = unitary.astype(np.complex128).copy()

    # Operations recorded during the nulling sweeps.
    right_ops: List[Tuple[int, float, float]] = []  # (mode, theta, phi): applied as U @ T^{-1}
    left_ops: List[Tuple[int, float, float]] = []  # (mode, theta, phi): applied as T @ U

    for sweep in range(n - 1):
        if sweep % 2 == 0:
            # Null elements using right-multiplications by T^{-1}.
            for j in range(sweep + 1):
                mode = sweep - j
                row = n - 1 - j
                theta, phi = solve_right_nulling(work[row, mode], work[row, mode + 1])
                t_inv = mzi_transfer(theta, phi).conj().T
                work[:, mode : mode + 2] = work[:, mode : mode + 2] @ t_inv
                right_ops.append((mode, theta, phi))
        else:
            # Null elements using left-multiplications by T.
            for j in range(sweep + 1):
                mode = n - 2 + j - sweep
                col = j
                theta, phi = solve_left_nulling(work[mode, col], work[mode + 1, col])
                t_mat = mzi_transfer(theta, phi)
                work[mode : mode + 2, :] = t_mat @ work[mode : mode + 2, :]
                left_ops.append((mode, theta, phi))

    # ``work`` should now be diagonal.
    off_diagonal = work - np.diag(np.diagonal(work))
    if np.max(np.abs(off_diagonal)) > 1e-7:
        raise DecompositionError(
            f"Clements nulling failed: residual off-diagonal magnitude "
            f"{np.max(np.abs(off_diagonal)):.3e}"
        )
    diag = np.diagonal(work).copy()

    # We now have:  D = L_p ... L_1 @ U @ T_1^{-1} ... T_k^{-1}
    # hence         U = L_1^{-1} ... L_p^{-1} @ D @ T_k ... T_1.
    # Commute every L_i^{-1} through the diagonal from the innermost outwards:
    # L^{-1} @ D = D' @ T', which keeps the expression in the form
    # (remaining L^{-1}s) @ D' @ (T' ... ) @ (T_k ... T_1).
    commuted_ops: List[Tuple[int, float, float]] = []
    for mode, theta, phi in reversed(left_ops):
        t_inv = mzi_transfer(theta, phi).conj().T
        block = t_inv @ np.diag(diag[mode : mode + 2])
        a, b, new_theta, new_phi = factor_diag_times_mzi(block)
        diag = diag.copy()
        diag[mode] = a
        diag[mode + 1] = b
        commuted_ops.append((mode, new_theta, new_phi))

    # In matrix-product order (left to right) the expression is now
    #   U = diag @ C_p' @ ... @ C_1' @ T_k @ T_{k-1} ... @ T_1
    # where C_i' is the commuted version of L_i and T_j the j-th right op.
    # Propagation order (first device the light meets) is the reverse:
    # T_1, T_2, ..., T_k, C_1', ..., C_p' — i.e. the right ops in application
    # order followed by the commuted ops in the order they were generated
    # (innermost left op first).
    propagation: List[Tuple[int, float, float]] = list(right_ops) + list(commuted_ops)

    modes = [op[0] for op in propagation]
    columns = assign_columns(modes, n)
    configs = [
        MZIConfig(mode=mode, theta=theta, phi=phi, column=column, index=idx)
        for idx, ((mode, theta, phi), column) in enumerate(zip(propagation, columns))
    ]
    output_phases = np.array([wrap_phase(angle) for angle in np.angle(diag)], dtype=np.float64)

    decomposition = MeshDecomposition(n=n, configs=configs, output_phases=output_phases, scheme="clements")
    reconstruction = decomposition.reconstruct()
    if not np.allclose(reconstruction, unitary, atol=max(atol, 1e-7)):
        raise DecompositionError(
            "Clements decomposition failed the reconstruction check "
            f"(max error {np.max(np.abs(reconstruction - unitary)):.3e})"
        )
    return decomposition


def clements_mzi_count(n: int) -> int:
    """Number of MZIs in an ``n``-mode Clements mesh (``n(n-1)/2``)."""
    if n < 1:
        raise DecompositionError(f"n must be >= 1, got {n}")
    return n * (n - 1) // 2
