"""Programmable MZI mesh: nominal settings plus uncertainty injection.

:class:`MZIMesh` is the layer-level object of the paper's hierarchy
(§III-C): a physical arrangement of MZIs (each with two phase shifters and
two beam splitters) that realizes a target unitary.  It knows the nominal
tuning of every device and can evaluate the matrix it *actually* implements
when per-device perturbations — phase errors and splitter imbalance — are
applied.

Two evaluation paths are provided: :meth:`MZIMesh.matrix` for a single
realization and :meth:`MZIMesh.matrix_batch` for a stack of ``B``
realizations at once (:class:`MeshPerturbationBatch`).  The batched path
loops once over the MZIs and applies each 2x2 block to all ``B`` matrices
with a stacked matmul, which NumPy evaluates with the same per-slice kernel
as the 2-D product — the batched result is bit-identical to evaluating the
``B`` realizations one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arrays import HOST_BACKEND, active_array_backend
from ..arrays.sweep import ColumnProgram, SweepShape, apply_column_sweep, select_sweep_kernel
from ..exceptions import ShapeError, VariationModelError
from ..photonics import constants
from ..photonics.mzi import mzi_transfer_components
from ._batch import PerturbationBatchFields, ensure_batch_field
from .clements import clements_decompose
from .decomposition import MeshDecomposition, MZIConfig
from .reck import reck_decompose


#: Complex matrix elements per chunk of the batched column sweep — sized so
#: one chunk of transfer matrices (~plus its gathered row temporaries) fits
#: comfortably in a typical L2 cache.
_APPLY_CHUNK_ELEMENTS = 32768


@dataclass
class MeshPerturbation:
    """Per-device perturbations applied to a mesh.

    All arrays are indexed by the mesh's MZI propagation index.  Missing
    (``None``) fields mean "no perturbation" for that parameter.

    Attributes
    ----------
    delta_theta, delta_phi:
        Additive phase errors [rad] on the internal / input phase shifter of
        each MZI.
    delta_r_in, delta_r_out:
        Additive reflectance errors on the first / second beam splitter of
        each MZI (the deviation of ``r`` from its nominal ``1/sqrt(2)``).
    delta_output_phase:
        Additive phase errors [rad] on the output phase screen.
    """

    delta_theta: Optional[np.ndarray] = None
    delta_phi: Optional[np.ndarray] = None
    delta_r_in: Optional[np.ndarray] = None
    delta_r_out: Optional[np.ndarray] = None
    delta_output_phase: Optional[np.ndarray] = None

    @classmethod
    def none(cls, num_mzis: int, n_modes: int) -> "MeshPerturbation":
        """An explicit all-zeros perturbation (useful as an accumulator)."""
        return cls(
            delta_theta=np.zeros(num_mzis),
            delta_phi=np.zeros(num_mzis),
            delta_r_in=np.zeros(num_mzis),
            delta_r_out=np.zeros(num_mzis),
            delta_output_phase=np.zeros(n_modes),
        )

    def validate(self, num_mzis: int, n_modes: int) -> None:
        """Check array lengths against the mesh dimensions."""
        for name, expected in (
            ("delta_theta", num_mzis),
            ("delta_phi", num_mzis),
            ("delta_r_in", num_mzis),
            ("delta_r_out", num_mzis),
            ("delta_output_phase", n_modes),
        ):
            value = getattr(self, name)
            if value is None:
                continue
            value = np.asarray(value, dtype=np.float64)
            if value.shape != (expected,):
                raise ShapeError(f"{name} must have shape ({expected},), got {value.shape}")
            setattr(self, name, value)

    def masked(self, mzi_mask: np.ndarray) -> "MeshPerturbation":
        """Return a copy where perturbations outside ``mzi_mask`` are zeroed.

        ``mzi_mask`` is a boolean array over MZI indices; the output-phase
        perturbation is preserved unchanged.  Used for zonal experiments.
        """
        mzi_mask = np.asarray(mzi_mask, dtype=bool)

        def _mask(values: Optional[np.ndarray]) -> Optional[np.ndarray]:
            if values is None:
                return None
            if values.shape != mzi_mask.shape:
                raise ShapeError(f"mask shape {mzi_mask.shape} does not match values {values.shape}")
            return np.where(mzi_mask, values, 0.0)  # host-only path

        return MeshPerturbation(
            delta_theta=_mask(self.delta_theta),
            delta_phi=_mask(self.delta_phi),
            delta_r_in=_mask(self.delta_r_in),
            delta_r_out=_mask(self.delta_r_out),
            delta_output_phase=None if self.delta_output_phase is None else self.delta_output_phase.copy(),
        )

    def scaled(self, factor: float) -> "MeshPerturbation":
        """Return a copy with every perturbation multiplied by ``factor``."""

        def _scale(values: Optional[np.ndarray]) -> Optional[np.ndarray]:
            return None if values is None else factor * values

        return MeshPerturbation(
            delta_theta=_scale(self.delta_theta),
            delta_phi=_scale(self.delta_phi),
            delta_r_in=_scale(self.delta_r_in),
            delta_r_out=_scale(self.delta_r_out),
            delta_output_phase=_scale(self.delta_output_phase),
        )


@dataclass
class MeshPerturbationBatch(PerturbationBatchFields):
    """A stack of ``B`` per-device mesh perturbations with a leading batch axis.

    Every array carries the Monte Carlo batch axis first: the per-MZI fields
    have shape ``(B, num_mzis)`` and ``delta_output_phase`` has shape
    ``(B, n_modes)``.  ``None`` fields mean "no perturbation" for that
    parameter in every realization.  Stacking, batch-size inference and
    single-realization slicing come from :class:`PerturbationBatchFields`.
    """

    delta_theta: Optional[np.ndarray] = None
    delta_phi: Optional[np.ndarray] = None
    delta_r_in: Optional[np.ndarray] = None
    delta_r_out: Optional[np.ndarray] = None
    delta_output_phase: Optional[np.ndarray] = None

    _FIELDS = ("delta_theta", "delta_phi", "delta_r_in", "delta_r_out", "delta_output_phase")
    _SINGLE_CLS = MeshPerturbation

    def validate(self, num_mzis: int, n_modes: int) -> None:
        """Check array shapes ``(B, ...)`` against the mesh dimensions.

        Host fields go through the historical float64 conversion; fields
        sampled on a device backend are shape-checked in place (see
        :func:`repro.mesh._batch.ensure_batch_field`).
        """
        batch = self.batch_size
        for name, expected in (
            ("delta_theta", num_mzis),
            ("delta_phi", num_mzis),
            ("delta_r_in", num_mzis),
            ("delta_r_out", num_mzis),
            ("delta_output_phase", n_modes),
        ):
            setattr(self, name, ensure_batch_field(getattr(self, name), (batch, expected), name))


class MZIMesh:
    """A mesh of MZIs realizing (approximately) a target unitary matrix.

    Parameters
    ----------
    decomposition:
        Result of :func:`~repro.mesh.clements.clements_decompose` or
        :func:`~repro.mesh.reck.reck_decompose` describing the nominal
        device settings and physical layout.

    Notes
    -----
    The mesh evaluates its transfer matrix by applying each MZI's 2x2 block
    to the growing ``N x N`` matrix in propagation order, then the output
    phase screen.  With no perturbation this reproduces the target unitary
    to numerical precision; with perturbations it gives the *faulty* matrix
    whose impact the paper studies.
    """

    def __init__(self, decomposition: MeshDecomposition):
        self.decomposition = decomposition
        self.n = decomposition.n
        self.configs: List[MZIConfig] = list(decomposition.configs)
        self.output_phases = np.asarray(decomposition.output_phases, dtype=np.float64).copy()
        # Cached nominal parameter arrays (propagation order).
        self._modes = np.array([c.mode for c in self.configs], dtype=np.int64)
        self._columns = np.array([c.column for c in self.configs], dtype=np.int64)
        self._thetas = np.array([c.theta for c in self.configs], dtype=np.float64)
        self._phis = np.array([c.phi for c in self.configs], dtype=np.float64)
        self._nominal_r = np.full(len(self.configs), constants.IDEAL_SPLITTER_AMPLITUDE)
        # MZIs grouped by physical column, preserving propagation order within
        # each group.  Column assignment guarantees that devices sharing a
        # column act on disjoint mode pairs and that devices sharing a mode
        # keep their propagation order across columns, so applying the blocks
        # column by column performs the exact same per-row updates as the
        # strict propagation-order loop.
        self._column_groups = [
            np.flatnonzero(self._columns == column) for column in range(self.num_columns)
        ]
        # Column-sorted (stable) propagation permutation: lets every sweep
        # path gather each block component once and then slice per column.
        # Devices *within* a column act on disjoint mode pairs, so their
        # relative order is free; sorting each column by mode makes the
        # fused kernel's contiguous-block fast path apply wherever the
        # physics allows (every Clements column, most Reck columns)
        # without changing a single output value.
        self._column_groups = [
            group[np.argsort(self._modes[group], kind="stable")]
            for group in self._column_groups
        ]
        self._column_perm = (
            np.concatenate(self._column_groups) if self.num_mzis else np.zeros(0, dtype=np.int64)
        )
        boundaries = np.cumsum([0] + [len(group) for group in self._column_groups])
        # The packed flat-index column program: the sweep structure
        # "compiled" once per mesh (column-sorted top/bottom row indices,
        # interleaved gather/scatter row map, column boundaries, contiguous
        # block bases) and consumed by every registered sweep kernel — no
        # per-call index rebuilding.
        sorted_modes = self._modes[self._column_perm]
        spans = tuple((int(s), int(e)) for s, e in zip(boundaries[:-1], boundaries[1:]))
        rows = np.empty(2 * self.num_mzis, dtype=np.int64)
        rows[0::2] = sorted_modes
        rows[1::2] = sorted_modes + 1
        bases = []
        for start, stop in spans:
            block = rows[2 * start : 2 * stop]
            base = int(block[0]) if block.size else 0
            contiguous = block.size and np.array_equal(
                block, np.arange(base, base + block.size)
            )
            bases.append(base if contiguous else None)
        self._column_program = ColumnProgram(
            n=self.n,
            perm=self._column_perm,
            top=sorted_modes,
            bottom=sorted_modes + 1,
            rows=rows,
            starts=np.asarray(boundaries, dtype=np.int64),
            spans=spans,
            bases=tuple(bases),
        )
        # Per-array-backend copies of the program (device namespaces index
        # with their own arrays); the mesh structure never changes (retune
        # only rewrites phases), so entries stay valid.
        self._device_structure: Dict[str, ColumnProgram] = {}

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_unitary(cls, unitary: np.ndarray, scheme: str = "clements", atol: float = 1e-8) -> "MZIMesh":
        """Compile a unitary matrix into a mesh using the requested scheme."""
        scheme = scheme.lower()
        if scheme == "clements":
            return cls(clements_decompose(unitary, atol=atol))
        if scheme == "reck":
            return cls(reck_decompose(unitary, atol=atol))
        raise VariationModelError(f"unknown mesh scheme {scheme!r}; expected 'clements' or 'reck'")

    # ------------------------------------------------------------------ #
    # structural queries
    # ------------------------------------------------------------------ #
    @property
    def num_mzis(self) -> int:
        return len(self.configs)

    @property
    def num_phase_shifters(self) -> int:
        """Tunable phase shifters inside MZIs (2 per device), excluding the output screen."""
        return 2 * self.num_mzis

    @property
    def num_columns(self) -> int:
        return int(self._columns.max()) + 1 if self.num_mzis else 0

    @property
    def num_rows(self) -> int:
        """Number of MZI row positions (mode pairs), ``n - 1``."""
        return self.n - 1

    @property
    def scheme(self) -> str:
        return self.decomposition.scheme

    def thetas(self) -> np.ndarray:
        return self._thetas.copy()

    def phis(self) -> np.ndarray:
        return self._phis.copy()

    def modes(self) -> np.ndarray:
        return self._modes.copy()

    def columns(self) -> np.ndarray:
        return self._columns.copy()

    def grid_positions(self) -> List[Tuple[int, int]]:
        """``(column, row)`` grid coordinates of each MZI, in propagation order.

        The row coordinate is the upper mode index of the device, so the
        layout matches the mesh diagrams in the paper (Fig. 1 and Fig. 3).
        """
        return [(int(col), int(mode)) for col, mode in zip(self._columns, self._modes)]

    def mzi_at(self, column: int, mode: int) -> Optional[int]:
        """Propagation index of the MZI at grid position ``(column, mode)``, if any."""
        matches = np.flatnonzero((self._columns == column) & (self._modes == mode))
        return int(matches[0]) if matches.size else None

    # ------------------------------------------------------------------ #
    # in-place retuning (incremental recompilation)
    # ------------------------------------------------------------------ #
    def retune(self, thetas: np.ndarray, phis: np.ndarray, output_phases: np.ndarray) -> None:
        """Re-tune every phase in place, keeping the physical layout.

        The mode/column structure of a Clements (or Reck) mesh depends only
        on ``n``, so a mesh compiled once can realize any other unitary of
        the same size by updating just its phase settings — this is what
        makes incremental recompilation of a slowly moving weight matrix
        cheap (see :func:`repro.mesh.clements.clements_phases`).  The cached
        column grouping, propagation permutation and mode arrays are all
        reused; ``configs`` and ``decomposition`` are rebuilt so structural
        consumers (zone maps, per-MZI reports) stay consistent.

        Parameters
        ----------
        thetas, phis:
            New phase angles [rad] in propagation order, length ``num_mzis``.
        output_phases:
            New output phase screen, length ``n``.
        """
        thetas = np.asarray(thetas, dtype=np.float64)
        phis = np.asarray(phis, dtype=np.float64)
        output_phases = np.asarray(output_phases, dtype=np.float64)
        if thetas.shape != (self.num_mzis,) or phis.shape != (self.num_mzis,):
            raise ShapeError(
                f"thetas/phis must have shape ({self.num_mzis},), "
                f"got {thetas.shape} and {phis.shape}"
            )
        if output_phases.shape != (self.n,):
            raise ShapeError(f"output_phases must have shape ({self.n},), got {output_phases.shape}")
        self._thetas = thetas.copy()
        self._phis = phis.copy()
        self.output_phases = output_phases.copy()
        self.configs = [
            MZIConfig(mode=c.mode, theta=float(t), phi=float(p), column=c.column, index=c.index)
            for c, t, p in zip(self.configs, thetas, phis)
        ]
        self.decomposition = MeshDecomposition(
            n=self.n,
            configs=self.configs,
            output_phases=self.output_phases,
            scheme=self.decomposition.scheme,
        )

    # ------------------------------------------------------------------ #
    # matrix evaluation
    # ------------------------------------------------------------------ #
    def ideal_matrix(self) -> np.ndarray:
        """The nominal (unperturbed) unitary implemented by the mesh."""
        return self.matrix(None)

    def matrix(self, perturbation: Optional[MeshPerturbation] = None) -> np.ndarray:
        """Transfer matrix of the mesh under an optional perturbation.

        Parameters
        ----------
        perturbation:
            Per-device parameter deviations; ``None`` evaluates the nominal
            mesh.

        Returns
        -------
        numpy.ndarray
            The ``n x n`` complex transfer matrix.  It is unitary in the
            nominal case and (slightly) non-unitary only through asymmetric
            splitter imperfections, matching the physics of lossless but
            imbalanced couplers.
        """
        if perturbation is not None:
            perturbation.validate(self.num_mzis, self.n)
        components, output_phases = self._blocks_and_phases(perturbation)
        matrix = np.eye(self.n, dtype=np.complex128)
        # Gather into column-sorted order (pure reordering, so the
        # per-element arithmetic — and the result — is unchanged), then
        # run the packed program through the selected sweep kernel.
        program = self._column_program
        sorted_components = tuple(c[..., program.perm] for c in components)
        kernel = select_sweep_kernel(
            HOST_BACKEND, SweepShape(self.n, 1, program.num_columns, self.scheme)
        )
        apply_column_sweep(HOST_BACKEND, matrix, sorted_components, program, kernel=kernel)
        return np.exp(1j * output_phases)[:, np.newaxis] * matrix  # host-only path

    def _blocks_and_phases(self, perturbation, backend=None) -> Tuple[Tuple[np.ndarray, ...], np.ndarray]:
        """Perturbed block components and output phases, shared by both paths.

        ``perturbation`` may be a :class:`MeshPerturbation` (1-D fields) or a
        :class:`MeshPerturbationBatch` (2-D fields, leading batch axis); the
        fields broadcast against the 1-D nominal parameter arrays either way,
        so batched parameters go through the exact same elementwise
        arithmetic as single realizations.  Under a device ``backend`` the
        nominal parameter arrays are moved across once (cached transfer) and
        every operation runs in the device namespace; the host backend
        executes the exact historical NumPy calls.
        """
        backend = backend if backend is not None else HOST_BACKEND
        xp = backend.xp
        thetas = backend.asarray_cached(self._thetas)
        phis = backend.asarray_cached(self._phis)
        r_in = backend.asarray_cached(self._nominal_r)
        r_out = r_in
        output_phases = backend.asarray_cached(self.output_phases)
        if perturbation is not None:
            if perturbation.delta_theta is not None:
                thetas = thetas + xp.asarray(perturbation.delta_theta)
            if perturbation.delta_phi is not None:
                phis = phis + xp.asarray(perturbation.delta_phi)
            if perturbation.delta_r_in is not None:
                r_in = xp.clip(r_in + xp.asarray(perturbation.delta_r_in), 0.0, 1.0)
            if perturbation.delta_r_out is not None:
                r_out = xp.clip(r_out + xp.asarray(perturbation.delta_r_out), 0.0, 1.0)
            if perturbation.delta_output_phase is not None:
                output_phases = output_phases + xp.asarray(perturbation.delta_output_phase)
        return mzi_transfer_components(thetas, phis, r_in, r2=r_out), output_phases

    def column_program(self, backend=None) -> ColumnProgram:
        """The packed column program, converted (and cached) for ``backend``.

        Host backends reuse the precomputed NumPy program; device backends
        get a cached device copy (the structure is immutable —
        :meth:`retune` rewrites only phases — so entries never go stale).
        """
        if backend is None or backend.is_host:
            return self._column_program
        cached = self._device_structure.get(backend.name)
        if cached is None:
            cached = self._column_program.to_backend(backend)
            self._device_structure[backend.name] = cached
        return cached

    def perturbed_matrix(self, perturbation: MeshPerturbation) -> np.ndarray:
        """Alias of :meth:`matrix` that makes call sites more readable."""
        return self.matrix(perturbation)

    def matrix_batch(
        self,
        perturbation: Optional[MeshPerturbationBatch] = None,
        batch_size: Optional[int] = None,
        workspace=None,
        workspace_key: Optional[object] = None,
    ) -> np.ndarray:
        """Transfer matrices of ``B`` perturbation realizations at once.

        Parameters
        ----------
        perturbation:
            Stacked per-device deviations with leading batch axis ``B``;
            ``None`` replicates the nominal mesh ``batch_size`` times.
        batch_size:
            Required when ``perturbation`` is ``None``; otherwise it must
            match the perturbation's batch size when given.
        workspace, workspace_key:
            Optional :class:`~repro.training.workspace.VectorizedWorkspace`
            (plus a key unique to this mesh within the evaluation) backing
            the ``(B, n, n)`` result with a reusable arena buffer and fusing
            the output phase screen into it in place — no intermediate
            allocation between the column sweep and the returned matrices.
            Values are bit-identical with and without it; the result is
            then valid until the next workspace-backed call under the key.

        Returns
        -------
        numpy.ndarray
            Complex array of shape ``(B, n, n)`` (in the active array
            backend's namespace), bit-identical to stacking ``B`` calls of
            :meth:`matrix` on the individual realizations.
        """
        backend = active_array_backend()
        xp = backend.xp
        if perturbation is None:
            if batch_size is None:
                raise ValueError("batch_size is required when perturbation is None")
            if batch_size < 1:
                raise ValueError(f"batch_size must be >= 1, got {batch_size}")
            nominal = self.matrix(None)
            if workspace is None and backend.is_host:
                return np.broadcast_to(nominal, (batch_size,) + nominal.shape).copy()
            matrices = self._batch_buffer(backend, workspace, workspace_key, batch_size)
            matrices[...] = xp.asarray(nominal)
            return matrices

        perturbation.validate(self.num_mzis, self.n)
        batch = perturbation.batch_size
        if batch_size is not None and batch_size != batch:
            raise ShapeError(f"batch_size {batch_size} does not match perturbation batch {batch}")

        # (B, num_mzis) block components; unperturbed parameter families broadcast.
        components, output_phases = self._blocks_and_phases(perturbation, backend)
        if components[0].ndim == 1:  # only the output phase screen was perturbed
            components = tuple(xp.broadcast_to(c, (batch,) + c.shape) for c in components)
        matrices = self._batch_buffer(backend, workspace, workspace_key, batch)
        matrices[...] = xp.eye(self.n, dtype=xp.complex128)
        # Gather each component into column-sorted order once (cheap views
        # per column afterwards; pure reordering), then run the sweep.  A
        # kernel that blocks internally (the fused megakernel, the device
        # kernels) takes the whole batch in one call; otherwise chunk the
        # batch axis here so the per-chunk matrices and gathered rows stay
        # cache-resident during the column sweep.
        program = self.column_program(backend)
        sorted_components = tuple(c[..., program.perm] for c in components)
        kernel = select_sweep_kernel(
            backend, SweepShape(self.n, batch, program.num_columns, self.scheme)
        )
        if kernel.blocks_internally:
            apply_column_sweep(backend, matrices, sorted_components, program, kernel=kernel)
        else:
            chunk = max(1, _APPLY_CHUNK_ELEMENTS // max(1, self.n * self.n))
            for start in range(0, batch, chunk):
                stop = min(start + chunk, batch)
                apply_column_sweep(
                    backend,
                    matrices[start:stop],
                    tuple(c[start:stop] for c in sorted_components),
                    program,
                    kernel=kernel,
                )
        phases = xp.exp(1j * output_phases)
        if phases.ndim == 1:
            phases = phases[None]
        if workspace is None:
            return phases[:, :, None] * matrices
        xp.multiply(phases[:, :, None], matrices, out=matrices)
        return matrices

    def _batch_buffer(self, backend, workspace, workspace_key, batch: int):
        """The ``(B, n, n)`` destination of the batched sweep (arena or fresh)."""
        shape = (batch, self.n, self.n)
        if workspace is not None:
            return workspace.buffer((workspace_key, "mesh/matrices"), shape, np.complex128)
        return backend.empty(shape, np.complex128)

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    def phase_statistics(self) -> Dict[str, float]:
        """Summary statistics of the tuned phases (used in reports/tests)."""
        all_phases = np.concatenate([self._thetas, self._phis])
        return {
            "mean_theta": float(self._thetas.mean()) if self.num_mzis else 0.0,
            "mean_phi": float(self._phis.mean()) if self.num_mzis else 0.0,
            "max_phase": float(all_phases.max()) if self.num_mzis else 0.0,
            "min_phase": float(all_phases.min()) if self.num_mzis else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"MZIMesh(n={self.n}, scheme={self.scheme!r}, num_mzis={self.num_mzis}, "
            f"columns={self.num_columns})"
        )
