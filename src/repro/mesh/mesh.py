"""Programmable MZI mesh: nominal settings plus uncertainty injection.

:class:`MZIMesh` is the layer-level object of the paper's hierarchy
(§III-C): a physical arrangement of MZIs (each with two phase shifters and
two beam splitters) that realizes a target unitary.  It knows the nominal
tuning of every device and can evaluate the matrix it *actually* implements
when per-device perturbations — phase errors and splitter imbalance — are
applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError, VariationModelError
from ..photonics import constants
from ..photonics.mzi import mzi_transfer_nonideal
from .clements import clements_decompose
from .decomposition import MeshDecomposition, MZIConfig
from .reck import reck_decompose


@dataclass
class MeshPerturbation:
    """Per-device perturbations applied to a mesh.

    All arrays are indexed by the mesh's MZI propagation index.  Missing
    (``None``) fields mean "no perturbation" for that parameter.

    Attributes
    ----------
    delta_theta, delta_phi:
        Additive phase errors [rad] on the internal / input phase shifter of
        each MZI.
    delta_r_in, delta_r_out:
        Additive reflectance errors on the first / second beam splitter of
        each MZI (the deviation of ``r`` from its nominal ``1/sqrt(2)``).
    delta_output_phase:
        Additive phase errors [rad] on the output phase screen.
    """

    delta_theta: Optional[np.ndarray] = None
    delta_phi: Optional[np.ndarray] = None
    delta_r_in: Optional[np.ndarray] = None
    delta_r_out: Optional[np.ndarray] = None
    delta_output_phase: Optional[np.ndarray] = None

    @classmethod
    def none(cls, num_mzis: int, n_modes: int) -> "MeshPerturbation":
        """An explicit all-zeros perturbation (useful as an accumulator)."""
        return cls(
            delta_theta=np.zeros(num_mzis),
            delta_phi=np.zeros(num_mzis),
            delta_r_in=np.zeros(num_mzis),
            delta_r_out=np.zeros(num_mzis),
            delta_output_phase=np.zeros(n_modes),
        )

    def validate(self, num_mzis: int, n_modes: int) -> None:
        """Check array lengths against the mesh dimensions."""
        for name, expected in (
            ("delta_theta", num_mzis),
            ("delta_phi", num_mzis),
            ("delta_r_in", num_mzis),
            ("delta_r_out", num_mzis),
            ("delta_output_phase", n_modes),
        ):
            value = getattr(self, name)
            if value is None:
                continue
            value = np.asarray(value, dtype=np.float64)
            if value.shape != (expected,):
                raise ShapeError(f"{name} must have shape ({expected},), got {value.shape}")
            setattr(self, name, value)

    def masked(self, mzi_mask: np.ndarray) -> "MeshPerturbation":
        """Return a copy where perturbations outside ``mzi_mask`` are zeroed.

        ``mzi_mask`` is a boolean array over MZI indices; the output-phase
        perturbation is preserved unchanged.  Used for zonal experiments.
        """
        mzi_mask = np.asarray(mzi_mask, dtype=bool)

        def _mask(values: Optional[np.ndarray]) -> Optional[np.ndarray]:
            if values is None:
                return None
            if values.shape != mzi_mask.shape:
                raise ShapeError(f"mask shape {mzi_mask.shape} does not match values {values.shape}")
            return np.where(mzi_mask, values, 0.0)

        return MeshPerturbation(
            delta_theta=_mask(self.delta_theta),
            delta_phi=_mask(self.delta_phi),
            delta_r_in=_mask(self.delta_r_in),
            delta_r_out=_mask(self.delta_r_out),
            delta_output_phase=None if self.delta_output_phase is None else self.delta_output_phase.copy(),
        )

    def scaled(self, factor: float) -> "MeshPerturbation":
        """Return a copy with every perturbation multiplied by ``factor``."""

        def _scale(values: Optional[np.ndarray]) -> Optional[np.ndarray]:
            return None if values is None else factor * values

        return MeshPerturbation(
            delta_theta=_scale(self.delta_theta),
            delta_phi=_scale(self.delta_phi),
            delta_r_in=_scale(self.delta_r_in),
            delta_r_out=_scale(self.delta_r_out),
            delta_output_phase=_scale(self.delta_output_phase),
        )


class MZIMesh:
    """A mesh of MZIs realizing (approximately) a target unitary matrix.

    Parameters
    ----------
    decomposition:
        Result of :func:`~repro.mesh.clements.clements_decompose` or
        :func:`~repro.mesh.reck.reck_decompose` describing the nominal
        device settings and physical layout.

    Notes
    -----
    The mesh evaluates its transfer matrix by applying each MZI's 2x2 block
    to the growing ``N x N`` matrix in propagation order, then the output
    phase screen.  With no perturbation this reproduces the target unitary
    to numerical precision; with perturbations it gives the *faulty* matrix
    whose impact the paper studies.
    """

    def __init__(self, decomposition: MeshDecomposition):
        self.decomposition = decomposition
        self.n = decomposition.n
        self.configs: List[MZIConfig] = list(decomposition.configs)
        self.output_phases = np.asarray(decomposition.output_phases, dtype=np.float64).copy()
        # Cached nominal parameter arrays (propagation order).
        self._modes = np.array([c.mode for c in self.configs], dtype=np.int64)
        self._columns = np.array([c.column for c in self.configs], dtype=np.int64)
        self._thetas = np.array([c.theta for c in self.configs], dtype=np.float64)
        self._phis = np.array([c.phi for c in self.configs], dtype=np.float64)
        self._nominal_r = np.full(len(self.configs), constants.IDEAL_SPLITTER_AMPLITUDE)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_unitary(cls, unitary: np.ndarray, scheme: str = "clements", atol: float = 1e-8) -> "MZIMesh":
        """Compile a unitary matrix into a mesh using the requested scheme."""
        scheme = scheme.lower()
        if scheme == "clements":
            return cls(clements_decompose(unitary, atol=atol))
        if scheme == "reck":
            return cls(reck_decompose(unitary, atol=atol))
        raise VariationModelError(f"unknown mesh scheme {scheme!r}; expected 'clements' or 'reck'")

    # ------------------------------------------------------------------ #
    # structural queries
    # ------------------------------------------------------------------ #
    @property
    def num_mzis(self) -> int:
        return len(self.configs)

    @property
    def num_phase_shifters(self) -> int:
        """Tunable phase shifters inside MZIs (2 per device), excluding the output screen."""
        return 2 * self.num_mzis

    @property
    def num_columns(self) -> int:
        return int(self._columns.max()) + 1 if self.num_mzis else 0

    @property
    def num_rows(self) -> int:
        """Number of MZI row positions (mode pairs), ``n - 1``."""
        return self.n - 1

    @property
    def scheme(self) -> str:
        return self.decomposition.scheme

    def thetas(self) -> np.ndarray:
        return self._thetas.copy()

    def phis(self) -> np.ndarray:
        return self._phis.copy()

    def modes(self) -> np.ndarray:
        return self._modes.copy()

    def columns(self) -> np.ndarray:
        return self._columns.copy()

    def grid_positions(self) -> List[Tuple[int, int]]:
        """``(column, row)`` grid coordinates of each MZI, in propagation order.

        The row coordinate is the upper mode index of the device, so the
        layout matches the mesh diagrams in the paper (Fig. 1 and Fig. 3).
        """
        return [(int(col), int(mode)) for col, mode in zip(self._columns, self._modes)]

    def mzi_at(self, column: int, mode: int) -> Optional[int]:
        """Propagation index of the MZI at grid position ``(column, mode)``, if any."""
        matches = np.flatnonzero((self._columns == column) & (self._modes == mode))
        return int(matches[0]) if matches.size else None

    # ------------------------------------------------------------------ #
    # matrix evaluation
    # ------------------------------------------------------------------ #
    def ideal_matrix(self) -> np.ndarray:
        """The nominal (unperturbed) unitary implemented by the mesh."""
        return self.matrix(None)

    def matrix(self, perturbation: Optional[MeshPerturbation] = None) -> np.ndarray:
        """Transfer matrix of the mesh under an optional perturbation.

        Parameters
        ----------
        perturbation:
            Per-device parameter deviations; ``None`` evaluates the nominal
            mesh.

        Returns
        -------
        numpy.ndarray
            The ``n x n`` complex transfer matrix.  It is unitary in the
            nominal case and (slightly) non-unitary only through asymmetric
            splitter imperfections, matching the physics of lossless but
            imbalanced couplers.
        """
        thetas = self._thetas
        phis = self._phis
        r_in = self._nominal_r
        r_out = self._nominal_r
        output_phases = self.output_phases

        if perturbation is not None:
            perturbation.validate(self.num_mzis, self.n)
            if perturbation.delta_theta is not None:
                thetas = thetas + perturbation.delta_theta
            if perturbation.delta_phi is not None:
                phis = phis + perturbation.delta_phi
            if perturbation.delta_r_in is not None:
                r_in = np.clip(r_in + perturbation.delta_r_in, 0.0, 1.0)
            if perturbation.delta_r_out is not None:
                r_out = np.clip(r_out + perturbation.delta_r_out, 0.0, 1.0)
            if perturbation.delta_output_phase is not None:
                output_phases = output_phases + perturbation.delta_output_phase

        blocks = mzi_transfer_nonideal(thetas, phis, r_in, r2=r_out)
        matrix = np.eye(self.n, dtype=np.complex128)
        for index, mode in enumerate(self._modes):
            rows = matrix[mode : mode + 2, :]
            matrix[mode : mode + 2, :] = blocks[index] @ rows
        return np.exp(1j * output_phases)[:, np.newaxis] * matrix

    def perturbed_matrix(self, perturbation: MeshPerturbation) -> np.ndarray:
        """Alias of :meth:`matrix` that makes call sites more readable."""
        return self.matrix(perturbation)

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    def phase_statistics(self) -> Dict[str, float]:
        """Summary statistics of the tuned phases (used in reports/tests)."""
        all_phases = np.concatenate([self._thetas, self._phis])
        return {
            "mean_theta": float(self._thetas.mean()) if self.num_mzis else 0.0,
            "mean_phi": float(self._phis.mean()) if self.num_mzis else 0.0,
            "max_phase": float(all_phases.max()) if self.num_mzis else 0.0,
            "min_phase": float(all_phases.min()) if self.num_mzis else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"MZIMesh(n={self.n}, scheme={self.scheme!r}, num_mzis={self.num_mzis}, "
            f"columns={self.num_columns})"
        )
