"""Unitary-mesh compilation: Clements/Reck decompositions, meshes, SVD layers."""

from .clements import clements_decompose, clements_mzi_count
from .decomposition import (
    MeshDecomposition,
    MZIConfig,
    assign_columns,
    factor_diag_times_mzi,
    solve_left_nulling,
    solve_right_nulling,
    wrap_phase,
)
from .diagonal import DiagonalPerturbation, DiagonalPerturbationBatch, DiagonalStage
from .mesh import MeshPerturbation, MeshPerturbationBatch, MZIMesh
from .reck import reck_decompose, reck_mzi_count
from .svd_layer import LayerPerturbation, LayerPerturbationBatch, PhotonicLinearLayer

__all__ = [
    "MZIConfig",
    "MeshDecomposition",
    "assign_columns",
    "wrap_phase",
    "solve_left_nulling",
    "solve_right_nulling",
    "factor_diag_times_mzi",
    "clements_decompose",
    "clements_mzi_count",
    "reck_decompose",
    "reck_mzi_count",
    "MZIMesh",
    "MeshPerturbation",
    "MeshPerturbationBatch",
    "DiagonalStage",
    "DiagonalPerturbation",
    "DiagonalPerturbationBatch",
    "PhotonicLinearLayer",
    "LayerPerturbation",
    "LayerPerturbationBatch",
]
