"""SVD-based photonic linear layer: ``M = U @ Sigma @ V^H`` in hardware.

This is the paper's construction of a fully connected layer (§II-B, Fig. 1):
the complex weight matrix is factored with an SVD, the two unitary factors
are compiled onto Clements MZI meshes, and the singular values are realized
by an MZI-attenuator bank plus a global optical gain ``beta``.  The layer
can evaluate the matrix it implements both nominally and under per-device
uncertainties, which is what turns weight matrices into *faulty* weight
matrices during the Monte Carlo experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, DecompositionError, ShapeError
from ..utils.linalg import svd_decompose
from ..utils.validation import as_complex_array
from .clements import clements_phases
from .diagonal import DiagonalPerturbation, DiagonalPerturbationBatch, DiagonalStage
from .mesh import MeshPerturbation, MeshPerturbationBatch, MZIMesh


@dataclass
class LayerPerturbation:
    """Perturbations for all three stages of one photonic linear layer."""

    u: Optional[MeshPerturbation] = None
    v: Optional[MeshPerturbation] = None
    sigma: Optional[DiagonalPerturbation] = None

    @classmethod
    def none(cls) -> "LayerPerturbation":
        return cls()


@dataclass
class LayerPerturbationBatch:
    """Stacked perturbations (leading batch axis ``B``) for one photonic layer."""

    u: Optional[MeshPerturbationBatch] = None
    v: Optional[MeshPerturbationBatch] = None
    sigma: Optional[DiagonalPerturbationBatch] = None

    @property
    def batch_size(self) -> int:
        for stage in (self.u, self.v, self.sigma):
            if stage is not None:
                return stage.batch_size
        raise ShapeError("empty LayerPerturbationBatch has no batch size")

    @classmethod
    def stack(
        cls,
        perturbations: Sequence[LayerPerturbation],
        workspace=None,
        workspace_key=None,
    ) -> "LayerPerturbationBatch":
        """Stack per-iteration :class:`LayerPerturbation` draws into a batch.

        A stage that is ``None`` in every realization stays ``None``;
        stages present in only some realizations get all-``None`` placeholder
        rows, which the stage-level ``stack`` zero-fills field by field.
        ``workspace``/``workspace_key`` optionally back the stacked arrays
        with reusable buffers (see
        :meth:`~repro.mesh._batch.PerturbationBatchFields.stack`); the
        stage name is appended to the key so the three stages never alias.
        """
        perturbations = list(perturbations)
        if not perturbations:
            raise ValueError("cannot stack an empty sequence of perturbations")
        u_stages = [p.u for p in perturbations]
        v_stages = [p.v for p in perturbations]
        sigma_stages = [p.sigma for p in perturbations]
        return cls(
            u=None
            if all(s is None for s in u_stages)
            else MeshPerturbationBatch.stack(
                [s if s is not None else MeshPerturbation() for s in u_stages],
                workspace=workspace,
                workspace_key=(workspace_key, "u"),
            ),
            v=None
            if all(s is None for s in v_stages)
            else MeshPerturbationBatch.stack(
                [s if s is not None else MeshPerturbation() for s in v_stages],
                workspace=workspace,
                workspace_key=(workspace_key, "v"),
            ),
            sigma=None
            if all(s is None for s in sigma_stages)
            else DiagonalPerturbationBatch.stack(
                [s if s is not None else DiagonalPerturbation() for s in sigma_stages],
                workspace=workspace,
                workspace_key=(workspace_key, "sigma"),
            ),
        )

    def realization(self, index: int) -> LayerPerturbation:
        """The single-realization perturbation at batch position ``index``."""
        return LayerPerturbation(
            u=None if self.u is None else self.u.realization(index),
            v=None if self.v is None else self.v.realization(index),
            sigma=None if self.sigma is None else self.sigma.realization(index),
        )


class PhotonicLinearLayer:
    """Hardware realization of one complex fully connected layer.

    Parameters
    ----------
    weight:
        Complex weight matrix of shape ``(out_features, in_features)`` — the
        software-trained weights to compile onto hardware.
    scheme:
        Mesh topology used for the unitary factors (``"clements"`` by
        default, ``"reck"`` for the ablation baseline).

    Notes
    -----
    The layer computes ``y = M @ x`` for column vectors, or equivalently
    ``Y = X @ M.T`` for batches of row vectors, where ``M`` is the
    (possibly perturbed) hardware matrix ``U @ Sigma @ V^H``.
    """

    def __init__(self, weight: np.ndarray, scheme: str = "clements"):
        weight = as_complex_array(weight, "weight")
        if weight.ndim != 2:
            raise ShapeError(f"weight must be 2-D, got shape {weight.shape}")
        self.weight = weight.copy()
        self.out_features, self.in_features = weight.shape
        self.scheme = scheme

        u, s, vh = svd_decompose(weight)
        self.mesh_u = MZIMesh.from_unitary(u, scheme=scheme)
        self.mesh_v = MZIMesh.from_unitary(vh, scheme=scheme)
        self.diagonal = DiagonalStage(s, shape=(self.out_features, self.in_features))
        # Cached factors of the last compile: the warm-start basis for
        # incremental recompiles (see retune_from_weight).
        self._svd = (u, s, vh)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def num_mzis(self) -> int:
        """Total MZIs in the layer (two unitary meshes plus the Sigma bank)."""
        return self.mesh_u.num_mzis + self.mesh_v.num_mzis + self.diagonal.num_mzis

    @property
    def num_phase_shifters(self) -> int:
        """Total tunable phase shifters inside MZIs (2 per MZI)."""
        return 2 * self.num_mzis

    @property
    def gain(self) -> float:
        """The global optical amplification ``beta`` of the Sigma stage."""
        return self.diagonal.gain

    def hardware_summary(self) -> Dict[str, int]:
        """Per-stage MZI counts (useful for reports and the paper's 1374 figure)."""
        return {
            "u_mzis": self.mesh_u.num_mzis,
            "v_mzis": self.mesh_v.num_mzis,
            "sigma_mzis": self.diagonal.num_mzis,
            "total_mzis": self.num_mzis,
            "phase_shifters": self.num_phase_shifters,
        }

    # ------------------------------------------------------------------ #
    # incremental recompilation
    # ------------------------------------------------------------------ #
    def retune_from_weight(self, weight: np.ndarray, max_error: float = 1e-7) -> bool:
        """Warm-started in-place recompile of the layer onto new weights.

        Instead of rebuilding the layer from scratch (fresh SVD, two fully
        validated mesh decompositions, new stage objects), this

        1. **rotation-updates the cached SVD**: with ``U, Vh`` from the last
           compile, the core ``C = U^H W V`` is decomposed (for a slowly
           moving ``W`` it is nearly diagonal, so the new factors
           ``U' = U P`` and ``V'^H = Q^H V^H`` stay continuously connected
           to the cached basis — no arbitrary column-phase jumps between
           steps) — an *exact* SVD of ``W``, assembled in the old basis;
        2. re-derives the Clements phases through the trusted fast path
           (:func:`~repro.mesh.clements.clements_phases`) and retunes the
           cached meshes and the attenuator bank **in place**, reusing
           every piece of structural bookkeeping; and
        3. validates the result against ``weight`` with one vectorized
           reconstruction (``max |M_nominal - W| <= max_error``).

        Returns ``True`` on success.  On ``False`` the warm start diverged
        (or the layer uses a non-Clements scheme) and the layer state is
        **unspecified** — the caller must rebuild the layer exactly, which
        is precisely the fallback :class:`repro.training.injector.NoiseInjector`
        implements.
        """
        if self.scheme != "clements":
            return False
        weight = as_complex_array(weight, "weight")
        if weight.shape != (self.out_features, self.in_features):
            raise ShapeError(
                f"weight must have shape {(self.out_features, self.in_features)}, got {weight.shape}"
            )
        u_prev, _, vh_prev = self._svd
        core = u_prev.conj().T @ weight @ vh_prev.conj().T
        try:
            p, s, qh = np.linalg.svd(core, full_matrices=True)
        except np.linalg.LinAlgError:  # pragma: no cover - LAPACK non-convergence
            return False
        u = u_prev @ p
        vh = qh @ vh_prev
        try:
            self.mesh_u.retune(*clements_phases(u))
            self.mesh_v.retune(*clements_phases(vh))
            self.diagonal.retune(s)
        except (DecompositionError, ConfigurationError):
            return False
        self.weight = weight.copy()
        self._svd = (u, s, vh)
        if self.reconstruction_error() > max_error:
            return False
        return True

    # ------------------------------------------------------------------ #
    # matrix evaluation
    # ------------------------------------------------------------------ #
    def matrix(self, perturbation: Optional[LayerPerturbation] = None) -> np.ndarray:
        """The complex matrix the hardware implements under a perturbation."""
        if perturbation is None:
            perturbation = LayerPerturbation.none()
        u = self.mesh_u.matrix(perturbation.u)
        v = self.mesh_v.matrix(perturbation.v)
        amplitudes = self.diagonal.gain * self.diagonal.attenuations(perturbation.sigma)
        return self._scale_columns(u, amplitudes) @ v

    def _scale_columns(self, u: np.ndarray, amplitudes: np.ndarray) -> np.ndarray:
        """``u @ Sigma`` evaluated as column scaling.

        ``Sigma`` is (rectangular) diagonal, so the product scales the first
        ``k`` columns of ``u`` and zeroes the rest — bit-identical to the
        dense matmul (the skipped terms are exact zeros) at a fraction of
        the cost.  ``u`` may carry a leading batch axis.
        """
        k = self.diagonal.num_mzis
        rows, cols = self.diagonal.shape
        scaled = np.zeros(u.shape[:-2] + (rows, cols), dtype=np.complex128)
        scaled[..., :, :k] = u[..., :, :k] * amplitudes[..., np.newaxis, :]
        return scaled

    def matrix_batch(
        self,
        perturbation: Optional[LayerPerturbationBatch] = None,
        batch_size: Optional[int] = None,
    ) -> np.ndarray:
        """Hardware matrices of ``B`` perturbation realizations, ``(B, out, in)``.

        Bit-identical to stacking ``B`` calls of :meth:`matrix` on the
        individual realizations (the stacked matmuls evaluate each batch
        slice with the same kernel as the 2-D products).
        """
        if perturbation is None:
            if batch_size is None:
                raise ValueError("batch_size is required when perturbation is None")
            batch = int(batch_size)
        else:
            batch = perturbation.batch_size
            if batch_size is not None and batch_size != batch:
                raise ShapeError(
                    f"batch_size {batch_size} does not match perturbation batch {batch}"
                )
        u_pert = perturbation.u if perturbation is not None else None
        v_pert = perturbation.v if perturbation is not None else None
        sigma_pert = perturbation.sigma if perturbation is not None else None
        u = self.mesh_u.matrix_batch(u_pert, batch_size=batch)
        v = self.mesh_v.matrix_batch(v_pert, batch_size=batch)
        if sigma_pert is None:
            amplitudes = self.diagonal.gain * self.diagonal.attenuations(None)
        else:
            amplitudes = self.diagonal.gain * self.diagonal.attenuations_batch(sigma_pert)
        return self._scale_columns(u, amplitudes) @ v

    def ideal_matrix(self) -> np.ndarray:
        """Nominal hardware matrix (equals ``weight`` to numerical precision)."""
        return self.matrix(None)

    def reconstruction_error(self) -> float:
        """Max absolute difference between the nominal hardware matrix and the weights."""
        return float(np.max(np.abs(self.ideal_matrix() - self.weight)))

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, perturbation: Optional[LayerPerturbation] = None) -> np.ndarray:
        """Apply the (possibly perturbed) layer to a batch of complex inputs.

        Parameters
        ----------
        inputs:
            Array of shape ``(batch, in_features)`` or ``(in_features,)``.
        perturbation:
            Optional per-device uncertainty realization.
        """
        inputs = as_complex_array(inputs, "inputs")
        matrix = self.matrix(perturbation)
        if inputs.ndim == 1:
            if inputs.shape[0] != self.in_features:
                raise ShapeError(f"expected input length {self.in_features}, got {inputs.shape[0]}")
            return matrix @ inputs
        if inputs.ndim == 2:
            if inputs.shape[1] != self.in_features:
                raise ShapeError(
                    f"expected inputs of shape (batch, {self.in_features}), got {inputs.shape}"
                )
            return inputs @ matrix.T
        raise ShapeError(f"inputs must be 1-D or 2-D, got shape {inputs.shape}")

    __call__ = forward

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"PhotonicLinearLayer(out={self.out_features}, in={self.in_features}, "
            f"scheme={self.scheme!r}, mzis={self.num_mzis})"
        )
