"""SVD-based photonic linear layer: ``M = U @ Sigma @ V^H`` in hardware.

This is the paper's construction of a fully connected layer (§II-B, Fig. 1):
the complex weight matrix is factored with an SVD, the two unitary factors
are compiled onto Clements MZI meshes, and the singular values are realized
by an MZI-attenuator bank plus a global optical gain ``beta``.  The layer
can evaluate the matrix it implements both nominally and under per-device
uncertainties, which is what turns weight matrices into *faulty* weight
matrices during the Monte Carlo experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..arrays import active_array_backend
from ..exceptions import ConfigurationError, DecompositionError, ShapeError
from ..observability.recorder import active as _active_recorder
from ..utils.linalg import svd_decompose
from ..utils.validation import as_complex_array
from .clements import clements_decompose, clements_phases
from .diagonal import DiagonalPerturbation, DiagonalPerturbationBatch, DiagonalStage
from .mesh import MeshPerturbation, MeshPerturbationBatch, MZIMesh
from .reck import reck_decompose

#: Per-process cache of structural (identity-compiled) mesh decompositions,
#: keyed by ``(n, scheme)``.  The physical layout of a Clements/Reck mesh
#: depends only on its size, so one skeleton per size serves every mesh
#: reconstructed from shared-memory parameters (see
#: :meth:`PhotonicLinearLayer.from_tuned_parameters`).
_SKELETON_CACHE: dict = {}


def _skeleton_mesh(n: int, scheme: str) -> MZIMesh:
    """A freshly tunable mesh with the canonical ``(n, scheme)`` structure."""
    key = (int(n), scheme)
    decomposition = _SKELETON_CACHE.get(key)
    if decomposition is None:
        identity = np.eye(n, dtype=np.complex128)
        if scheme == "clements":
            decomposition = clements_decompose(identity)
        elif scheme == "reck":
            decomposition = reck_decompose(identity)
        else:
            raise ConfigurationError(f"unknown mesh scheme {scheme!r}")
        _SKELETON_CACHE[key] = decomposition
    return MZIMesh(decomposition)


@dataclass
class LayerPerturbation:
    """Perturbations for all three stages of one photonic linear layer."""

    u: Optional[MeshPerturbation] = None
    v: Optional[MeshPerturbation] = None
    sigma: Optional[DiagonalPerturbation] = None

    @classmethod
    def none(cls) -> "LayerPerturbation":
        return cls()


@dataclass
class LayerPerturbationBatch:
    """Stacked perturbations (leading batch axis ``B``) for one photonic layer."""

    u: Optional[MeshPerturbationBatch] = None
    v: Optional[MeshPerturbationBatch] = None
    sigma: Optional[DiagonalPerturbationBatch] = None

    @property
    def batch_size(self) -> int:
        for stage in (self.u, self.v, self.sigma):
            if stage is not None:
                return stage.batch_size
        raise ShapeError("empty LayerPerturbationBatch has no batch size")

    @classmethod
    def stack(
        cls,
        perturbations: Sequence[LayerPerturbation],
        workspace=None,
        workspace_key=None,
    ) -> "LayerPerturbationBatch":
        """Stack per-iteration :class:`LayerPerturbation` draws into a batch.

        A stage that is ``None`` in every realization stays ``None``;
        stages present in only some realizations get all-``None`` placeholder
        rows, which the stage-level ``stack`` zero-fills field by field.
        ``workspace``/``workspace_key`` optionally back the stacked arrays
        with reusable buffers (see
        :meth:`~repro.mesh._batch.PerturbationBatchFields.stack`); the
        stage name is appended to the key so the three stages never alias.
        """
        perturbations = list(perturbations)
        if not perturbations:
            raise ValueError("cannot stack an empty sequence of perturbations")
        u_stages = [p.u for p in perturbations]
        v_stages = [p.v for p in perturbations]
        sigma_stages = [p.sigma for p in perturbations]
        return cls(
            u=None
            if all(s is None for s in u_stages)
            else MeshPerturbationBatch.stack(
                [s if s is not None else MeshPerturbation() for s in u_stages],
                workspace=workspace,
                workspace_key=(workspace_key, "u"),
            ),
            v=None
            if all(s is None for s in v_stages)
            else MeshPerturbationBatch.stack(
                [s if s is not None else MeshPerturbation() for s in v_stages],
                workspace=workspace,
                workspace_key=(workspace_key, "v"),
            ),
            sigma=None
            if all(s is None for s in sigma_stages)
            else DiagonalPerturbationBatch.stack(
                [s if s is not None else DiagonalPerturbation() for s in sigma_stages],
                workspace=workspace,
                workspace_key=(workspace_key, "sigma"),
            ),
        )

    def realization(self, index: int) -> LayerPerturbation:
        """The single-realization perturbation at batch position ``index``."""
        return LayerPerturbation(
            u=None if self.u is None else self.u.realization(index),
            v=None if self.v is None else self.v.realization(index),
            sigma=None if self.sigma is None else self.sigma.realization(index),
        )


class PhotonicLinearLayer:
    """Hardware realization of one complex fully connected layer.

    Parameters
    ----------
    weight:
        Complex weight matrix of shape ``(out_features, in_features)`` — the
        software-trained weights to compile onto hardware.
    scheme:
        Mesh topology used for the unitary factors (``"clements"`` by
        default, ``"reck"`` for the ablation baseline).

    Notes
    -----
    The layer computes ``y = M @ x`` for column vectors, or equivalently
    ``Y = X @ M.T`` for batches of row vectors, where ``M`` is the
    (possibly perturbed) hardware matrix ``U @ Sigma @ V^H``.
    """

    def __init__(self, weight: np.ndarray, scheme: str = "clements"):
        weight = as_complex_array(weight, "weight")
        if weight.ndim != 2:
            raise ShapeError(f"weight must be 2-D, got shape {weight.shape}")
        self.weight = weight.copy()
        self.out_features, self.in_features = weight.shape
        self.scheme = scheme

        u, s, vh = svd_decompose(weight)
        self.mesh_u = MZIMesh.from_unitary(u, scheme=scheme)
        self.mesh_v = MZIMesh.from_unitary(vh, scheme=scheme)
        self.diagonal = DiagonalStage(s, shape=(self.out_features, self.in_features))
        # Cached factors of the last compile: the warm-start basis for
        # incremental recompiles (see retune_from_weight).
        self._svd = (u, s, vh)

    # ------------------------------------------------------------------ #
    # parameter-level (de)serialization — shared-memory hosting
    # ------------------------------------------------------------------ #
    def tuned_parameters(self) -> Dict[str, np.ndarray]:
        """Every tuned parameter array of the compiled layer, as host arrays.

        Together with the weight matrix, the scheme and the gain, these
        arrays fully determine the layer: the mesh *structure* is a pure
        function of the size, so a worker process can rebuild the layer
        from a cached skeleton plus these parameters
        (:meth:`from_tuned_parameters`) — which is what lets the
        multiprocess backend host them in shared memory instead of
        re-pickling whole compiled layers per chunk.
        """
        return {
            "u_thetas": self.mesh_u.thetas(),
            "u_phis": self.mesh_u.phis(),
            "u_output_phases": self.mesh_u.output_phases.copy(),
            "v_thetas": self.mesh_v.thetas(),
            "v_phis": self.mesh_v.phis(),
            "v_output_phases": self.mesh_v.output_phases.copy(),
            "singular_values": self.diagonal.singular_values.copy(),
        }

    @classmethod
    def from_tuned_parameters(
        cls,
        weight: np.ndarray,
        scheme: str,
        gain: float,
        parameters: Dict[str, np.ndarray],
    ) -> "PhotonicLinearLayer":
        """Rebuild a compiled layer from :meth:`tuned_parameters` output.

        The meshes are materialized from the per-process structural skeleton
        for their size and retuned to the stored phases; the attenuator bank
        is rebuilt with the stored gain.  Because retuning and the original
        compilation run the same set-point arithmetic on the same values,
        the rebuilt layer's matrices are **bit-identical** to the source
        layer's.  The warm-start SVD cache is not transported, so
        :meth:`retune_from_weight` on a rebuilt layer reports ``False``
        (callers fall back to an exact recompile) — workers only evaluate.
        """
        weight = as_complex_array(weight, "weight")
        layer = cls.__new__(cls)
        layer.weight = weight.copy()
        layer.out_features, layer.in_features = weight.shape
        layer.scheme = scheme
        layer.mesh_u = _skeleton_mesh(layer.out_features, scheme)
        layer.mesh_u.retune(
            parameters["u_thetas"], parameters["u_phis"], parameters["u_output_phases"]
        )
        layer.mesh_v = _skeleton_mesh(layer.in_features, scheme)
        layer.mesh_v.retune(
            parameters["v_thetas"], parameters["v_phis"], parameters["v_output_phases"]
        )
        layer.diagonal = DiagonalStage(
            np.asarray(parameters["singular_values"], dtype=np.float64),
            shape=(layer.out_features, layer.in_features),
            gain=float(gain),
        )
        layer._svd = None
        return layer

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def num_mzis(self) -> int:
        """Total MZIs in the layer (two unitary meshes plus the Sigma bank)."""
        return self.mesh_u.num_mzis + self.mesh_v.num_mzis + self.diagonal.num_mzis

    @property
    def num_phase_shifters(self) -> int:
        """Total tunable phase shifters inside MZIs (2 per MZI)."""
        return 2 * self.num_mzis

    @property
    def gain(self) -> float:
        """The global optical amplification ``beta`` of the Sigma stage."""
        return self.diagonal.gain

    def hardware_summary(self) -> Dict[str, int]:
        """Per-stage MZI counts (useful for reports and the paper's 1374 figure)."""
        return {
            "u_mzis": self.mesh_u.num_mzis,
            "v_mzis": self.mesh_v.num_mzis,
            "sigma_mzis": self.diagonal.num_mzis,
            "total_mzis": self.num_mzis,
            "phase_shifters": self.num_phase_shifters,
        }

    # ------------------------------------------------------------------ #
    # incremental recompilation
    # ------------------------------------------------------------------ #
    def retune_from_weight(self, weight: np.ndarray, max_error: float = 1e-7) -> bool:
        """Warm-started in-place recompile of the layer onto new weights.

        Instead of rebuilding the layer from scratch (fresh SVD, two fully
        validated mesh decompositions, new stage objects), this

        1. **rotation-updates the cached SVD**: with ``U, Vh`` from the last
           compile, the core ``C = U^H W V`` is decomposed (for a slowly
           moving ``W`` it is nearly diagonal, so the new factors
           ``U' = U P`` and ``V'^H = Q^H V^H`` stay continuously connected
           to the cached basis — no arbitrary column-phase jumps between
           steps) — an *exact* SVD of ``W``, assembled in the old basis;
        2. re-derives the Clements phases through the trusted fast path
           (:func:`~repro.mesh.clements.clements_phases`) and retunes the
           cached meshes and the attenuator bank **in place**, reusing
           every piece of structural bookkeeping; and
        3. validates the result against ``weight`` with one vectorized
           reconstruction (``max |M_nominal - W| <= max_error``).

        Returns ``True`` on success.  On ``False`` the warm start diverged
        (or the layer uses a non-Clements scheme) and the layer state is
        **unspecified** — the caller must rebuild the layer exactly, which
        is precisely the fallback :class:`repro.training.injector.NoiseInjector`
        implements.
        """
        with _active_recorder().span(
            "mesh/retune", rows=self.out_features, cols=self.in_features
        ) as span:
            if self.scheme != "clements" or self._svd is None:
                span.set("outcome", "not-warm-startable")
                return False
            weight = as_complex_array(weight, "weight")
            if weight.shape != (self.out_features, self.in_features):
                raise ShapeError(
                    f"weight must have shape {(self.out_features, self.in_features)}, got {weight.shape}"
                )
            u_prev, _, vh_prev = self._svd
            core = u_prev.conj().T @ weight @ vh_prev.conj().T
            try:
                p, s, qh = np.linalg.svd(core, full_matrices=True)
            except np.linalg.LinAlgError:  # pragma: no cover - LAPACK non-convergence
                span.set("outcome", "svd-failed")
                return False
            u = u_prev @ p
            vh = qh @ vh_prev
            try:
                self.mesh_u.retune(*clements_phases(u))
                self.mesh_v.retune(*clements_phases(vh))
                self.diagonal.retune(s)
            except (DecompositionError, ConfigurationError):
                span.set("outcome", "retune-failed")
                return False
            self.weight = weight.copy()
            self._svd = (u, s, vh)
            if self.reconstruction_error() > max_error:
                span.set("outcome", "validation-failed")
                return False
            span.set("outcome", "warm")
            return True

    # ------------------------------------------------------------------ #
    # matrix evaluation
    # ------------------------------------------------------------------ #
    def matrix(self, perturbation: Optional[LayerPerturbation] = None) -> np.ndarray:
        """The complex matrix the hardware implements under a perturbation."""
        if perturbation is None:
            perturbation = LayerPerturbation.none()
        u = self.mesh_u.matrix(perturbation.u)
        v = self.mesh_v.matrix(perturbation.v)
        amplitudes = self.diagonal.gain * self.diagonal.attenuations(perturbation.sigma)
        return self._scale_columns(u, amplitudes) @ v

    def _scale_columns(self, u: np.ndarray, amplitudes: np.ndarray, xp=np, out=None) -> np.ndarray:
        """``u @ Sigma`` evaluated as column scaling.

        ``Sigma`` is (rectangular) diagonal, so the product scales the first
        ``k`` columns of ``u`` and zeroes the rest — bit-identical to the
        dense matmul (the skipped terms are exact zeros) at a fraction of
        the cost.  ``u`` may carry a leading batch axis.  ``out`` optionally
        supplies the destination buffer (fully overwritten).
        """
        k = self.diagonal.num_mzis
        rows, cols = self.diagonal.shape
        amplitudes = xp.asarray(amplitudes)
        if out is None:
            scaled = xp.zeros(u.shape[:-2] + (rows, cols), dtype=xp.complex128)
        else:
            scaled = out
            scaled[...] = 0.0
        scaled[..., :, :k] = u[..., :, :k] * amplitudes[..., None, :]
        return scaled

    def matrix_batch(
        self,
        perturbation: Optional[LayerPerturbationBatch] = None,
        batch_size: Optional[int] = None,
        workspace=None,
        workspace_key: Optional[object] = None,
    ) -> np.ndarray:
        """Hardware matrices of ``B`` perturbation realizations, ``(B, out, in)``.

        Bit-identical to stacking ``B`` calls of :meth:`matrix` on the
        individual realizations (the stacked matmuls evaluate each batch
        slice with the same kernel as the 2-D products).  With a
        ``workspace`` (plus a key unique to this layer within the
        evaluation) every stage — the two unitary sweeps, the column
        scaling and the final stacked matmul — writes into reusable arena
        buffers end to end, eliminating the per-call intermediates; values
        are bit-identical either way and the result stays valid until the
        next workspace-backed call under the same key.
        """
        if perturbation is None:
            if batch_size is None:
                raise ValueError("batch_size is required when perturbation is None")
            batch = int(batch_size)
        else:
            batch = perturbation.batch_size
            if batch_size is not None and batch_size != batch:
                raise ShapeError(
                    f"batch_size {batch_size} does not match perturbation batch {batch}"
                )
        backend = active_array_backend()
        xp = backend.xp
        u_pert = perturbation.u if perturbation is not None else None
        v_pert = perturbation.v if perturbation is not None else None
        sigma_pert = perturbation.sigma if perturbation is not None else None
        u = self.mesh_u.matrix_batch(
            u_pert, batch_size=batch, workspace=workspace, workspace_key=(workspace_key, "u")
        )
        v = self.mesh_v.matrix_batch(
            v_pert, batch_size=batch, workspace=workspace, workspace_key=(workspace_key, "v")
        )
        if sigma_pert is None:
            amplitudes = self.diagonal.gain * self.diagonal.attenuations(None)
        else:
            amplitudes = self.diagonal.gain * self.diagonal.attenuations_batch(sigma_pert)
        if workspace is None:
            return self._scale_columns(u, amplitudes, xp=xp) @ v
        rows, cols = self.diagonal.shape
        scaled = self._scale_columns(
            u,
            amplitudes,
            xp=xp,
            out=workspace.buffer((workspace_key, "svd/scaled"), (batch, rows, cols), np.complex128),
        )
        out = workspace.buffer(
            (workspace_key, "svd/matrix"), (batch, rows, int(v.shape[-1])), np.complex128
        )
        return xp.matmul(scaled, v, out=out)

    def ideal_matrix(self) -> np.ndarray:
        """Nominal hardware matrix (equals ``weight`` to numerical precision)."""
        return self.matrix(None)

    def reconstruction_error(self) -> float:
        """Max absolute difference between the nominal hardware matrix and the weights."""
        return float(np.max(np.abs(self.ideal_matrix() - self.weight)))  # host-only path

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, perturbation: Optional[LayerPerturbation] = None) -> np.ndarray:
        """Apply the (possibly perturbed) layer to a batch of complex inputs.

        Parameters
        ----------
        inputs:
            Array of shape ``(batch, in_features)`` or ``(in_features,)``.
        perturbation:
            Optional per-device uncertainty realization.
        """
        inputs = as_complex_array(inputs, "inputs")
        matrix = self.matrix(perturbation)
        if inputs.ndim == 1:
            if inputs.shape[0] != self.in_features:
                raise ShapeError(f"expected input length {self.in_features}, got {inputs.shape[0]}")
            return matrix @ inputs
        if inputs.ndim == 2:
            if inputs.shape[1] != self.in_features:
                raise ShapeError(
                    f"expected inputs of shape (batch, {self.in_features}), got {inputs.shape}"
                )
            return inputs @ matrix.T
        raise ShapeError(f"inputs must be 1-D or 2-D, got shape {inputs.shape}")

    __call__ = forward

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"PhotonicLinearLayer(out={self.out_features}, in={self.in_features}, "
            f"scheme={self.scheme!r}, mzis={self.num_mzis})"
        )
