"""SVD-based photonic linear layer: ``M = U @ Sigma @ V^H`` in hardware.

This is the paper's construction of a fully connected layer (§II-B, Fig. 1):
the complex weight matrix is factored with an SVD, the two unitary factors
are compiled onto Clements MZI meshes, and the singular values are realized
by an MZI-attenuator bank plus a global optical gain ``beta``.  The layer
can evaluate the matrix it implements both nominally and under per-device
uncertainties, which is what turns weight matrices into *faulty* weight
matrices during the Monte Carlo experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..exceptions import ShapeError
from ..utils.linalg import svd_decompose
from ..utils.validation import as_complex_array
from .diagonal import DiagonalPerturbation, DiagonalStage
from .mesh import MeshPerturbation, MZIMesh


@dataclass
class LayerPerturbation:
    """Perturbations for all three stages of one photonic linear layer."""

    u: Optional[MeshPerturbation] = None
    v: Optional[MeshPerturbation] = None
    sigma: Optional[DiagonalPerturbation] = None

    @classmethod
    def none(cls) -> "LayerPerturbation":
        return cls()


class PhotonicLinearLayer:
    """Hardware realization of one complex fully connected layer.

    Parameters
    ----------
    weight:
        Complex weight matrix of shape ``(out_features, in_features)`` — the
        software-trained weights to compile onto hardware.
    scheme:
        Mesh topology used for the unitary factors (``"clements"`` by
        default, ``"reck"`` for the ablation baseline).

    Notes
    -----
    The layer computes ``y = M @ x`` for column vectors, or equivalently
    ``Y = X @ M.T`` for batches of row vectors, where ``M`` is the
    (possibly perturbed) hardware matrix ``U @ Sigma @ V^H``.
    """

    def __init__(self, weight: np.ndarray, scheme: str = "clements"):
        weight = as_complex_array(weight, "weight")
        if weight.ndim != 2:
            raise ShapeError(f"weight must be 2-D, got shape {weight.shape}")
        self.weight = weight.copy()
        self.out_features, self.in_features = weight.shape
        self.scheme = scheme

        u, s, vh = svd_decompose(weight)
        self.mesh_u = MZIMesh.from_unitary(u, scheme=scheme)
        self.mesh_v = MZIMesh.from_unitary(vh, scheme=scheme)
        self.diagonal = DiagonalStage(s, shape=(self.out_features, self.in_features))

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def num_mzis(self) -> int:
        """Total MZIs in the layer (two unitary meshes plus the Sigma bank)."""
        return self.mesh_u.num_mzis + self.mesh_v.num_mzis + self.diagonal.num_mzis

    @property
    def num_phase_shifters(self) -> int:
        """Total tunable phase shifters inside MZIs (2 per MZI)."""
        return 2 * self.num_mzis

    @property
    def gain(self) -> float:
        """The global optical amplification ``beta`` of the Sigma stage."""
        return self.diagonal.gain

    def hardware_summary(self) -> Dict[str, int]:
        """Per-stage MZI counts (useful for reports and the paper's 1374 figure)."""
        return {
            "u_mzis": self.mesh_u.num_mzis,
            "v_mzis": self.mesh_v.num_mzis,
            "sigma_mzis": self.diagonal.num_mzis,
            "total_mzis": self.num_mzis,
            "phase_shifters": self.num_phase_shifters,
        }

    # ------------------------------------------------------------------ #
    # matrix evaluation
    # ------------------------------------------------------------------ #
    def matrix(self, perturbation: Optional[LayerPerturbation] = None) -> np.ndarray:
        """The complex matrix the hardware implements under a perturbation."""
        if perturbation is None:
            perturbation = LayerPerturbation.none()
        u = self.mesh_u.matrix(perturbation.u)
        v = self.mesh_v.matrix(perturbation.v)
        sigma = self.diagonal.matrix(perturbation.sigma)
        return u @ sigma @ v

    def ideal_matrix(self) -> np.ndarray:
        """Nominal hardware matrix (equals ``weight`` to numerical precision)."""
        return self.matrix(None)

    def reconstruction_error(self) -> float:
        """Max absolute difference between the nominal hardware matrix and the weights."""
        return float(np.max(np.abs(self.ideal_matrix() - self.weight)))

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, perturbation: Optional[LayerPerturbation] = None) -> np.ndarray:
        """Apply the (possibly perturbed) layer to a batch of complex inputs.

        Parameters
        ----------
        inputs:
            Array of shape ``(batch, in_features)`` or ``(in_features,)``.
        perturbation:
            Optional per-device uncertainty realization.
        """
        inputs = as_complex_array(inputs, "inputs")
        matrix = self.matrix(perturbation)
        if inputs.ndim == 1:
            if inputs.shape[0] != self.in_features:
                raise ShapeError(f"expected input length {self.in_features}, got {inputs.shape[0]}")
            return matrix @ inputs
        if inputs.ndim == 2:
            if inputs.shape[1] != self.in_features:
                raise ShapeError(
                    f"expected inputs of shape (batch, {self.in_features}), got {inputs.shape}"
                )
            return inputs @ matrix.T
        raise ShapeError(f"inputs must be 1-D or 2-D, got shape {inputs.shape}")

    __call__ = forward

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"PhotonicLinearLayer(out={self.out_features}, in={self.in_features}, "
            f"scheme={self.scheme!r}, mzis={self.num_mzis})"
        )
