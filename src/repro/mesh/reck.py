"""Reck triangular decomposition of a unitary into an MZI mesh.

Implements the triangular scheme of M. Reck et al., *"Experimental
realization of any discrete unitary operator"*, PRL 73, 1994, restricted to
adjacent-mode MZIs (the standard integrated-photonics variant).  The paper
under reproduction uses the Clements design; the Reck mesh is provided as a
baseline for the mesh-topology ablation study (same number of MZIs,
``N(N-1)/2``, but a triangular floorplan with depth ``2N-3`` instead of
``N``), which changes how variations accumulate along optical paths.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..exceptions import DecompositionError
from ..photonics.mzi import mzi_transfer
from ..utils.linalg import assert_unitary
from .decomposition import (
    MeshDecomposition,
    MZIConfig,
    assign_columns,
    solve_right_nulling,
    wrap_phase,
)


def reck_decompose(unitary: np.ndarray, atol: float = 1e-8) -> MeshDecomposition:
    """Decompose ``unitary`` into a triangular Reck mesh.

    Rows are cleared from the bottom up using only right-multiplications by
    ``T^{-1}`` on adjacent modes, so the result is already in the physical
    form ``U = D @ T_k @ ... @ T_1``.
    """
    unitary = assert_unitary(unitary, atol=atol, name="unitary")
    n = unitary.shape[0]
    work = unitary.astype(np.complex128).copy()

    right_ops: List[Tuple[int, float, float]] = []
    for row in range(n - 1, 0, -1):
        for mode in range(row):
            theta, phi = solve_right_nulling(work[row, mode], work[row, mode + 1])
            t_inv = mzi_transfer(theta, phi).conj().T
            work[:, mode : mode + 2] = work[:, mode : mode + 2] @ t_inv
            right_ops.append((mode, theta, phi))

    off_diagonal = work - np.diag(np.diagonal(work))
    if np.max(np.abs(off_diagonal)) > 1e-7:
        raise DecompositionError(
            f"Reck nulling failed: residual off-diagonal magnitude "
            f"{np.max(np.abs(off_diagonal)):.3e}"
        )
    diag = np.diagonal(work).copy()

    # D = U @ T_1^{-1} ... T_k^{-1}  =>  U = D @ T_k ... T_1, so the
    # propagation order is simply the order of application.
    modes = [op[0] for op in right_ops]
    columns = assign_columns(modes, n)
    configs = [
        MZIConfig(mode=mode, theta=theta, phi=phi, column=column, index=idx)
        for idx, ((mode, theta, phi), column) in enumerate(zip(right_ops, columns))
    ]
    output_phases = np.array([wrap_phase(angle) for angle in np.angle(diag)], dtype=np.float64)

    decomposition = MeshDecomposition(n=n, configs=configs, output_phases=output_phases, scheme="reck")
    reconstruction = decomposition.reconstruct()
    if not np.allclose(reconstruction, unitary, atol=max(atol, 1e-7)):
        raise DecompositionError(
            "Reck decomposition failed the reconstruction check "
            f"(max error {np.max(np.abs(reconstruction - unitary)):.3e})"
        )
    return decomposition


def reck_mzi_count(n: int) -> int:
    """Number of MZIs in an ``n``-mode Reck mesh (``n(n-1)/2``)."""
    if n < 1:
        raise DecompositionError(f"n must be >= 1, got {n}")
    return n * (n - 1) // 2
