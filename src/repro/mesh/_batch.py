"""Shared machinery for the ``*PerturbationBatch`` dataclasses.

Both the mesh-level and the diagonal-stage batch classes hold the same kind
of payload — optional ``(B, ...)`` float arrays, one per perturbed device
parameter — and need the same operations: infer the batch size, stack
single-realization draws (zero-filling realizations where a field is
missing), and slice one realization back out.  Keeping one implementation
here prevents the batched and looped paths from drifting apart, which would
silently break the bit-identity guarantee the Monte Carlo engine is built
on.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError


def ensure_batch_field(value, expected_shape, name: str):
    """Validate one (possibly device-resident) perturbation field.

    Host values go through the historical ``np.asarray(..., float64)``
    conversion; arrays of another namespace (sampled under a device
    backend) are shape-checked in place — converting them would force an
    implicit host transfer, which the device backends forbid.
    """
    if value is None:
        return None
    if not isinstance(value, np.ndarray) and hasattr(value, "shape"):
        if tuple(value.shape) != tuple(expected_shape):
            raise ShapeError(f"{name} must have shape {tuple(expected_shape)}, got {tuple(value.shape)}")
        return value
    value = np.asarray(value, dtype=np.float64)
    if value.shape != tuple(expected_shape):
        raise ShapeError(f"{name} must have shape {tuple(expected_shape)}, got {value.shape}")
    return value


def stack_rows(
    values: Sequence[Optional[np.ndarray]], out: Optional[np.ndarray] = None
) -> Optional[np.ndarray]:
    """Stack optional 1-D rows into a ``(B, length)`` array.

    A field that is ``None`` in every realization stays ``None``; a field
    set in only some realizations is zero-filled in the others (the length
    is taken from the first present row).  ``out`` optionally supplies a
    preallocated ``(B, length)`` destination (e.g. a workspace buffer) that
    is filled row by row instead of allocating — values are bit-identical
    either way.
    """
    present = [v for v in values if v is not None]
    if not present:
        return None
    length = np.asarray(present[0]).shape[0]
    if out is None:
        out = np.empty((len(values), length), dtype=np.float64)
    elif out.shape != (len(values), length) or out.dtype != np.float64:
        raise ShapeError(
            f"out must be a float64 array of shape ({len(values)}, {length}), "
            f"got {out.dtype} {out.shape}"
        )
    for row, value in zip(out, values):
        if value is None:
            row[:] = 0.0
        else:
            row[:] = np.asarray(value, dtype=np.float64)
    return out


class PerturbationBatchFields:
    """Mixin providing the batch-axis operations over ``_FIELDS``.

    Subclasses are dataclasses whose ``_FIELDS`` names the optional
    ``(B, ...)`` array attributes and whose ``_SINGLE_CLS`` is the
    matching single-realization dataclass (sharing the same field names).
    Shape validation stays subclass-specific.
    """

    _FIELDS: Tuple[str, ...] = ()
    _SINGLE_CLS: type = None  # type: ignore[assignment]

    @property
    def batch_size(self) -> int:
        for name in self._FIELDS:
            value = getattr(self, name)
            if value is not None:
                shape = getattr(value, "shape", None)
                if shape is None:
                    shape = np.asarray(value).shape
                return int(shape[0])
        raise ShapeError(f"empty {type(self).__name__} has no batch size")

    @classmethod
    def stack(cls, perturbations: Sequence[object], workspace=None, workspace_key: Hashable = None):
        """Stack per-iteration single-realization draws into a batch.

        ``workspace`` (a
        :class:`~repro.training.workspace.VectorizedWorkspace`) optionally
        supplies the per-field row buffers, keyed by ``(workspace_key,
        field name)`` — callers stacking several batches per evaluation
        must pass distinct keys so concurrently live stacks never alias.
        """
        perturbations = list(perturbations)
        if not perturbations:
            raise ValueError("cannot stack an empty sequence of perturbations")
        fields = {}
        for name in cls._FIELDS:
            values = [getattr(p, name) for p in perturbations]
            out = None
            if workspace is not None:
                present = [v for v in values if v is not None]
                if present:
                    length = int(np.asarray(present[0]).shape[0])
                    # Stacking fills the buffer row by row on the host; the
                    # device transfer (if any) happens later at the mesh
                    # evaluation seam, so this is always a host buffer.
                    out = workspace.host_buffer(
                        (workspace_key, name), (len(values), length), np.float64
                    )
            fields[name] = stack_rows(values, out=out)
        return cls(**fields)

    def scale_in_place(self, factor: float) -> None:
        """Multiply every present field by ``factor`` in place.

        The perturbation fields of the Gaussian models are linear in their
        sigmas, so this turns a batch drawn at one sigma scale into the
        batch the *same* standard normals would have produced at another —
        the amortized-draw rescaling of the noise injector.
        """
        for name in self._FIELDS:
            value = getattr(self, name)
            if value is not None:
                value *= factor

    def realization(self, index: int):
        """The single-realization perturbation at batch position ``index``."""

        def _row(value):
            if value is None:
                return None
            if not isinstance(value, np.ndarray) and hasattr(value, "shape"):
                return value[index]  # device array: slice stays on device
            return np.asarray(value)[index]

        return self._SINGLE_CLS(
            **{name: _row(getattr(self, name)) for name in self._FIELDS}
        )
