"""Shared machinery for the ``*PerturbationBatch`` dataclasses.

Both the mesh-level and the diagonal-stage batch classes hold the same kind
of payload — optional ``(B, ...)`` float arrays, one per perturbed device
parameter — and need the same operations: infer the batch size, stack
single-realization draws (zero-filling realizations where a field is
missing), and slice one realization back out.  Keeping one implementation
here prevents the batched and looped paths from drifting apart, which would
silently break the bit-identity guarantee the Monte Carlo engine is built
on.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError


def stack_rows(values: Sequence[Optional[np.ndarray]]) -> Optional[np.ndarray]:
    """Stack optional 1-D rows into a ``(B, length)`` array.

    A field that is ``None`` in every realization stays ``None``; a field
    set in only some realizations is zero-filled in the others (the length
    is taken from the first present row).
    """
    present = [v for v in values if v is not None]
    if not present:
        return None
    length = np.asarray(present[0]).shape[0]
    return np.stack(
        [np.zeros(length) if v is None else np.asarray(v, dtype=np.float64) for v in values]
    )


class PerturbationBatchFields:
    """Mixin providing the batch-axis operations over ``_FIELDS``.

    Subclasses are dataclasses whose ``_FIELDS`` names the optional
    ``(B, ...)`` array attributes and whose ``_SINGLE_CLS`` is the
    matching single-realization dataclass (sharing the same field names).
    Shape validation stays subclass-specific.
    """

    _FIELDS: Tuple[str, ...] = ()
    _SINGLE_CLS: type = None  # type: ignore[assignment]

    @property
    def batch_size(self) -> int:
        for name in self._FIELDS:
            value = getattr(self, name)
            if value is not None:
                return int(np.asarray(value).shape[0])
        raise ShapeError(f"empty {type(self).__name__} has no batch size")

    @classmethod
    def stack(cls, perturbations: Sequence[object]):
        """Stack per-iteration single-realization draws into a batch."""
        perturbations = list(perturbations)
        if not perturbations:
            raise ValueError("cannot stack an empty sequence of perturbations")
        return cls(
            **{name: stack_rows([getattr(p, name) for p in perturbations]) for name in cls._FIELDS}
        )

    def realization(self, index: int):
        """The single-realization perturbation at batch position ``index``."""
        return self._SINGLE_CLS(
            **{
                name: None if getattr(self, name) is None else np.asarray(getattr(self, name))[index]
                for name in self._FIELDS
            }
        )
