"""Photonic realization of the diagonal (singular-value) stage.

The SVD of a weight matrix gives ``M = U @ Sigma @ V^H``.  The diagonal
``Sigma`` is realized with one MZI per singular value used as a tunable
attenuator — one input and one output of each MZI are terminated (paper
Fig. 1) — followed by a global optical amplification ``beta`` that restores
the scale lost by normalizing the singular values to at most 1 (§II-B).

For a singular value ``s`` and gain ``beta``, the attenuator MZI is tuned so
that its bar-path amplitude equals ``s / beta``::

    |T00| = sin(theta / 2) = s / beta

and the input phase shifter ``phi`` is set to cancel the residual phase of
``T00`` so the realized diagonal entry is real and non-negative, matching
the non-negative singular values produced by the SVD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..arrays import HOST_BACKEND, active_array_backend
from ..exceptions import ConfigurationError, ShapeError
from ..photonics.mzi import mzi_transfer_components
from ._batch import PerturbationBatchFields, ensure_batch_field


@dataclass
class DiagonalPerturbation:
    """Per-attenuator perturbations for a :class:`DiagonalStage`.

    Arrays are indexed by singular-value position.  ``None`` means no
    perturbation of that parameter.
    """

    delta_theta: Optional[np.ndarray] = None
    delta_phi: Optional[np.ndarray] = None
    delta_r_in: Optional[np.ndarray] = None
    delta_r_out: Optional[np.ndarray] = None

    def validate(self, count: int) -> None:
        for name in ("delta_theta", "delta_phi", "delta_r_in", "delta_r_out"):
            value = getattr(self, name)
            if value is None:
                continue
            value = np.asarray(value, dtype=np.float64)
            if value.shape != (count,):
                raise ShapeError(f"{name} must have shape ({count},), got {value.shape}")
            setattr(self, name, value)


@dataclass
class DiagonalPerturbationBatch(PerturbationBatchFields):
    """A stack of ``B`` attenuator-bank perturbations, each array ``(B, k)``.

    Stacking, batch-size inference and single-realization slicing come from
    :class:`PerturbationBatchFields`.
    """

    delta_theta: Optional[np.ndarray] = None
    delta_phi: Optional[np.ndarray] = None
    delta_r_in: Optional[np.ndarray] = None
    delta_r_out: Optional[np.ndarray] = None

    _FIELDS = ("delta_theta", "delta_phi", "delta_r_in", "delta_r_out")
    _SINGLE_CLS = DiagonalPerturbation

    def validate(self, count: int) -> None:
        batch = self.batch_size
        for name in self._FIELDS:
            setattr(self, name, ensure_batch_field(getattr(self, name), (batch, count), name))


class DiagonalStage:
    """MZI-attenuator bank plus global gain implementing ``Sigma``.

    Parameters
    ----------
    singular_values:
        Non-negative singular values (length ``k = min(rows, cols)``).
    shape:
        Shape ``(rows, cols)`` of the rectangular ``Sigma`` matrix to embed
        the attenuated values into; defaults to square ``(k, k)``.
    gain:
        Global field gain ``beta``.  Defaults to ``max(singular_values)``
        (or 1 when all values are zero) so every normalized value is
        realizable by a passive attenuator.
    """

    def __init__(
        self,
        singular_values: np.ndarray,
        shape: Optional[tuple[int, int]] = None,
        gain: Optional[float] = None,
    ):
        values = np.asarray(singular_values, dtype=np.float64)
        if values.ndim != 1:
            raise ShapeError(f"singular_values must be 1-D, got shape {values.shape}")
        self.singular_values = values.copy()  # size anchor for retune
        k = values.shape[0]
        if shape is None:
            shape = (k, k)
        rows, cols = int(shape[0]), int(shape[1])
        if min(rows, cols) != k:
            raise ShapeError(
                f"shape {shape} is incompatible with {k} singular values (min(shape) must equal k)"
            )
        self.shape = (rows, cols)
        # Nominal 50:50 splitter amplitudes, shared by every evaluation.
        self._nominal_r = np.full(k, 1.0 / np.sqrt(2.0))  # host-only path
        # Value validation, gain selection and the attenuator set points
        # live in retune() so a recompile tunes through the exact same code.
        self.retune(values, gain)

    # ------------------------------------------------------------------ #
    def retune(self, singular_values: np.ndarray, gain: Optional[float] = None) -> None:
        """Re-tune the attenuator bank to new singular values in place.

        The bank keeps its size and embedding ``shape``; only the set
        points (and the global gain) change — the cheap counterpart of
        rebuilding the stage during an incremental recompile.  Gain
        selection follows the constructor: ``None`` picks
        ``max(singular_values)`` (or 1 for an all-zero spectrum).
        """
        values = np.asarray(singular_values, dtype=np.float64)
        if values.shape != self.singular_values.shape:
            raise ShapeError(
                f"singular_values must have shape {self.singular_values.shape}, got {values.shape}"
            )
        if np.any(values < 0):
            raise ConfigurationError("singular values must be non-negative")
        self.singular_values = values.copy()
        if gain is None:
            max_value = float(values.max()) if values.size else 1.0
            gain = max_value if max_value > 0 else 1.0
        if gain <= 0:
            raise ConfigurationError(f"gain must be positive, got {gain}")
        self.gain = float(gain)
        normalized = values / self.gain
        if np.any(normalized > 1.0 + 1e-9):
            raise ConfigurationError(
                "normalized singular values exceed 1; increase the gain "
                f"(max normalized value {normalized.max():.6f})"
            )
        normalized = np.clip(normalized, 0.0, 1.0)  # host-only path
        self.thetas = 2.0 * np.arcsin(normalized)
        self.phis = np.mod(-0.5 * self.thetas - 0.5 * np.pi, 2.0 * np.pi)

    # ------------------------------------------------------------------ #
    @property
    def num_mzis(self) -> int:
        return int(self.singular_values.shape[0])

    @property
    def num_phase_shifters(self) -> int:
        return 2 * self.num_mzis

    def normalized_values(self) -> np.ndarray:
        """Singular values divided by the gain (the attenuator set points)."""
        return self.singular_values / self.gain

    # ------------------------------------------------------------------ #
    def _perturbed_parameters(self, perturbation, backend=None) -> tuple:
        """Attenuator parameters under an (already validated) perturbation.

        Shared by the single and batched amplitude paths: ``perturbation``
        may be a :class:`DiagonalPerturbation` (1-D fields) or a
        :class:`DiagonalPerturbationBatch` (2-D fields), whose arrays
        broadcast against the 1-D nominal parameters through the exact same
        elementwise arithmetic.  Under a device ``backend`` the nominal
        parameters move across once (cached) and the arithmetic runs in the
        device namespace.
        """
        backend = backend if backend is not None else HOST_BACKEND
        xp = backend.xp
        thetas = backend.asarray_cached(self.thetas)
        phis = backend.asarray_cached(self.phis)
        r_in = backend.asarray_cached(self._nominal_r)
        r_out = r_in
        if perturbation is not None:
            if perturbation.delta_theta is not None:
                thetas = thetas + xp.asarray(perturbation.delta_theta)
            if perturbation.delta_phi is not None:
                phis = phis + xp.asarray(perturbation.delta_phi)
            if perturbation.delta_r_in is not None:
                r_in = xp.clip(r_in + xp.asarray(perturbation.delta_r_in), 0.0, 1.0)
            if perturbation.delta_r_out is not None:
                r_out = xp.clip(r_out + xp.asarray(perturbation.delta_r_out), 0.0, 1.0)
        return thetas, phis, r_in, r_out

    def attenuations(self, perturbation: Optional[DiagonalPerturbation] = None) -> np.ndarray:
        """Complex bar-path amplitudes realized by the attenuator MZIs.

        With no perturbation these are the non-negative normalized singular
        values; with perturbations they acquire both magnitude and phase
        errors (the full complex ``T00`` of each faulty MZI is kept, since
        the downstream mesh is coherent).
        """
        if perturbation is not None:
            perturbation.validate(self.num_mzis)
        if self.num_mzis == 0:
            return np.zeros(0, dtype=np.complex128)
        thetas, phis, r_in, r_out = self._perturbed_parameters(perturbation)
        return mzi_transfer_components(thetas, phis, r_in, r2=r_out)[0]

    def matrix(self, perturbation: Optional[DiagonalPerturbation] = None) -> np.ndarray:
        """Rectangular ``Sigma`` matrix (including the global gain ``beta``)."""
        rows, cols = self.shape
        sigma = np.zeros((rows, cols), dtype=np.complex128)
        amplitudes = self.gain * self.attenuations(perturbation)
        k = self.num_mzis
        sigma[:k, :k] = np.diag(amplitudes)
        return sigma

    def ideal_matrix(self) -> np.ndarray:
        """Nominal ``Sigma`` (equals ``diag(singular_values)`` up to numerics)."""
        return self.matrix(None)

    def attenuations_batch(self, perturbation: DiagonalPerturbationBatch) -> np.ndarray:
        """Complex bar-path amplitudes for ``B`` realizations, shape ``(B, k)``.

        Evaluates in the active array backend's namespace (host by default).
        """
        backend = active_array_backend()
        xp = backend.xp
        perturbation.validate(self.num_mzis)
        batch = perturbation.batch_size
        if self.num_mzis == 0:
            return xp.zeros((batch, 0), dtype=xp.complex128)
        thetas, phis, r_in, r_out = self._perturbed_parameters(perturbation, backend)
        amplitudes = mzi_transfer_components(thetas, phis, r_in, r2=r_out)[0]
        if amplitudes.ndim == 1:  # every parameter family unperturbed
            amplitudes = xp.broadcast_to(amplitudes, (batch, self.num_mzis))
        return amplitudes

    def matrix_batch(
        self,
        perturbation: Optional[DiagonalPerturbationBatch] = None,
        batch_size: Optional[int] = None,
    ) -> np.ndarray:
        """Rectangular ``Sigma`` matrices for ``B`` realizations, ``(B, rows, cols)``.

        Bit-identical to stacking ``B`` calls of :meth:`matrix` on the
        individual realizations.
        """
        backend = active_array_backend()
        xp = backend.xp
        if perturbation is None:
            if batch_size is None:
                raise ValueError("batch_size is required when perturbation is None")
            if batch_size < 1:
                raise ValueError(f"batch_size must be >= 1, got {batch_size}")
            nominal = self.matrix(None)
            if backend.is_host:
                return np.broadcast_to(nominal, (batch_size,) + nominal.shape).copy()
            sigma = xp.empty((batch_size,) + nominal.shape, dtype=xp.complex128)
            sigma[...] = xp.asarray(nominal)
            return sigma
        batch = perturbation.batch_size
        if batch_size is not None and batch_size != batch:
            raise ShapeError(f"batch_size {batch_size} does not match perturbation batch {batch}")
        rows, cols = self.shape
        sigma = xp.zeros((batch, rows, cols), dtype=xp.complex128)
        amplitudes = self.gain * self.attenuations_batch(perturbation)
        k = self.num_mzis
        indices = xp.arange(k)
        sigma[:, indices, indices] = amplitudes
        return sigma

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"DiagonalStage(k={self.num_mzis}, shape={self.shape}, gain={self.gain:.4f})"
