"""Photonic realization of the diagonal (singular-value) stage.

The SVD of a weight matrix gives ``M = U @ Sigma @ V^H``.  The diagonal
``Sigma`` is realized with one MZI per singular value used as a tunable
attenuator — one input and one output of each MZI are terminated (paper
Fig. 1) — followed by a global optical amplification ``beta`` that restores
the scale lost by normalizing the singular values to at most 1 (§II-B).

For a singular value ``s`` and gain ``beta``, the attenuator MZI is tuned so
that its bar-path amplitude equals ``s / beta``::

    |T00| = sin(theta / 2) = s / beta

and the input phase shifter ``phi`` is set to cancel the residual phase of
``T00`` so the realized diagonal entry is real and non-negative, matching
the non-negative singular values produced by the SVD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..photonics.mzi import mzi_transfer_nonideal
from .decomposition import wrap_phase


@dataclass
class DiagonalPerturbation:
    """Per-attenuator perturbations for a :class:`DiagonalStage`.

    Arrays are indexed by singular-value position.  ``None`` means no
    perturbation of that parameter.
    """

    delta_theta: Optional[np.ndarray] = None
    delta_phi: Optional[np.ndarray] = None
    delta_r_in: Optional[np.ndarray] = None
    delta_r_out: Optional[np.ndarray] = None

    def validate(self, count: int) -> None:
        for name in ("delta_theta", "delta_phi", "delta_r_in", "delta_r_out"):
            value = getattr(self, name)
            if value is None:
                continue
            value = np.asarray(value, dtype=np.float64)
            if value.shape != (count,):
                raise ShapeError(f"{name} must have shape ({count},), got {value.shape}")
            setattr(self, name, value)


class DiagonalStage:
    """MZI-attenuator bank plus global gain implementing ``Sigma``.

    Parameters
    ----------
    singular_values:
        Non-negative singular values (length ``k = min(rows, cols)``).
    shape:
        Shape ``(rows, cols)`` of the rectangular ``Sigma`` matrix to embed
        the attenuated values into; defaults to square ``(k, k)``.
    gain:
        Global field gain ``beta``.  Defaults to ``max(singular_values)``
        (or 1 when all values are zero) so every normalized value is
        realizable by a passive attenuator.
    """

    def __init__(
        self,
        singular_values: np.ndarray,
        shape: Optional[tuple[int, int]] = None,
        gain: Optional[float] = None,
    ):
        values = np.asarray(singular_values, dtype=np.float64)
        if values.ndim != 1:
            raise ShapeError(f"singular_values must be 1-D, got shape {values.shape}")
        if np.any(values < 0):
            raise ConfigurationError("singular values must be non-negative")
        self.singular_values = values.copy()
        k = values.shape[0]
        if shape is None:
            shape = (k, k)
        rows, cols = int(shape[0]), int(shape[1])
        if min(rows, cols) != k:
            raise ShapeError(
                f"shape {shape} is incompatible with {k} singular values (min(shape) must equal k)"
            )
        self.shape = (rows, cols)

        if gain is None:
            max_value = float(values.max()) if k else 1.0
            gain = max_value if max_value > 0 else 1.0
        if gain <= 0:
            raise ConfigurationError(f"gain must be positive, got {gain}")
        self.gain = float(gain)

        normalized = values / self.gain
        if np.any(normalized > 1.0 + 1e-9):
            raise ConfigurationError(
                "normalized singular values exceed 1; increase the gain "
                f"(max normalized value {normalized.max():.6f})"
            )
        normalized = np.clip(normalized, 0.0, 1.0)
        # Attenuator tuning: sin(theta/2) = s / beta, phi cancels the phase
        # i * exp(i * theta / 2) of the bar-path amplitude.
        self.thetas = 2.0 * np.arcsin(normalized)
        self.phis = np.array([wrap_phase(-0.5 * theta - 0.5 * np.pi) for theta in self.thetas])

    # ------------------------------------------------------------------ #
    @property
    def num_mzis(self) -> int:
        return int(self.singular_values.shape[0])

    @property
    def num_phase_shifters(self) -> int:
        return 2 * self.num_mzis

    def normalized_values(self) -> np.ndarray:
        """Singular values divided by the gain (the attenuator set points)."""
        return self.singular_values / self.gain

    # ------------------------------------------------------------------ #
    def attenuations(self, perturbation: Optional[DiagonalPerturbation] = None) -> np.ndarray:
        """Complex bar-path amplitudes realized by the attenuator MZIs.

        With no perturbation these are the non-negative normalized singular
        values; with perturbations they acquire both magnitude and phase
        errors (the full complex ``T00`` of each faulty MZI is kept, since
        the downstream mesh is coherent).
        """
        thetas = self.thetas
        phis = self.phis
        r_in = np.full(self.num_mzis, 1.0 / np.sqrt(2.0))
        r_out = np.full(self.num_mzis, 1.0 / np.sqrt(2.0))
        if perturbation is not None:
            perturbation.validate(self.num_mzis)
            if perturbation.delta_theta is not None:
                thetas = thetas + perturbation.delta_theta
            if perturbation.delta_phi is not None:
                phis = phis + perturbation.delta_phi
            if perturbation.delta_r_in is not None:
                r_in = np.clip(r_in + perturbation.delta_r_in, 0.0, 1.0)
            if perturbation.delta_r_out is not None:
                r_out = np.clip(r_out + perturbation.delta_r_out, 0.0, 1.0)
        if self.num_mzis == 0:
            return np.zeros(0, dtype=np.complex128)
        blocks = mzi_transfer_nonideal(thetas, phis, r_in, r2=r_out)
        return blocks[..., 0, 0]

    def matrix(self, perturbation: Optional[DiagonalPerturbation] = None) -> np.ndarray:
        """Rectangular ``Sigma`` matrix (including the global gain ``beta``)."""
        rows, cols = self.shape
        sigma = np.zeros((rows, cols), dtype=np.complex128)
        amplitudes = self.gain * self.attenuations(perturbation)
        k = self.num_mzis
        sigma[:k, :k] = np.diag(amplitudes)
        return sigma

    def ideal_matrix(self) -> np.ndarray:
        """Nominal ``Sigma`` (equals ``diag(singular_values)`` up to numerics)."""
        return self.matrix(None)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"DiagonalStage(k={self.num_mzis}, shape={self.shape}, gain={self.gain:.4f})"
