"""Shared data structures and primitives for unitary mesh decompositions.

Both the Clements (rectangular) and Reck (triangular) decompositions express
an ``N x N`` unitary as a product of 2x2 MZI transfer matrices acting on
adjacent modes, followed by a column of output phase shifters::

    U = diag(exp(i * output_phases)) @ B_q @ ... @ B_2 @ B_1

where ``B_k`` is the paper's Eq.-(1) MZI matrix embedded on modes
``(m_k, m_k + 1)`` and the indexing follows propagation order (``B_1`` is
the first MZI the light encounters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import DecompositionError
from ..photonics.mzi import mzi_transfer
from ..utils.linalg import apply_two_mode_left
from ..utils.validation import as_complex_array

#: Numerical tolerance below which a matrix element is treated as zero when
#: solving the nulling conditions.
NULLING_TOLERANCE = 1e-12


def wrap_phase(angle: float) -> float:
    """Wrap an angle into the canonical tuning range ``[0, 2*pi)``."""
    return float(np.mod(angle, 2.0 * np.pi))


@dataclass(frozen=True)
class MZIConfig:
    """Placement and tuning of one MZI inside a mesh.

    Attributes
    ----------
    mode:
        Upper mode index; the device couples modes ``mode`` and ``mode + 1``.
    theta, phi:
        Tuned phase angles [rad] in ``[0, 2*pi)``.
    column:
        Physical column in the mesh layout (0 = first column the light
        meets).  Columns are assigned greedily in propagation order, which
        reproduces the rectangular Clements / triangular Reck floorplans and
        is what the zonal (EXP 2) analysis indexes into.
    index:
        Position in propagation order (0 = first MZI encountered).
    """

    mode: int
    theta: float
    phi: float
    column: int
    index: int

    def transfer_matrix(self) -> np.ndarray:
        """Ideal 2x2 transfer matrix of this MZI (paper Eq. 1)."""
        return mzi_transfer(self.theta, self.phi)


@dataclass
class MeshDecomposition:
    """Result of decomposing a unitary into MZIs plus output phases."""

    n: int
    configs: List[MZIConfig]
    output_phases: np.ndarray
    scheme: str = "clements"

    def __post_init__(self) -> None:
        self.output_phases = np.asarray(self.output_phases, dtype=np.float64)
        if self.output_phases.shape != (self.n,):
            raise DecompositionError(
                f"output_phases must have shape ({self.n},), got {self.output_phases.shape}"
            )

    @property
    def num_mzis(self) -> int:
        return len(self.configs)

    @property
    def num_columns(self) -> int:
        return 1 + max((c.column for c in self.configs), default=-1)

    def thetas(self) -> np.ndarray:
        return np.array([c.theta for c in self.configs], dtype=np.float64)

    def phis(self) -> np.ndarray:
        return np.array([c.phi for c in self.configs], dtype=np.float64)

    def reconstruct(self) -> np.ndarray:
        """Rebuild the unitary from the stored MZI settings and output phases."""
        matrix = np.eye(self.n, dtype=np.complex128)
        for config in self.configs:
            matrix = apply_two_mode_left(matrix, config.mode, config.transfer_matrix())
        return np.diag(np.exp(1j * self.output_phases)) @ matrix


def assign_columns(modes: Sequence[int], n: int) -> List[int]:
    """Greedy physical column assignment for MZIs listed in propagation order.

    Each MZI occupies the earliest column in which both of its modes are
    free; this reproduces the compact rectangular (Clements) or triangular
    (Reck) floorplan used for the zone analysis.
    """
    next_free = [0] * n
    columns: List[int] = []
    for mode in modes:
        if not 0 <= mode < n - 1:
            raise DecompositionError(f"mode index {mode} out of range for n={n}")
        column = max(next_free[mode], next_free[mode + 1])
        columns.append(column)
        next_free[mode] = column + 1
        next_free[mode + 1] = column + 1
    return columns


# --------------------------------------------------------------------------- #
# 2x2 nulling / refactoring primitives
# --------------------------------------------------------------------------- #


def solve_right_nulling(u_left: complex, u_right: complex) -> Tuple[float, float]:
    """Angles ``(theta, phi)`` such that right-multiplying by ``T^{-1}`` on the
    two columns holding ``(u_left, u_right)`` zeroes the left element.

    Solves ``u_left * e^{-i phi} sin(theta/2) + u_right * cos(theta/2) = 0``.
    """
    if abs(u_left) < NULLING_TOLERANCE:
        # Any rotation with sin(theta/2)=... ; theta = pi sends the right
        # element into the left column only if it is also zero, so use the
        # bar state when the left element is already (numerically) zero.
        if abs(u_right) < NULLING_TOLERANCE:
            return 0.0, 0.0
        return np.pi, 0.0
    ratio = -u_right / u_left
    theta = 2.0 * np.arctan(abs(ratio))
    phi = -np.angle(ratio)
    return wrap_phase(theta), wrap_phase(phi)


def solve_left_nulling(u_upper: complex, u_lower: complex) -> Tuple[float, float]:
    """Angles ``(theta, phi)`` such that left-multiplying by ``T`` on the two
    rows holding ``(u_upper, u_lower)`` zeroes the lower element.

    Solves ``e^{i phi} cos(theta/2) u_upper - sin(theta/2) u_lower = 0``.
    """
    if abs(u_lower) < NULLING_TOLERANCE:
        if abs(u_upper) < NULLING_TOLERANCE:
            return 0.0, 0.0
        return np.pi, 0.0
    ratio = u_upper / u_lower
    theta = 2.0 * np.arctan(abs(ratio))
    phi = -np.angle(ratio)
    return wrap_phase(theta), wrap_phase(phi)


def factor_diag_times_mzi(block: np.ndarray) -> Tuple[complex, complex, float, float]:
    """Factor a 2x2 unitary ``W`` as ``diag(a, b) @ T(theta, phi)``.

    Used to commute left-side ``T^{-1}`` operations through the diagonal when
    assembling the Clements decomposition.  Returns ``(a, b, theta, phi)``.

    Raises
    ------
    DecompositionError
        If the factorization does not reproduce ``W`` to numerical precision
        (which would indicate a non-unitary input).
    """
    block = as_complex_array(block, "block")
    if block.shape != (2, 2):
        raise DecompositionError(f"block must be 2x2, got {block.shape}")
    sin_half = min(abs(block[0, 0]), 1.0)
    cos_half = min(abs(block[0, 1]), 1.0)
    theta = 2.0 * np.arctan2(sin_half, cos_half)
    half = np.exp(1j * theta / 2.0)
    sin_half = np.sin(theta / 2.0)
    cos_half = np.cos(theta / 2.0)

    if sin_half > NULLING_TOLERANCE and cos_half > NULLING_TOLERANCE:
        phi = np.angle(block[0, 0]) - np.angle(block[0, 1])
        a = block[0, 1] / (1j * half * cos_half)
        b = -block[1, 1] / (1j * half * sin_half)
    elif sin_half <= NULLING_TOLERANCE:
        # theta ~ 0: W is anti-diagonal-free; the first column vanishes.
        phi = 0.0
        a = block[0, 1] / (1j * half)
        b = block[1, 0] / (1j * half)
    else:
        # theta ~ pi: W is diagonal.
        phi = 0.0
        a = block[0, 0] / (1j * half)
        b = -block[1, 1] / (1j * half)

    theta = wrap_phase(theta)
    phi = wrap_phase(phi)
    reconstructed = np.diag([a, b]) @ mzi_transfer(theta, phi)
    unit_modulus = np.isclose(abs(a), 1.0, atol=1e-7) and np.isclose(abs(b), 1.0, atol=1e-7)
    if not unit_modulus or not np.allclose(reconstructed, block, atol=1e-8):
        raise DecompositionError(
            "failed to factor 2x2 block as diag @ T_MZI; input is likely not unitary "
            f"(max error {np.max(np.abs(reconstructed - block)):.3e}, |a|={abs(a):.6f}, |b|={abs(b):.6f})"
        )
    return complex(a), complex(b), theta, phi
