"""Execution layer: pluggable backends that schedule Monte Carlo work.

See :mod:`repro.execution.backends` for the protocol and the determinism /
picklability contracts shared by every backend, and
:mod:`repro.execution.shared` for shared-memory hosting of the (otherwise
per-chunk re-pickled) evaluation arrays.
"""

from .backends import (
    BACKEND_NAMES,
    DEVICE_NAMES,
    Backend,
    BackendLike,
    GpuBackend,
    MultiprocessBackend,
    SerialBackend,
    available_workers,
    default_gpu_array_backend,
    pool_scope,
    resolve_backend,
)
from .shared import (
    SharedArray,
    SharedNetwork,
    resolve_array,
    resolve_network,
    shared_eval_arrays,
    shared_memory_available,
    shared_network,
)

__all__ = [
    "Backend",
    "BackendLike",
    "BACKEND_NAMES",
    "DEVICE_NAMES",
    "SerialBackend",
    "MultiprocessBackend",
    "GpuBackend",
    "available_workers",
    "default_gpu_array_backend",
    "pool_scope",
    "resolve_backend",
    "SharedArray",
    "SharedNetwork",
    "resolve_array",
    "resolve_network",
    "shared_eval_arrays",
    "shared_memory_available",
    "shared_network",
]
