"""Execution layer: pluggable backends that schedule Monte Carlo work.

See :mod:`repro.execution.backends` for the protocol and the determinism /
picklability contracts shared by every backend.
"""

from .backends import (
    BACKEND_NAMES,
    Backend,
    BackendLike,
    MultiprocessBackend,
    SerialBackend,
    available_workers,
    pool_scope,
    resolve_backend,
)

__all__ = [
    "Backend",
    "BackendLike",
    "BACKEND_NAMES",
    "SerialBackend",
    "MultiprocessBackend",
    "available_workers",
    "pool_scope",
    "resolve_backend",
]
