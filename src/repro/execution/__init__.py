"""Execution layer: pluggable backends that schedule Monte Carlo work.

See :mod:`repro.execution.backends` for the protocol and the determinism /
picklability contracts shared by every backend, and
:mod:`repro.execution.shared` for shared-memory hosting of the (otherwise
per-chunk re-pickled) evaluation arrays.
"""

from .backends import (
    BACKEND_NAMES,
    Backend,
    BackendLike,
    MultiprocessBackend,
    SerialBackend,
    available_workers,
    pool_scope,
    resolve_backend,
)
from .shared import (
    SharedArray,
    resolve_array,
    shared_eval_arrays,
    shared_memory_available,
)

__all__ = [
    "Backend",
    "BackendLike",
    "BACKEND_NAMES",
    "SerialBackend",
    "MultiprocessBackend",
    "available_workers",
    "pool_scope",
    "resolve_backend",
    "SharedArray",
    "resolve_array",
    "shared_eval_arrays",
    "shared_memory_available",
]
