"""Execution layer: pluggable backends that schedule Monte Carlo work.

See :mod:`repro.execution.backends` for the protocol and the determinism /
picklability contracts shared by every backend,
:mod:`repro.execution.shared` for shared-memory hosting of the (otherwise
per-chunk re-pickled) evaluation arrays, and
:mod:`repro.execution.fleet` for the distributed sweep fleet (network
backend, persistent workers, spec-hash artifact cache).
"""

from .backends import (
    BACKEND_NAMES,
    DEVICE_NAMES,
    Backend,
    BackendLike,
    GpuBackend,
    MultiprocessBackend,
    SerialBackend,
    available_workers,
    default_gpu_array_backend,
    gather_with_heartbeat,
    pool_scope,
    resolve_backend,
)
from .fleet import (
    FleetBackend,
    FleetRequestError,
    FleetServer,
    artifact_store,
    local_fleet,
    run_worker,
)
from .shared import (
    SharedArray,
    SharedNetwork,
    is_hosted_array,
    is_hosted_network,
    resolve_array,
    resolve_network,
    shared_eval_arrays,
    shared_memory_available,
    shared_network,
)

__all__ = [
    "Backend",
    "BackendLike",
    "BACKEND_NAMES",
    "DEVICE_NAMES",
    "SerialBackend",
    "MultiprocessBackend",
    "GpuBackend",
    "FleetBackend",
    "FleetRequestError",
    "FleetServer",
    "artifact_store",
    "available_workers",
    "default_gpu_array_backend",
    "gather_with_heartbeat",
    "local_fleet",
    "pool_scope",
    "resolve_backend",
    "run_worker",
    "SharedArray",
    "SharedNetwork",
    "is_hosted_array",
    "is_hosted_network",
    "resolve_array",
    "resolve_network",
    "shared_eval_arrays",
    "shared_memory_available",
    "shared_network",
]
