"""Shared-memory hosting of read-only arrays for process backends.

The multiprocess backend pickles every task payload into its workers.  For
Monte Carlo trials the payload includes the evaluation set — a few hundred
kilobytes at smoke scale, megabytes at the paper's full 10k MNIST test set
— re-serialized for *every chunk* of every run of a sweep.  This module
removes that tax: :class:`SharedArray` places an array in POSIX shared
memory (:mod:`multiprocessing.shared_memory`) once, and its pickled form is
just the segment name plus the array metadata.  Workers attach lazily on
first access and cache the mapping per process, so a sweep's worth of
chunks ships the eval set exactly once per worker instead of once per task.

:func:`shared_eval_arrays` is the ergonomic entry point: wrapped around a
sweep (inside its ``pool_scope``), it hosts the eval arrays in shared
memory when the backend actually shards across processes and hands back the
original arrays untouched otherwise.  Consumers resolve either form with
:func:`resolve_array`, which is what the Monte Carlo trial dataclasses do —
so the same trial code runs on plain arrays and shared handles, with
bit-identical results (the shared segment holds a byte-exact copy).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from ..observability.recorder import active as _active_recorder

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Worker-side cache of attached segments: name -> (SharedMemory, ndarray).
#: Module-level so one worker process attaches each segment exactly once no
#: matter how many chunks reference it.
_ATTACHED: dict = {}

#: Attached-segment cache bound.  A long-lived worker pool serving many
#: hostings (one sweep after another) would otherwise keep every unlinked
#: segment mapped forever; evicting the oldest mappings caps that while
#: still deduplicating attachments within any one sweep.  Sized to hold a
#: full hosting comfortably: the eval arrays plus a shared-memory network
#: (8 parameter arrays per photonic layer).
_MAX_ATTACHED = 64


def _evict_stale_attachments() -> None:
    """Drop the oldest cached mappings beyond the cache bound.

    A mapping may only be *closed* when nothing outside the cache holds its
    view — closing the segment of a live view silently unmaps the memory it
    reads.  The refcount probe below detects outstanding views (the cache
    tuple plus the probe itself account for 2 references); still-referenced
    evictees are merely forgotten, and the ordinary reference chain
    (ndarray -> exported memoryview -> mmap) keeps their memory valid until
    the last view dies.
    """
    while len(_ATTACHED) > _MAX_ATTACHED:
        name = next(iter(_ATTACHED))
        shm, view = _ATTACHED.pop(name)
        if sys.getrefcount(view) <= 2:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - belt and braces
                pass


def shared_memory_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` is usable here."""
    return _shared_memory is not None


def _unregister_from_resource_tracker(name: str) -> None:
    """Detach a worker-side segment from the resource tracker.

    Attaching to an existing segment registers it with the process's
    resource tracker on some Python versions, which then tries to unlink it
    again at worker exit — after the owner already has — and logs spurious
    leak warnings.  The owner of the segment is the parent process; workers
    must only close their mapping.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class SharedArray:
    """Picklable handle to a NumPy array hosted in shared memory.

    Created by the owning (parent) process via :meth:`create`; its pickled
    form carries only ``(name, shape, dtype)``.  Any process resolves the
    handle back to an ndarray through :attr:`array` — the owner sees its
    own mapping, workers attach to the named segment on first access (and
    cache the attachment per process).  The array view is marked read-only:
    the segment is shared, and the Monte Carlo contract is that eval data
    is immutable.
    """

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: np.dtype):
        self.name = name
        self.shape = tuple(int(extent) for extent in shape)
        self.dtype = np.dtype(dtype)
        self._shm = None
        self._array: Optional[np.ndarray] = None
        self._owner = False

    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh shared-memory segment and wrap it."""
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise RuntimeError("multiprocessing.shared_memory is unavailable on this platform")
        array = np.ascontiguousarray(array)
        if array.nbytes == 0:
            raise ValueError("cannot host an empty array in shared memory")
        shm = _shared_memory.SharedMemory(create=True, size=array.nbytes)
        handle = cls(shm.name, array.shape, array.dtype)
        handle._shm = shm
        handle._owner = True
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        view.flags.writeable = False
        handle._array = view
        return handle

    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize

    @property
    def array(self) -> np.ndarray:
        """The hosted array (attaching to the segment if needed)."""
        if self._array is None:
            cached = _ATTACHED.get(self.name)
            if cached is None:
                shm = _shared_memory.SharedMemory(name=self.name)
                _unregister_from_resource_tracker(self.name)
                view = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)
                view.flags.writeable = False
                _ATTACHED[self.name] = (shm, view)
                cached = _ATTACHED[self.name]
                _evict_stale_attachments()
            self._array = cached[1]
        return self._array

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's mapping (owner side; workers use the cache)."""
        self._array = None
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner only; safe to call once)."""
        if self._owner and _shared_memory is not None:
            try:
                shm = self._shm if self._shm is not None else _shared_memory.SharedMemory(name=self.name)
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None
            self._array = None

    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        return {"name": self.name, "shape": self.shape, "dtype": self.dtype.str}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.shape = tuple(state["shape"])
        self.dtype = np.dtype(state["dtype"])
        self._shm = None
        self._array = None
        self._owner = False

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"SharedArray(name={self.name!r}, shape={self.shape}, dtype={self.dtype})"


#: What array-consuming trial code accepts: a plain ndarray or a handle.
ArrayLike = Union[np.ndarray, SharedArray]


def resolve_array(value: ArrayLike) -> np.ndarray:
    """The ndarray behind ``value`` (attaching/fetching handles as needed).

    Accepts plain arrays, :class:`SharedArray` handles, and any other
    hosted-array reference advertising ``provides_array`` with an
    ``.array`` property (the fleet's content-addressed
    :class:`~repro.execution.fleet.cache.ArrayRef` does) — the seam every
    trial dataclass resolves its eval data through, whatever backend
    hosted it.
    """
    if isinstance(value, SharedArray) or getattr(value, "provides_array", False):
        return value.array
    return np.asarray(value)


def is_hosted_array(value) -> bool:
    """Whether ``value`` is already a hosted-array handle (any flavor).

    True for shared-memory handles and for duck-typed references carrying
    ``provides_array`` (fleet ``ArrayRef``).  Sweep layers use this to skip
    re-hosting data a caller already hosted for an outer scope.
    """
    return isinstance(value, SharedArray) or bool(getattr(value, "provides_array", False))


# --------------------------------------------------------------------------- #
# shared-memory hosting of compiled networks (mesh parameter arrays)
# --------------------------------------------------------------------------- #

#: Worker-side cache of reconstructed networks, keyed by the tuple of shared
#: segment names (unique per hosting).  Bounded like the attachment cache so
#: a long-lived pool serving many sweeps does not accumulate networks.
_NETWORK_CACHE: dict = {}
_MAX_NETWORKS = 4


def _wrap_array(array: np.ndarray):
    """Host ``array`` in shared memory (tiny/empty arrays travel inline)."""
    array = np.ascontiguousarray(array)
    if array.nbytes == 0:
        return array
    return SharedArray.create(array)


class SharedNetwork:
    """Picklable handle to a compiled SPNN whose parameters live in shared memory.

    The multiprocess backend pickles every task payload into its workers;
    for the network trials that payload is dominated by the compiled
    ``SPNN`` — the weight matrices plus, for every photonic layer, two
    tuned meshes with their full structural bookkeeping — re-serialized for
    *every chunk*.  This handle ships only the tuned **parameter arrays**
    (phases, output screens, singular values, weights) through POSIX shared
    memory plus a few scalars; its pickled form is a list of segment names.
    Workers rebuild the network once per process from a cached structural
    skeleton (the mesh layout is a pure function of size and scheme — see
    :meth:`~repro.mesh.svd_layer.PhotonicLinearLayer.from_tuned_parameters`)
    and retune it to the shared parameters, which reproduces the source
    network's matrices **bit for bit**.

    Created by the owning process via :meth:`create`; resolve with
    :func:`resolve_network` (owner and workers alike).
    """

    def __init__(self, architecture, layer_states: list):
        self.architecture = architecture
        self.layer_states = layer_states
        self._spnn = None

    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, spnn) -> "SharedNetwork":
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise RuntimeError("multiprocessing.shared_memory is unavailable on this platform")
        if not spnn.is_compiled:
            raise ValueError("only a compiled SPNN can be hosted in shared memory")
        layer_states = []
        for layer in spnn.photonic_layers:
            parameters = {
                name: _wrap_array(value) for name, value in layer.tuned_parameters().items()
            }
            layer_states.append(
                {
                    "weight": _wrap_array(layer.weight),
                    "scheme": layer.scheme,
                    "gain": float(layer.gain),
                    "parameters": parameters,
                }
            )
        handle = cls(spnn.architecture, layer_states)
        handle._spnn = spnn  # the owner resolves to the original instance
        return handle

    # ------------------------------------------------------------------ #
    def _segment_names(self) -> tuple:
        names = []
        for state in self.layer_states:
            for value in [state["weight"], *state["parameters"].values()]:
                if isinstance(value, SharedArray):
                    names.append(value.name)
        return tuple(names)

    @property
    def spnn(self):
        """The reconstructed network (cached per process)."""
        if self._spnn is not None:
            return self._spnn
        key = self._segment_names()
        cached = _NETWORK_CACHE.get(key)
        if cached is None:
            cached = self._rebuild()
            while len(_NETWORK_CACHE) >= _MAX_NETWORKS:
                _NETWORK_CACHE.pop(next(iter(_NETWORK_CACHE)))
            _NETWORK_CACHE[key] = cached
        self._spnn = cached
        return cached

    def _rebuild(self):
        from ..mesh.svd_layer import PhotonicLinearLayer
        from ..onn.spnn import SPNN

        layers = []
        weights = []
        for state in self.layer_states:
            weight = resolve_array(state["weight"])
            weights.append(weight)
            parameters = {
                name: resolve_array(value) for name, value in state["parameters"].items()
            }
            layers.append(
                PhotonicLinearLayer.from_tuned_parameters(
                    weight, state["scheme"], state["gain"], parameters
                )
            )
        spnn = SPNN(weights, architecture=self.architecture, compile_hardware=False)
        spnn.photonic_layers = layers
        return spnn

    # ------------------------------------------------------------------ #
    def payload_arrays(self):
        """Every hosted array handle (for lifetime management)."""
        for state in self.layer_states:
            for value in [state["weight"], *state["parameters"].values()]:
                if isinstance(value, SharedArray):
                    yield value

    def close(self) -> None:
        for handle in self.payload_arrays():
            handle.close()

    def unlink(self) -> None:
        for handle in self.payload_arrays():
            handle.unlink()

    def __getstate__(self) -> dict:
        return {"architecture": self.architecture, "layer_states": self.layer_states}

    def __setstate__(self, state: dict) -> None:
        self.architecture = state["architecture"]
        self.layer_states = state["layer_states"]
        self._spnn = None

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"SharedNetwork(layers={len(self.layer_states)})"


#: What network-consuming trial code accepts: a plain SPNN or a handle.
def resolve_network(value):
    """The :class:`~repro.onn.spnn.SPNN` behind ``value`` (rebuilding as needed).

    Accepts plain networks, :class:`SharedNetwork` handles, and duck-typed
    hosted-network references advertising ``provides_network`` with a
    ``.spnn`` property (the fleet's
    :class:`~repro.execution.fleet.cache.NetworkRef`).
    """
    if isinstance(value, SharedNetwork) or getattr(value, "provides_network", False):
        return value.spnn
    return value


def is_hosted_network(value) -> bool:
    """Whether ``value`` is already a hosted-network handle (any flavor)."""
    return isinstance(value, SharedNetwork) or bool(
        getattr(value, "provides_network", False)
    )


@contextmanager
def shared_network(backend, spnn) -> Iterator[object]:
    """Host a compiled network's parameters in shared memory for a sweep.

    Yields a :class:`SharedNetwork` handle when ``backend`` shards tasks
    across processes (and the platform supports shared memory), the
    original network unchanged otherwise.  Wrap this around a sweep inside
    its ``pool_scope`` — like :func:`shared_eval_arrays` — so the per-chunk
    task payload shrinks to the perturbation draws instead of a re-pickled
    compiled SPNN.  Results are bit-identical either way (the rebuilt
    workers' networks reproduce the hosted matrices exactly).

    **Host-or-reference seam.**  A backend that hosts networks its own way
    exposes ``host_network`` (the fleet backend yields a content-addressed
    :class:`~repro.execution.fleet.cache.NetworkRef`); this function
    delegates to it, so sweeps stay backend-agnostic.
    """
    host = getattr(backend, "host_network", None)
    if host is not None:
        with host(spnn) as hosted:
            yield hosted
        return
    if not shared_memory_available() or not _backend_shards(backend):
        yield spnn
        return
    with _active_recorder().span("shared/host_network") as span:
        handle = SharedNetwork.create(spnn)
        span.set("layers", len(handle.layer_states))
        span.set("segments", len(tuple(handle.payload_arrays())))
        span.set("bytes", sum(array.nbytes for array in handle.payload_arrays()))
    try:
        yield handle
    finally:
        handle.close()
        handle.unlink()


def _backend_shards(backend) -> bool:
    """Whether ``backend`` actually crosses a process boundary."""
    try:
        parallelism = int(backend.parallelism)
    except (AttributeError, TypeError):
        return False
    # The serial backend (and a 1-worker multiprocess backend) evaluates
    # inline; hosting shared memory for it would be pure overhead.
    from .backends import MultiprocessBackend

    return parallelism > 1 and isinstance(backend, MultiprocessBackend)


@contextmanager
def shared_eval_arrays(backend, *arrays: np.ndarray) -> Iterator[Tuple[ArrayLike, ...]]:
    """Host ``arrays`` in shared memory for the duration of a sweep.

    Yields one value per input: :class:`SharedArray` handles when
    ``backend`` shards tasks across processes (and the platform supports
    shared memory), the original arrays unchanged otherwise.  Wrap this
    around a sweep *inside* its ``pool_scope`` so the hosting happens once
    per pool, not once per Monte Carlo run; segments are closed and
    unlinked on exit (Linux keeps them alive for workers that are still
    attached).  Results are bit-identical either way — the segments hold
    byte-exact copies.

    **Host-or-reference seam.**  A backend that hosts arrays its own way
    exposes ``host_eval_arrays`` (the fleet backend yields
    content-addressed :class:`~repro.execution.fleet.cache.ArrayRef`
    handles whose blobs travel to each worker at most once); this function
    delegates to it, so sweeps stay backend-agnostic.
    """
    host = getattr(backend, "host_eval_arrays", None)
    if host is not None:
        with host(*arrays) as hosted:
            yield tuple(hosted)
        return
    if not shared_memory_available() or not _backend_shards(backend):
        yield tuple(np.asarray(array) for array in arrays)
        return
    with _active_recorder().span("shared/host_arrays", segments=len(arrays)) as span:
        handles = [SharedArray.create(np.asarray(array)) for array in arrays]
        span.set("bytes", sum(handle.nbytes for handle in handles))
    try:
        yield tuple(handles)
    finally:
        for handle in handles:
            handle.close()
            handle.unlink()
