"""Pluggable execution backends for the Monte Carlo engine.

The paper's methodology multiplies quickly: 1000 uncertainty realizations
per design point, hundreds of design points across EXP 1 / EXP 2 / the yield
sweeps.  PR 1 vectorized one design point at a time, but the whole sweep
still ran on a single NumPy thread.  This module factors the *scheduling* of
that work out of :class:`~repro.analysis.monte_carlo.MonteCarloRunner` into
a small backend protocol so the same experiment code can run

* inline on the calling thread (:class:`SerialBackend`, the default),
* sharded across worker processes (:class:`MultiprocessBackend`, stdlib
  :mod:`concurrent.futures`, no extra dependencies),
* device-resident (:class:`GpuBackend`), or
* across a persistent socket-connected worker fleet
  (:class:`~repro.execution.fleet.FleetBackend`, stdlib sockets — see
  :mod:`repro.execution.fleet`).

**Determinism contract.**  A backend never creates randomness and never
reorders results: it receives a list of self-contained task payloads (for
Monte Carlo work: chunk start index + the chunk's pre-spawned child
generators + the trial callable) and returns one result per task *in task
order*.  Because the child streams are spawned deterministically in the
parent via ``SeedSequence.spawn()`` before any scheduling happens, the
samples are bit-identical for every backend and every worker count.

**Picklability contract.**  Process-based backends pickle the mapped
function and each task payload into the workers, so both must be picklable:
module-level functions, dataclass instances, NumPy generators/arrays and
bound methods of picklable objects all qualify; locally defined closures do
not (the experiment layers therefore expose their trials as module-level
callable dataclasses).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Protocol, Sequence, Union, runtime_checkable

from ..arrays import available_array_backends, get_array_backend, use_array_backend
from ..observability.progress import emit_progress, progress_sink
from ..observability.recorder import Stopwatch


def _map_with_heartbeat(label: str, results: Iterator[Any], total: int) -> List[Any]:
    """Gather ``results`` in order, emitting a progress record per task.

    Backends call this only when a progress sink is installed (the
    disabled path is the untouched list comprehension); ``results`` is a
    lazy iterator, so each heartbeat fires as its task completes.
    """
    watch = Stopwatch()
    gathered: List[Any] = []
    for result in results:
        gathered.append(result)
        emit_progress(
            "chunk", label=label, done=len(gathered), total=total, seconds=watch.seconds
        )
    return gathered


def gather_with_heartbeat(label: str, results: Iterator[Any], total: int) -> List[Any]:
    """Drain a lazy result iterator in order, heartbeating when a sink is set.

    The one gather loop every backend shares: with no progress sink the
    results are drained as a plain list (zero overhead), with one a
    ``chunk``-kind progress record fires per completed task under
    ``label``.  ``results`` must already yield in task order — heartbeats
    never reorder anything.
    """
    if progress_sink() is None:
        return list(results)
    return _map_with_heartbeat(label, results, total)


def _gather_futures(futures: List[Any]) -> List[Any]:
    """Collect futures in submission order (with heartbeats when sunk)."""
    return gather_with_heartbeat(
        "multiprocess", (future.result() for future in futures), len(futures)
    )


@runtime_checkable
class Backend(Protocol):
    """Protocol every execution backend implements.

    ``map`` evaluates ``fn`` over ``tasks`` and returns the results in task
    order; ``parallelism`` reports how many tasks may run concurrently (used
    by callers to pick a chunk size — 1 means "do not bother chunking for
    concurrency").
    """

    @property
    def parallelism(self) -> int:  # pragma: no cover - protocol definition
        ...

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:  # pragma: no cover
        ...


@dataclass(frozen=True)
class SerialBackend:
    """Evaluate every task inline on the calling thread (the default)."""

    @property
    def parallelism(self) -> int:
        return 1

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        tasks = list(tasks)
        return gather_with_heartbeat("serial", (fn(task) for task in tasks), len(tasks))


def available_workers() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass(frozen=True)
class MultiprocessBackend:
    """Shard tasks across worker processes via :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    workers:
        Number of worker processes; ``None`` uses the CPUs available to the
        process.  A value of 1 degenerates to inline execution (no pool is
        created), so ``MultiprocessBackend(workers=1)`` is behaviorally a
        :class:`SerialBackend` — handy for worker-count sweeps.

    Results are gathered in submission order, so ``map`` preserves task
    order no matter which worker finishes first.

    **Pool lifetime.**  By default every :meth:`map` call forks a fresh pool
    and tears it down again — safe, but the spin-up plus copy-on-write
    faulting costs ~0.15 s per run, which dominates sweeps made of many
    small Monte Carlo runs (EXP 2's 54 zones, the per-sigma evaluations of
    the robustness experiment).  Entering the backend as a context manager
    keeps one pool alive for every ``map`` inside the block::

        with MultiprocessBackend(workers=4) as backend:
            for sigma in sigmas:
                monte_carlo_accuracy(..., backend=backend)

    Pool reuse never changes results (the backend still schedules
    self-contained payloads in task order); it only removes the per-run
    fork overhead.  The context is reentrant: nested ``with`` blocks reuse
    the outermost pool and only the outermost exit shuts it down.
    """

    workers: Optional[int] = None
    #: Live executor while inside a ``with`` block (never pickled/compared).
    _executor: Optional[ProcessPoolExecutor] = field(
        default=None, init=False, repr=False, compare=False
    )
    _entries: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @property
    def parallelism(self) -> int:
        return self.workers if self.workers is not None else available_workers()

    # ------------------------------------------------------------------ #
    # persistent-pool lifetime
    # ------------------------------------------------------------------ #
    @property
    def pool_is_open(self) -> bool:
        """Whether a persistent pool is currently alive (inside ``with``)."""
        return self._executor is not None

    def __enter__(self) -> "MultiprocessBackend":
        if self._executor is None and self.parallelism > 1:
            object.__setattr__(self, "_executor", ProcessPoolExecutor(max_workers=self.parallelism))
        object.__setattr__(self, "_entries", self._entries + 1)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        object.__setattr__(self, "_entries", self._entries - 1)
        if self._entries <= 0 and self._executor is not None:
            self._executor.shutdown(wait=True)
            object.__setattr__(self, "_executor", None)

    def __getstate__(self) -> dict:
        # The live executor must never travel into a worker (pools are not
        # picklable); a pickled copy behaves like a fresh, closed backend.
        return {"workers": self.workers}

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "workers", state["workers"])
        object.__setattr__(self, "_executor", None)
        object.__setattr__(self, "_entries", 0)

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        tasks = list(tasks)
        max_workers = min(self.parallelism, len(tasks))
        if max_workers <= 1:
            return gather_with_heartbeat(
                "multiprocess", (fn(task) for task in tasks), len(tasks)
            )
        if self._executor is not None:
            futures = [self._executor.submit(fn, task) for task in tasks]
            return _gather_futures(futures)
        with ProcessPoolExecutor(max_workers=max_workers) as executor:
            futures = [executor.submit(fn, task) for task in tasks]
            return _gather_futures(futures)


#: Environment knob selecting the array backend behind ``--device gpu``.
#: CPU-only CI sets it to ``mock_device`` so the GPU execution path is
#: exercised end to end (strict device semantics, bit-identical results)
#: without CuPy; on GPU machines the default is CuPy.
GPU_ARRAY_BACKEND_ENV = "REPRO_GPU_ARRAY_BACKEND"


def default_gpu_array_backend() -> str:
    """The array backend ``GpuBackend`` targets when none is named."""
    return os.environ.get(GPU_ARRAY_BACKEND_ENV, "cupy")


@dataclass(frozen=True)
class GpuBackend:
    """Run every chunk device-resident through a device array namespace.

    The scheduling itself is inline (one device executes chunks in order —
    the concurrency lives inside the device's kernels): ``map`` activates
    the configured array backend (:func:`repro.arrays.use_array_backend`)
    around the evaluations, so the samplers, mesh sweeps and forward
    kernels underneath allocate and compute on the device, and only the
    per-chunk sample vectors are transferred back at reassembly
    (``evaluate_batch_chunk`` calls :func:`repro.arrays.to_host`).

    ``array_backend`` names the namespace: ``None`` picks CuPy (or the
    ``REPRO_GPU_ARRAY_BACKEND`` override — CI uses the strict
    ``mock_device`` stand-in).  Construction fails loudly when the chosen
    namespace is unavailable, listing what is.

    **Determinism.**  Randomness is always drawn on the host from the
    pre-spawned child streams, so a device run consumes the same sampled
    values as the serial path; the mock namespace is bit-identical, a real
    GPU matches to ``allclose`` at fixed seeds (reduction order).
    """

    array_backend: Optional[str] = None

    def __post_init__(self) -> None:
        # Resolve eagerly: a missing CuPy should fail at configuration time
        # with the available alternatives, not deep inside a Monte Carlo run.
        object.__setattr__(self, "array_backend", self.resolved_array_backend().name)

    def resolved_array_backend(self):
        name = self.array_backend if self.array_backend is not None else default_gpu_array_backend()
        try:
            return get_array_backend(name)
        except Exception as error:
            raise type(error)(
                f"{error} — the GPU execution backend needs a device array namespace; "
                f"available array backends: {available_array_backends()} "
                f"(set {GPU_ARRAY_BACKEND_ENV}=mock_device for the CPU-only stand-in)"
            ) from error

    @property
    def parallelism(self) -> int:
        return 1

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        with use_array_backend(self.resolved_array_backend()):
            tasks = list(tasks)
            return gather_with_heartbeat("gpu", (fn(task) for task in tasks), len(tasks))


@contextmanager
def pool_scope(backend: Backend) -> Iterator[Backend]:
    """Keep the backend's worker pool alive for the duration of the block.

    Sweeps that issue many small Monte Carlo runs wrap their loop in this
    scope so pool-capable backends (currently :class:`MultiprocessBackend`)
    fork their workers once instead of once per run; backends without pool
    lifetime (e.g. :class:`SerialBackend`) pass through unchanged.  Results
    are identical either way — the scope is purely a wall-clock
    optimization.
    """
    enter = getattr(backend, "__enter__", None)
    if enter is None:
        yield backend
        return
    with backend:
        yield backend


#: What callers may pass as a backend: a name, an instance, or None (auto).
BackendLike = Union[None, str, Backend]

#: Registered backend names (the strings accepted by :func:`resolve_backend`).
BACKEND_NAMES = ("serial", "multiprocess", "gpu", "fleet")

#: Devices accepted by the ``device`` knob (experiment configs and the CLI).
DEVICE_NAMES = ("cpu", "gpu")


def resolve_backend(
    backend: BackendLike = None,
    workers: Optional[int] = None,
    device: Optional[str] = None,
) -> Backend:
    """Turn a ``backend``/``workers``/``device`` knob trio into a backend.

    Resolution rules (shared by every layer that exposes the knobs):

    * an existing :class:`Backend` instance is returned unchanged
      (``workers``/``device`` must then be left unset — the instance
      already decided),
    * ``device="gpu"`` selects the device-resident :class:`GpuBackend`
      (``workers`` must be unset or 1 — the GPU executes chunks in order,
      the concurrency lives in its kernels); ``device="cpu"``/``None``
      falls through to the CPU rules below,
    * ``None`` auto-selects: ``workers`` of ``None``/1 gives the serial
      backend, anything larger a multiprocess backend with that many
      workers,
    * ``"serial"`` / ``"multiprocess"`` / ``"gpu"`` / ``"fleet"`` select
      explicitly; ``workers`` is honored by the multiprocess backend (pool
      size) and the fleet backend (minimum connected workers) and must be
      unset or 1 otherwise.  The fleet coordinator binds the address in
      ``REPRO_FLEET_ADDRESS`` (default ``127.0.0.1:0``).
    """
    if device is not None:
        name = str(device).lower()
        if name not in DEVICE_NAMES:
            raise ValueError(f"unknown device {device!r}; expected one of {DEVICE_NAMES}")
        if name == "gpu":
            if backend is not None:
                raise ValueError("device='gpu' cannot be combined with an explicit backend")
            if workers is not None and workers > 1:
                raise ValueError("device='gpu' cannot be combined with workers > 1")
            return GpuBackend()
    if backend is not None and not isinstance(backend, str):
        if not isinstance(backend, Backend):
            raise TypeError(
                f"backend must be None, one of {BACKEND_NAMES} or a Backend instance, "
                f"got {type(backend)!r}"
            )
        if workers is not None:
            raise ValueError("workers cannot be combined with a Backend instance")
        return backend
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend is None:
        if workers is None or workers == 1:
            return SerialBackend()
        return MultiprocessBackend(workers=workers)
    name = backend.lower()
    if name == "serial":
        if workers is not None and workers > 1:
            raise ValueError(f"the serial backend cannot use {workers} workers")
        return SerialBackend()
    if name == "multiprocess":
        return MultiprocessBackend(workers=workers)
    if name == "gpu":
        if workers is not None and workers > 1:
            raise ValueError(f"the gpu backend cannot use {workers} workers")
        return GpuBackend()
    if name == "fleet":
        # Imported lazily: the fleet package imports observability (spans)
        # and would otherwise create an import cycle through this module.
        from .fleet import FleetBackend

        return FleetBackend(min_workers=workers if workers is not None else 1)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}")
