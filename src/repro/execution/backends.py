"""Pluggable execution backends for the Monte Carlo engine.

The paper's methodology multiplies quickly: 1000 uncertainty realizations
per design point, hundreds of design points across EXP 1 / EXP 2 / the yield
sweeps.  PR 1 vectorized one design point at a time, but the whole sweep
still ran on a single NumPy thread.  This module factors the *scheduling* of
that work out of :class:`~repro.analysis.monte_carlo.MonteCarloRunner` into
a small backend protocol so the same experiment code can run

* inline on the calling thread (:class:`SerialBackend`, the default), or
* sharded across worker processes (:class:`MultiprocessBackend`, stdlib
  :mod:`concurrent.futures`, no extra dependencies),

with a GPU/drjit-style backend as the natural next implementation.

**Determinism contract.**  A backend never creates randomness and never
reorders results: it receives a list of self-contained task payloads (for
Monte Carlo work: chunk start index + the chunk's pre-spawned child
generators + the trial callable) and returns one result per task *in task
order*.  Because the child streams are spawned deterministically in the
parent via ``SeedSequence.spawn()`` before any scheduling happens, the
samples are bit-identical for every backend and every worker count.

**Picklability contract.**  Process-based backends pickle the mapped
function and each task payload into the workers, so both must be picklable:
module-level functions, dataclass instances, NumPy generators/arrays and
bound methods of picklable objects all qualify; locally defined closures do
not (the experiment layers therefore expose their trials as module-level
callable dataclasses).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Protocol, Sequence, Union, runtime_checkable


@runtime_checkable
class Backend(Protocol):
    """Protocol every execution backend implements.

    ``map`` evaluates ``fn`` over ``tasks`` and returns the results in task
    order; ``parallelism`` reports how many tasks may run concurrently (used
    by callers to pick a chunk size — 1 means "do not bother chunking for
    concurrency").
    """

    @property
    def parallelism(self) -> int:  # pragma: no cover - protocol definition
        ...

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:  # pragma: no cover
        ...


@dataclass(frozen=True)
class SerialBackend:
    """Evaluate every task inline on the calling thread (the default)."""

    @property
    def parallelism(self) -> int:
        return 1

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        return [fn(task) for task in tasks]


def available_workers() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass(frozen=True)
class MultiprocessBackend:
    """Shard tasks across worker processes via :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    workers:
        Number of worker processes; ``None`` uses the CPUs available to the
        process.  A value of 1 degenerates to inline execution (no pool is
        created), so ``MultiprocessBackend(workers=1)`` is behaviorally a
        :class:`SerialBackend` — handy for worker-count sweeps.

    Results are gathered in submission order, so ``map`` preserves task
    order no matter which worker finishes first.
    """

    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @property
    def parallelism(self) -> int:
        return self.workers if self.workers is not None else available_workers()

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        tasks = list(tasks)
        max_workers = min(self.parallelism, len(tasks))
        if max_workers <= 1:
            return [fn(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=max_workers) as executor:
            futures = [executor.submit(fn, task) for task in tasks]
            return [future.result() for future in futures]


#: What callers may pass as a backend: a name, an instance, or None (auto).
BackendLike = Union[None, str, Backend]

#: Registered backend names (the strings accepted by :func:`resolve_backend`).
BACKEND_NAMES = ("serial", "multiprocess")


def resolve_backend(backend: BackendLike = None, workers: Optional[int] = None) -> Backend:
    """Turn a ``backend``/``workers`` knob pair into a concrete backend.

    Resolution rules (shared by every layer that exposes the knobs):

    * an existing :class:`Backend` instance is returned unchanged
      (``workers`` must then be left unset — the instance already decided),
    * ``None`` auto-selects: ``workers`` of ``None``/1 gives the serial
      backend, anything larger a multiprocess backend with that many
      workers,
    * ``"serial"`` / ``"multiprocess"`` select explicitly; ``workers`` is
      honored by the multiprocess backend and must be unset or 1 for serial.
    """
    if backend is not None and not isinstance(backend, str):
        if not isinstance(backend, Backend):
            raise TypeError(
                f"backend must be None, one of {BACKEND_NAMES} or a Backend instance, "
                f"got {type(backend)!r}"
            )
        if workers is not None:
            raise ValueError("workers cannot be combined with a Backend instance")
        return backend
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend is None:
        if workers is None or workers == 1:
            return SerialBackend()
        return MultiprocessBackend(workers=workers)
    name = backend.lower()
    if name == "serial":
        if workers is not None and workers > 1:
            raise ValueError(f"the serial backend cannot use {workers} workers")
        return SerialBackend()
    if name == "multiprocess":
        return MultiprocessBackend(workers=workers)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}")
