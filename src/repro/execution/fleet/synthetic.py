"""Synthetic chunk evaluators for exercising the fleet scheduler.

Scheduling behavior (weighted claiming, tail-chunk duplication) depends
on *timing*, which real numeric chunks make noisy and slow to provoke.
:class:`SleepChunkEvaluator` gives the tests and the ``weighted_fleet``
benchmark a deterministic stand-in: each evaluation sleeps a configurable
time — per *worker*, via the ``REPRO_SYNTH_SLEEP`` environment variable
read in the worker process, which :func:`~repro.execution.fleet.backend.
local_fleet`'s ``worker_env`` sets per child — and returns a pure
function of the task payload, so results are bit-identical no matter
which worker computed a chunk, how often it was duplicated, or what the
sleeps were.

This module is numpy-free (enforced by ``tools/check_numpy_seam.py``).
"""

from __future__ import annotations

import os
import time
from typing import Any

__all__ = ["SYNTH_SLEEP_ENV", "SleepChunkEvaluator"]

#: Per-process override of the evaluator's sleep, in seconds.  Set it in a
#: worker's environment (not the coordinator's) to slow that worker down.
SYNTH_SLEEP_ENV = "REPRO_SYNTH_SLEEP"


class SleepChunkEvaluator:
    """Sleep, then return a deterministic transform of the task.

    The result depends only on the task payload (never on the sleep, the
    worker, or the wall clock), so any scheduling policy must reassemble
    the exact same output list — the property the weighted-fleet
    bit-identity tests assert.
    """

    def __init__(self, default_seconds: float = 0.0):
        self.default_seconds = float(default_seconds)

    def _sleep_seconds(self) -> float:
        raw = os.environ.get(SYNTH_SLEEP_ENV, "").strip()
        if raw:
            try:
                return float(raw)
            except ValueError:
                pass
        return self.default_seconds

    def __call__(self, task: Any) -> Any:
        seconds = self._sleep_seconds()
        if seconds > 0.0:
            time.sleep(seconds)
        return ("synth", task)
