"""``FleetServer``: the coordinator side of the distributed sweep fleet.

The coordinator owns the listening socket.  Persistent workers dial in
(``spnn-repro worker --connect HOST:PORT``) and stay connected across
requests; the local :class:`~repro.execution.fleet.backend.FleetBackend`
enqueues one **request** per ``Backend.map`` call.  Requests are served
strictly FIFO; within the active request, chunks are pulled dynamically by
whichever worker link is idle (the chunk *plan* itself was already fixed
caller-side by ``plan_chunk_size``, so dynamic pull only changes who
evaluates a chunk, never what it contains), and results are reassembled in
task order — the same determinism contract every other backend keeps.

Scheduling within the active request is **throughput-weighted** by
default: each link keeps an EWMA of rows/second from its returned chunk
frames, a measurably slower link abstains from claiming a chunk the
faster links will drain sooner (so chunk counts land roughly proportional
to throughput instead of FIFO-uniform), and once the queue is empty an
idle fast link *re-dispatches* a straggler's in-flight tail chunk —
first result wins, the duplicate is dropped on reassembly
(:meth:`_Request.post` ignores posts to completed slots).  All of this
only moves chunks between workers; the task-ordered reassembly is
untouched, so results stay bit-identical to ``SerialBackend`` for any
fleet size, skew, or cache state.  ``REPRO_FLEET_SCHEDULING=fifo`` (or
``FleetServer(scheduling="fifo")``) restores plain FIFO claiming.

Artifact flow: a request names the spec-hash digests it ``requires``; each
worker link pushes only the blobs that link has not already sent
(tracked per connection), so a warm repeat request transfers nothing but
the hashes inside its ~300-byte chunk tasks.  Per-request transfer totals
land in :attr:`FleetServer.request_log` — the numbers the cold/warm tests
and the ``artifact_cache_hit`` benchmark assert on.

Failure semantics are bounded, never hanging: a worker that dies
mid-request has its in-flight chunk requeued to the survivors; when no
workers remain — or the request's deadline passes — the request fails with
a :class:`FleetRequestError` naming the situation.

This module is numpy-free (enforced by ``tools/check_numpy_seam.py``).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .cache import artifact_store
from .protocol import (
    ConnectionClosed,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
)

__all__ = ["FleetRequestError", "FleetServer", "FLEET_SCHEDULING_ENV"]

#: Chunk-assignment policy override: ``weighted`` (default) or ``fifo``.
FLEET_SCHEDULING_ENV = "REPRO_FLEET_SCHEDULING"

#: EWMA weight of a link's newest rows/second sample (recent chunks
#: dominate — throughput shifts with competing load, not just hardware).
_RATE_DECAY = 0.5

#: A link must be this much faster than another before the scheduler
#: treats them as different classes; within the band they behave FIFO,
#: so homogeneous fleets never abstain or duplicate on timing noise.
_RATE_MARGIN = 1.2

#: A chunk owner this much slower than an idle link is a straggler worth
#: duplicating immediately once the queue is empty.
_STRAGGLER_MARGIN = 1.5


class FleetRequestError(RuntimeError):
    """A fleet request could not complete (disconnects, timeout, remote error)."""


class _WorkerLink:
    """One connected worker: its socket, identity, and per-link send state."""

    def __init__(self, sock: socket.socket, hello: dict):
        self.sock = sock
        self.host = str(hello.get("host", "?"))
        self.pid = int(hello.get("pid", -1))
        self.sent_digests: set = set()
        self.request_id: Optional[int] = None
        self.lock = threading.Lock()
        #: EWMA rows/second over returned chunks; ``None`` until the first
        #: chunk lands (an unmeasured link is scheduled like the fastest —
        #: it must claim work to get measured at all).
        self.rate: Optional[float] = None
        self.rows_done = 0
        self.seconds_busy = 0.0

    def note_result(self, rows: int, seconds: float) -> None:
        sample = max(1, rows) / max(seconds, 1e-9)
        self.rate = sample if self.rate is None else (
            _RATE_DECAY * sample + (1.0 - _RATE_DECAY) * self.rate
        )
        self.rows_done += max(1, rows)
        self.seconds_busy += max(seconds, 0.0)

    @property
    def name(self) -> str:
        return f"{self.host}/pid {self.pid}"


def _task_rows(task: Any) -> int:
    """A chunk's workload weight: its realization count when discoverable.

    Engine chunk tasks carry their stream run last (``(start, trial,
    streams)``), and both materialized generator lists and ``StreamSlice``
    recipes are sized; anything else weighs 1 — with uniform weights the
    proportional scheduler degrades to chunk counting, which is exactly
    right when chunks are planned equal-size.
    """
    try:
        return max(1, len(task[-1]))
    except (TypeError, IndexError, KeyError):
        return 1


class _Request:
    """One ``map`` call: tasks, result slots, transfer stats, deadline."""

    def __init__(
        self,
        request_id: int,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        required: Tuple[str, ...],
        deadline: Optional[float],
        condition: threading.Condition,
    ):
        self.id = request_id
        self.fn = fn
        self.tasks = list(tasks)
        self.required = tuple(required)
        self.deadline = deadline
        self._condition = condition
        self.pending: deque = deque(range(len(self.tasks)))
        self.results: List[Any] = [None] * len(self.tasks)
        self.done: List[bool] = [False] * len(self.tasks)
        self.rows: List[int] = [_task_rows(task) for task in self.tasks]
        self.pending_rows = sum(self.rows)
        #: index -> [(link, started_at)] of live in-flight assignments;
        #: entries are pruned when their link returns or disconnects, so
        #: the duplicate scheduler sees only real outstanding work.
        self.assigned: Dict[int, List[Tuple[Any, float]]] = {}
        self.completed = 0
        self.error: Optional[BaseException] = None
        self.stats: Dict[str, int] = {
            "tasks": len(self.tasks),
            "task_bytes": 0,
            "fn_bytes": 0,
            "artifacts_sent": 0,
            "artifact_bytes": 0,
            "requeues": 0,
            "duplicates": 0,
        }

    @property
    def finished(self) -> bool:
        return self.error is not None or self.completed == len(self.tasks)

    # Called with the server condition held. ---------------------------------
    def post(self, index: int, result: Any) -> None:
        if not self.done[index]:
            self.results[index] = result
            self.done[index] = True
            self.completed += 1

    def fail(self, error: BaseException) -> None:
        if self.error is None:
            self.error = error

    def requeue(self, index: int) -> None:
        if not self.done[index]:
            self.pending.appendleft(index)
            self.pending_rows += self.rows[index]
            self.stats["requeues"] += 1

    def release_assignment(self, index: int, link: Any) -> List[Tuple[Any, float]]:
        """Drop ``link``'s in-flight entry for ``index``; return survivors."""
        entries = [e for e in self.assigned.get(index, ()) if e[0] is not link]
        if entries:
            self.assigned[index] = entries
        else:
            self.assigned.pop(index, None)
        return entries


class FleetServer:
    """Socket coordinator: accepts workers, schedules FIFO requests.

    ``scheduling`` picks the within-request chunk-assignment policy:
    ``"weighted"`` (the default; throughput-proportional claiming with
    tail-chunk re-dispatch) or ``"fifo"`` (every idle link claims the
    queue head unconditionally).  ``REPRO_FLEET_SCHEDULING`` sets the
    default; the attribute stays mutable for benchmarks comparing both
    policies over one fleet.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, scheduling: Optional[str] = None):
        if scheduling is None:
            scheduling = os.environ.get(FLEET_SCHEDULING_ENV, "").strip().lower() or "weighted"
        if scheduling not in ("weighted", "fifo"):
            raise ValueError(
                f"unknown fleet scheduling {scheduling!r} "
                f"({FLEET_SCHEDULING_ENV}); expected 'weighted' or 'fifo'"
            )
        self.scheduling = scheduling
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        # Poll instead of blocking forever: a thread stuck in accept() is
        # not woken by close(), and once the fd number is recycled a stale
        # accept retry can steal connections meant for a newer coordinator.
        self._listener.settimeout(0.25)
        self._host = host
        self._port = int(self._listener.getsockname()[1])
        self._condition = threading.Condition()
        self._links: List[_WorkerLink] = []
        self._queue: deque = deque()
        self._next_request_id = 1
        self._closed = False
        #: Transfer stats of every finished request, in completion order.
        self.request_log: List[dict] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------ #
    # public surface
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        """The bound ``HOST:PORT`` workers should ``--connect`` to."""
        return format_address(self._host, self._port)

    @property
    def worker_count(self) -> int:
        with self._condition:
            return len(self._links)

    def worker_names(self) -> List[str]:
        with self._condition:
            return [link.name for link in self._links]

    def worker_rates(self) -> Dict[str, Optional[float]]:
        """Per-link measured throughput (rows/second EWMA; ``None`` = unmeasured)."""
        with self._condition:
            return {link.name: link.rate for link in self._links}

    def wait_for_workers(self, count: int, timeout: float = 60.0) -> None:
        """Block until ``count`` workers are connected (or raise)."""
        deadline = time.monotonic() + timeout
        with self._condition:
            while len(self._links) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise FleetRequestError(
                        f"waited {timeout:.0f}s for {count} fleet worker(s) at "
                        f"{self.address}; only {len(self._links)} connected — start "
                        f"workers with: spnn-repro worker --connect {self.address}"
                    )
                self._condition.wait(min(remaining, 0.2))

    def enqueue(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        required: Tuple[str, ...] = (),
        timeout: Optional[float] = None,
    ) -> "_Request":
        """Append one request to the FIFO queue; results stream via ``iter_results``."""
        with self._condition:
            if self._closed:
                raise FleetRequestError("the fleet coordinator is closed")
            request = _Request(
                self._next_request_id,
                fn,
                tasks,
                required,
                time.monotonic() + timeout if timeout is not None else None,
                self._condition,
            )
            self._next_request_id += 1
            self._queue.append(request)
            self._condition.notify_all()
        return request

    def iter_results(self, request: "_Request") -> Iterator[Any]:
        """Yield ``request``'s results in task order as they complete.

        Raises :class:`FleetRequestError` on worker-side failure, total
        disconnection, or deadline expiry — never hangs.
        """
        for index in range(len(request.tasks)):
            with self._condition:
                while not request.done[index]:
                    if request.error is not None:
                        self._retire(request)
                        raise FleetRequestError(str(request.error)) from request.error
                    if request.deadline is not None and time.monotonic() > request.deadline:
                        request.fail(
                            FleetRequestError(
                                f"fleet request {request.id} timed out with "
                                f"{request.completed}/{len(request.tasks)} chunks done "
                                f"and {len(self._links)} worker(s) connected"
                            )
                        )
                        continue
                    if not self._links and request.pending:
                        # No workers and work outstanding: fail fast rather
                        # than sleeping until the deadline.
                        request.fail(
                            FleetRequestError(
                                f"fleet request {request.id} has no connected workers "
                                f"({request.completed}/{len(request.tasks)} chunks done) "
                                f"— start workers with: spnn-repro worker --connect "
                                f"{self.address}"
                            )
                        )
                        continue
                    self._condition.wait(0.05)
            yield request.results[index]
        with self._condition:
            self._retire(request)

    def close(self) -> None:
        """Shut the coordinator down: close the listener and every link."""
        with self._condition:
            if self._closed:
                return
            self._closed = True
            links = list(self._links)
            self._condition.notify_all()
        for link in links:
            try:
                link.sock.close()
            except OSError:  # pragma: no cover
                pass
        # The accept thread owns the listener fd (see _accept_loop); wait
        # for it to observe the closed flag — at most one poll interval —
        # so the port is really released when close() returns.
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "FleetServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _retire(self, request: "_Request") -> None:
        # Condition held.  Log once, drop from the queue.
        if request in self._queue:
            self._queue.remove(request)
            entry = dict(request.stats)
            entry["id"] = request.id
            entry["error"] = str(request.error) if request.error is not None else None
            self.request_log.append(entry)

    def _accept_loop(self) -> None:
        # This thread is the listener fd's sole owner after construction —
        # closing an fd another thread is blocked accepting on does not
        # wake it on Linux, and a stale accept retry on a recycled fd
        # number would steal connections meant for a newer coordinator.
        # So the loop polls (0.25s listener timeout), exits on the closed
        # flag, and closes the listener itself on the way out.
        while True:
            sock = None
            try:
                sock, _ = self._listener.accept()
            except TimeoutError:
                pass
            except OSError:  # pragma: no cover - listener failed
                break
            with self._condition:
                closed = self._closed
            if closed:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:  # pragma: no cover
                        pass
                break
            if sock is not None:
                # Handshake off-thread: one worker slow to say hello must
                # not block the other dialing workers behind it.
                threading.Thread(
                    target=self._handshake,
                    args=(sock,),
                    name="fleet-handshake",
                    daemon=True,
                ).start()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _handshake(self, sock: socket.socket) -> None:
        """Read one connection's hello; register the link and serve it."""
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(30.0)
            hello = recv_frame(sock)
            sock.settimeout(None)
            if not isinstance(hello, dict) or hello.get("role") != "worker":
                sock.close()
                return
        except (ConnectionClosed, OSError):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return
        link = _WorkerLink(sock, hello)
        with self._condition:
            if self._closed:
                sock.close()
                return
            self._links.append(link)
            self._condition.notify_all()
        threading.current_thread().name = f"fleet-link-{link.pid}"
        self._serve_link(link)

    def _active_request(self) -> Optional["_Request"]:
        # Condition held.  The FIFO head stays active until it finishes.
        while self._queue and self._queue[0].finished:
            self._retire(self._queue[0])
        return self._queue[0] if self._queue else None

    def _claim(self, link: _WorkerLink) -> Optional[Tuple["_Request", int]]:
        """Block until a chunk of the active request is available (or shutdown)."""
        with self._condition:
            while True:
                if self._closed or link not in self._links:
                    return None
                request = self._active_request()
                if request is not None:
                    index = self._next_index(request, link)
                    if index is not None:
                        request.assigned.setdefault(index, []).append(
                            (link, time.monotonic())
                        )
                        return request, index
                self._condition.wait(0.1)

    def _next_index(self, request: "_Request", link: _WorkerLink) -> Optional[int]:
        # Condition held.  FIFO: claim the head unconditionally.  Weighted:
        # a measurably slower link abstains while faster links would drain
        # the remaining queue sooner than it could finish the head chunk;
        # with the queue empty, an idle link may duplicate a straggler's
        # in-flight tail chunk instead of going idle.
        if request.pending:
            if self.scheduling != "weighted" or self._worth_claiming(request, link):
                index = request.pending.popleft()
                request.pending_rows -= request.rows[index]
                return index
            return None
        if self.scheduling == "weighted":
            return self._duplicate_index(request, link)
        return None

    def _worth_claiming(self, request: "_Request", link: _WorkerLink) -> bool:
        # Condition held.  An unmeasured link always claims (that is how it
        # gets measured), and so does any link no other is clearly faster
        # than — the fastest class never abstains, so the queue always
        # drains.  Otherwise compare finishing the head chunk here against
        # the faster links draining the whole remaining queue.
        if link.rate is None:
            return True
        faster = [
            other.rate
            for other in self._links
            if other is not link
            and other.rate is not None
            and other.rate > link.rate * _RATE_MARGIN
        ]
        if not faster:
            return True
        head_seconds = request.rows[request.pending[0]] / link.rate
        drain_seconds = request.pending_rows / sum(faster)
        return head_seconds <= drain_seconds

    def _duplicate_index(self, request: "_Request", link: _WorkerLink) -> Optional[int]:
        # Condition held.  Tail re-dispatch: the queue is empty but chunks
        # are still in flight.  Give this idle link the lowest unfinished
        # chunk whose sole owner is either a measured straggler or has held
        # the chunk well past this link's own expected time — first result
        # wins, the loser's post lands on a completed slot and is ignored.
        if link.rate is None:
            return None
        now = time.monotonic()
        for index, entries in sorted(request.assigned.items()):
            if request.done[index] or len(entries) != 1:
                continue
            owner, started = entries[0]
            if owner is link:
                continue
            expected = request.rows[index] / link.rate
            straggling = (
                owner.rate is not None and owner.rate * _STRAGGLER_MARGIN < link.rate
            )
            overdue = (now - started) > max(2.0 * expected, 0.05)
            if straggling or overdue:
                request.stats["duplicates"] += 1
                return index
        return None

    def _serve_link(self, link: _WorkerLink) -> None:
        """One worker's send/recv loop: artifacts + fn once, then chunks."""
        store = artifact_store()
        while True:
            claimed = self._claim(link)
            if claimed is None:
                return
            request, index = claimed
            try:
                if link.request_id != request.id:
                    request.stats["fn_bytes"] += send_frame(
                        link.sock,
                        {"type": "request", "id": request.id, "fn": request.fn,
                         "required": request.required},
                    )
                    link.request_id = request.id
                for digest in request.required:
                    if digest not in link.sent_digests:
                        request.stats["artifact_bytes"] += send_frame(
                            link.sock,
                            {"type": "artifact", "digest": digest,
                             "payload": store.get(digest)},
                        )
                        request.stats["artifacts_sent"] += 1
                        link.sent_digests.add(digest)
                started = time.monotonic()
                reply = self._send_task(link, request, index)
                elapsed = time.monotonic() - started
                with self._condition:
                    request.release_assignment(index, link)
                    if reply.get("type") == "result":
                        # Prefer the worker's own evaluation time (no queue
                        # or transfer latency) for the throughput EWMA; the
                        # coordinator-side wall clock is the fallback for
                        # older workers that don't stamp it.
                        seconds = reply.get("seconds")
                        link.note_result(
                            request.rows[index],
                            float(seconds) if seconds is not None else elapsed,
                        )
                        request.post(index, reply["payload"])
                    elif not request.done[index]:
                        request.fail(
                            FleetRequestError(
                                f"worker {link.name} failed chunk {index}: "
                                f"{reply.get('message', 'unknown error')}"
                            )
                        )
                    self._condition.notify_all()
            except (ConnectionClosed, OSError) as error:
                self._drop_link(link, request, index, error)
                return

    def _send_task(self, link: _WorkerLink, request: "_Request", index: int) -> dict:
        request.stats["task_bytes"] += send_frame(
            link.sock,
            {"type": "task", "id": request.id, "index": index,
             "payload": request.tasks[index]},
        )
        while True:
            reply = recv_frame(link.sock)
            kind = reply.get("type")
            if kind == "need":
                # The worker's LRU evicted blobs this link already sent:
                # forget our bookkeeping for them and resend with the task.
                store = artifact_store()
                for digest in reply.get("digests", ()):
                    request.stats["artifact_bytes"] += send_frame(
                        link.sock,
                        {"type": "artifact", "digest": digest,
                         "payload": store.get(digest)},
                    )
                    request.stats["artifacts_sent"] += 1
                    link.sent_digests.add(digest)
                request.stats["task_bytes"] += send_frame(
                    link.sock,
                    {"type": "task", "id": request.id, "index": index,
                     "payload": request.tasks[index]},
                )
                continue
            return reply

    def _drop_link(
        self,
        link: _WorkerLink,
        request: Optional["_Request"],
        index: Optional[int],
        error: BaseException,
    ) -> None:
        with self._condition:
            if link in self._links:
                self._links.remove(link)
            if request is not None and index is not None and not request.done[index]:
                survivors = request.release_assignment(index, link)
                if survivors:
                    # A duplicate of this chunk is still in flight on a
                    # live link; nothing to requeue.
                    pass
                elif self._links:
                    request.requeue(index)
                else:
                    request.fail(
                        FleetRequestError(
                            f"worker {link.name} disconnected mid-request "
                            f"({type(error).__name__}) and no workers remain "
                            f"connected; chunk {index} of request {request.id} "
                            f"is unrecoverable"
                        )
                    )
            self._condition.notify_all()
        try:
            link.sock.close()
        except OSError:  # pragma: no cover
            pass
