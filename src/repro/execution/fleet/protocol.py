"""Length-prefixed pickle framing for the fleet transport.

One frame = an 8-byte big-endian payload length followed by the pickled
payload.  Both sides of every fleet socket (coordinator worker-links and
the worker loop) speak only in frames, so partial reads can never tear a
message apart and a closed peer is always detected as a clean
:class:`ConnectionClosed` at a frame boundary.

The payloads are plain dicts (``{"type": ..., ...}``) — see
:mod:`repro.execution.fleet.server` for the coordinator-to-worker message
set and :mod:`repro.execution.fleet.worker` for the replies.  Pickle is the
serializer because the payloads *are* the existing backend task payloads
(chunk tuples, trial dataclasses, ``StreamSlice`` recipes, ndarrays) and
those already carry the repo-wide picklability contract.  The transport is
therefore only suitable for trusted fleets (the same trust boundary as
``MultiprocessBackend``'s pickled task stream).

This module is numpy-free and enforced so by ``tools/check_numpy_seam.py``:
the transport moves opaque payload bytes, never array contents.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

__all__ = [
    "ConnectionClosed",
    "FleetProtocolError",
    "MAX_FRAME_BYTES",
    "parse_address",
    "format_address",
    "recv_frame",
    "send_frame",
]

#: Hard ceiling on one frame's payload, a corruption guard: a garbled
#: length prefix would otherwise be interpreted as a multi-terabyte
#: allocation.  2 GiB comfortably holds any real artifact push (the paper's
#: full eval set is tens of megabytes).
MAX_FRAME_BYTES = 2 << 30

_LENGTH = struct.Struct(">Q")


class ConnectionClosed(ConnectionError):
    """The peer closed the socket at (or inside) a frame boundary."""


class FleetProtocolError(RuntimeError):
    """A frame violated the protocol (bad length prefix, bad payload)."""


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"HOST:PORT"`` into its parts (IPv4/hostname transport)."""
    host, separator, port = str(address).rpartition(":")
    if not separator or not host:
        raise ValueError(f"fleet address must look like HOST:PORT, got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"fleet address has a non-numeric port: {address!r}") from None


def format_address(host: str, port: int) -> str:
    return f"{host}:{int(port)}"


def send_frame(sock: socket.socket, payload: Any) -> int:
    """Pickle ``payload`` and send it as one frame; returns bytes on the wire."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:  # pragma: no cover - guards pathological payloads
        raise FleetProtocolError(f"frame payload of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(_LENGTH.pack(len(data)) + data)
    return _LENGTH.size + len(data)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes, raising :class:`ConnectionClosed` on EOF."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection ({count - remaining}/{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Receive one frame and unpickle its payload.

    Raises :class:`ConnectionClosed` when the peer hangs up cleanly and
    :class:`FleetProtocolError` on a corrupt length prefix.  A
    ``socket.timeout`` from a timed-out socket propagates unchanged so
    callers can poll (the coordinator's worker links do, to bound how long
    a dead worker can stall a request).
    """
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FleetProtocolError(f"frame announces {length} bytes (corrupt stream?)")
    return pickle.loads(_recv_exact(sock, int(length)))
