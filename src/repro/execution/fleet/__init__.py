"""Distributed sweep fleet: network backend, persistent workers, artifact cache.

The package splits along the wire:

``protocol``
    Length-prefixed pickle frames over stdlib sockets.
``cache``
    The content-addressed :class:`ArtifactStore` plus the spec-hash refs
    (:class:`ArrayRef`, :class:`NetworkRef`, :class:`TrialRef`) that stand
    in for heavy payloads on the wire.
``server``
    The :class:`FleetServer` coordinator: accepts worker links, runs the
    FIFO request queue, pushes artifacts at most once per link.
``worker``
    The persistent worker loop behind ``spnn-repro worker --connect``.
``backend``
    :class:`FleetBackend`, the ``Backend``-protocol face the analysis
    layer sees, and the :func:`local_fleet` localhost harness.

Everything here is numpy-free (``tools/check_numpy_seam.py`` enforces
it): the fleet moves payloads, it never computes on them.
"""

from .backend import FLEET_ADDRESS_ENV, FleetBackend, default_fleet_address, local_fleet
from .cache import (
    ArrayRef,
    ArtifactRef,
    ArtifactStore,
    NetworkRef,
    TaskRehydrator,
    TrialRef,
    array_digest,
    artifact_store,
    iter_refs,
    network_digest,
    publish_array,
    publish_network,
    publish_trial,
    rehydrate_task,
)
from .protocol import (
    ConnectionClosed,
    FleetProtocolError,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
)
from .server import FleetRequestError, FleetServer
from .worker import connect_worker, run_worker

__all__ = [
    "FLEET_ADDRESS_ENV",
    "ArrayRef",
    "ArtifactRef",
    "ArtifactStore",
    "ConnectionClosed",
    "FleetBackend",
    "FleetProtocolError",
    "FleetRequestError",
    "FleetServer",
    "NetworkRef",
    "TaskRehydrator",
    "TrialRef",
    "array_digest",
    "artifact_store",
    "connect_worker",
    "default_fleet_address",
    "format_address",
    "iter_refs",
    "local_fleet",
    "network_digest",
    "parse_address",
    "publish_array",
    "publish_network",
    "publish_trial",
    "recv_frame",
    "rehydrate_task",
    "run_worker",
    "send_frame",
]
