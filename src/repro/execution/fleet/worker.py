"""The persistent fleet worker: ``spnn-repro worker --connect HOST:PORT``.

A worker dials the coordinator (retrying while the coordinator is still
starting), announces itself with a hello frame carrying its
``platform.node()`` host and pid — the identity that later stamps its
:class:`~repro.observability.frames.ChunkFrame` telemetry — and then
serves frames until the coordinator hangs up:

``artifact``
    Store a content-addressed blob in the process
    :class:`~repro.execution.fleet.cache.ArtifactStore`.  Blobs arrive at
    most once per connection (the coordinator tracks what it sent); on a
    repeat request over the same spec nothing arrives at all.
``request``
    Install the request's evaluator.  The evaluator is wrapped with a
    :class:`~repro.execution.fleet.cache.TaskRehydrator` *inside* any
    :class:`~repro.observability.frames.InstrumentedChunkEvaluator`, so
    traced chunks report the wire payload bytes, and rehydration (trial
    lookup, network rebuild) happens worker-side from the store.
``task``
    Evaluate one chunk and reply with ``result`` (or ``error`` carrying
    the traceback, or ``need`` naming store-evicted digests so the
    coordinator resends them).

Evaluation itself is the plain inline call every other backend makes; the
determinism contract is untouched because the task payloads are the same
self-contained chunk tuples, rebuilt bit-identically from their
``StreamSlice`` recipes.

This module is numpy-free (enforced by ``tools/check_numpy_seam.py``) —
the numerics arrive via the pickled evaluator.
"""

from __future__ import annotations

import dataclasses
import os
import platform
import socket
import time
import traceback
from typing import Any, Callable, Optional

from .cache import TaskRehydrator, artifact_store
from .protocol import ConnectionClosed, parse_address, recv_frame, send_frame

__all__ = ["connect_worker", "run_worker"]


def _with_rehydration(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Wrap ``fn`` so refs resolve before evaluation, inside instrumentation."""
    from ...observability.frames import InstrumentedChunkEvaluator

    if isinstance(fn, InstrumentedChunkEvaluator):
        return dataclasses.replace(fn, evaluator=TaskRehydrator(fn.evaluator))
    return TaskRehydrator(fn)


def connect_worker(
    address: str, connect_timeout: float = 30.0, retry_interval: float = 0.2
) -> socket.socket:
    """Dial the coordinator, retrying until it is up (bounded by the timeout).

    Retrying matters operationally: fleets are usually launched as
    "start N workers, then start the study", so workers often race the
    coordinator's bind.
    """
    host, port = parse_address(address)
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    f"could not reach a fleet coordinator at {address} within "
                    f"{connect_timeout:.0f}s — is one listening? (a FleetBackend "
                    f"binds it; check the address passed to --connect)"
                )
            time.sleep(retry_interval)


def run_worker(
    address: str,
    connect_timeout: float = 30.0,
    max_requests: Optional[int] = None,
) -> int:
    """Serve chunks for the coordinator at ``address`` until it disconnects.

    Returns the number of chunks evaluated (useful for tests and for the
    CLI's exit message).  ``max_requests`` bounds how many distinct
    requests the worker serves before exiting voluntarily — tests use it;
    production workers run unbounded.
    """
    store = artifact_store()
    sock = connect_worker(address, connect_timeout=connect_timeout)
    send_frame(
        sock,
        {"type": "hello", "role": "worker", "host": platform.node() or "localhost",
         "pid": os.getpid()},
    )
    evaluator: Optional[Callable[[Any], Any]] = None
    required: tuple = ()
    chunks = 0
    requests = 0
    try:
        while True:
            try:
                message = recv_frame(sock)
            except (ConnectionClosed, OSError):
                break  # coordinator gone: a persistent worker just exits
            kind = message.get("type")
            if kind == "artifact":
                payload = message["payload"]
                store.put(
                    message["digest"], payload, nbytes=int(getattr(payload, "nbytes", 0))
                )
            elif kind == "request":
                evaluator = _with_rehydration(message["fn"])
                required = tuple(message.get("required", ()))
                requests += 1
            elif kind == "task":
                index = int(message["index"])
                missing = store.missing(required)
                if missing:
                    send_frame(sock, {"type": "need", "index": index, "digests": missing})
                    continue
                started = time.perf_counter()
                try:
                    result = evaluator(message["payload"])
                except BaseException as error:  # ship the failure, keep serving
                    send_frame(
                        sock,
                        {"type": "error", "index": index,
                         "message": f"{type(error).__name__}: {error}",
                         "traceback": traceback.format_exc()},
                    )
                    continue
                # The evaluation wall time rides the result frame so the
                # coordinator's throughput EWMA (weighted scheduling)
                # measures compute, not queueing or transfer.
                send_frame(
                    sock,
                    {"type": "result", "index": index, "payload": result,
                     "seconds": time.perf_counter() - started},
                )
                chunks += 1
                if max_requests is not None and requests >= max_requests:
                    break
            elif kind == "shutdown":
                break
            elif kind == "ping":
                send_frame(sock, {"type": "pong", "pid": os.getpid()})
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
    return chunks
