"""``FleetBackend``: the network execution backend (Backend protocol).

Drop-in for ``SerialBackend``/``MultiprocessBackend`` anywhere a backend
is accepted: ``parallelism`` is the number of connected persistent
workers (so ``plan_chunk_size`` plans exactly as it does for a local pool
of that size) and ``map`` ships the planned chunks over the coordinator's
sockets, reassembling results in task order.  Bit-identity for any fleet
size and cache state follows from the same two facts as every prior
backend: the chunk payloads are self-contained (streams pre-spawned
parent-side, ``StreamSlice`` recipes rebuild bit-identical generators)
and reassembly is by task index, never completion order.

What makes the fleet cheap to talk to is the **dehydration** step in
:meth:`FleetBackend.map`: each chunk's trial — the per-chunk-invariant
bulk of the payload — is content-addressed into the artifact cache and
replaced by a :class:`~repro.execution.fleet.cache.TrialRef`, so the wire
task is ``(start, TrialRef, StreamSlice)``.  Combined with the
host-or-reference hosting path (:meth:`host_eval_arrays` /
:meth:`host_network`, which the ``shared_eval_arrays``/``shared_network``
seam delegates to), a repeat request over the same spec pushes **zero**
artifact bytes — only hashes travel.

Unlike ``MultiprocessBackend``'s pool, the coordinator is deliberately
*persistent across requests* (that is the whole point of the cache), so
``pool_scope``'s enter/exit keeps it alive; call :meth:`close` (or use
:func:`local_fleet`) for deterministic teardown.

This module is numpy-free (enforced by ``tools/check_numpy_seam.py``).
"""

from __future__ import annotations

import os
import subprocess
import sys
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ...observability.recorder import active as _active_recorder
from .cache import iter_refs, publish_array, publish_network, publish_trial
from .server import FleetServer

__all__ = ["FLEET_ADDRESS_ENV", "FleetBackend", "local_fleet"]

#: Environment default for ``resolve_backend("fleet")`` / ``--backend fleet``
#: runs that do not pass an explicit ``--fleet HOST:PORT`` bind address.
FLEET_ADDRESS_ENV = "REPRO_FLEET_ADDRESS"


def default_fleet_address() -> str:
    """The coordinator bind address when none is configured explicitly."""
    return os.environ.get(FLEET_ADDRESS_ENV, "127.0.0.1:0")


class FleetBackend:
    """Schedule chunk tasks over a persistent socket-connected worker fleet.

    Parameters
    ----------
    address:
        ``HOST:PORT`` the coordinator binds (port 0 picks an ephemeral
        port; read the bound one back from :attr:`address`).  Workers dial
        it via ``spnn-repro worker --connect HOST:PORT``.
    min_workers:
        How many connected workers to wait for before scheduling; also the
        floor of :attr:`parallelism` during planning, so the chunk plan is
        stable even while stragglers are still dialing in.
    timeout:
        Per-request deadline — a request never hangs longer than this.
    connect_timeout:
        How long to wait for ``min_workers`` workers at first use.
    scheduling:
        Chunk-assignment policy forwarded to :class:`FleetServer`
        (``"weighted"``/``"fifo"``; ``None`` defers to
        ``REPRO_FLEET_SCHEDULING``, default weighted).
    """

    #: The fleet always crosses a process (and possibly machine) boundary,
    #: whatever its size — stream payloads should compress to recipes.
    remote = True

    def __init__(
        self,
        address: Optional[str] = None,
        min_workers: int = 1,
        timeout: float = 300.0,
        connect_timeout: float = 60.0,
        server: Optional[FleetServer] = None,
        scheduling: Optional[str] = None,
    ):
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        self._address = address if address is not None else default_fleet_address()
        self.min_workers = int(min_workers)
        self.timeout = float(timeout)
        self.connect_timeout = float(connect_timeout)
        self._server = server
        self._scheduling = scheduling
        self._ready = False

    # ------------------------------------------------------------------ #
    # coordinator lifetime
    # ------------------------------------------------------------------ #
    @property
    def server(self) -> FleetServer:
        """The coordinator (bound lazily on first use)."""
        if self._server is None:
            from .protocol import parse_address

            host, port = parse_address(self._address)
            self._server = FleetServer(host=host, port=port, scheduling=self._scheduling)
        return self._server

    @property
    def address(self) -> str:
        """The coordinator's bound ``HOST:PORT`` (resolves port 0)."""
        return self.server.address

    def wait_for_workers(self, count: Optional[int] = None, timeout: Optional[float] = None) -> None:
        self.server.wait_for_workers(
            count if count is not None else self.min_workers,
            timeout=timeout if timeout is not None else self.connect_timeout,
        )

    def _ensure_ready(self) -> None:
        if not self._ready:
            self.wait_for_workers()
            self._ready = True

    def close(self) -> None:
        """Shut the coordinator down (workers exit when the socket closes)."""
        if self._server is not None:
            self._server.close()

    # ``pool_scope`` enters backends around sweeps; the fleet is persistent
    # by design (cross-request cache), so scope entry/exit never tears the
    # coordinator down — ``close()`` does.
    def __enter__(self) -> "FleetBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        bound = self._server.address if self._server is not None else self._address
        return f"FleetBackend(address={bound!r}, min_workers={self.min_workers})"

    # ------------------------------------------------------------------ #
    # Backend protocol
    # ------------------------------------------------------------------ #
    @property
    def parallelism(self) -> int:
        self._ensure_ready()
        return max(self.min_workers, self.server.worker_count, 1)

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        from ..backends import gather_with_heartbeat

        self._ensure_ready()
        tasks = list(tasks)
        if not tasks:
            return []
        prepared, required = _dehydrate_tasks(tasks)
        request = self.server.enqueue(fn, prepared, required, timeout=self.timeout)
        return gather_with_heartbeat(
            "fleet", self.server.iter_results(request), len(prepared)
        )

    # ------------------------------------------------------------------ #
    # host-or-reference seam (what shared_eval_arrays/shared_network call)
    # ------------------------------------------------------------------ #
    @contextmanager
    def host_eval_arrays(self, *arrays) -> Iterator[Tuple[Any, ...]]:
        """Content-address the eval arrays; yield refs for the sweep's trials.

        The counterpart of shared-memory hosting: the blobs stay in the
        coordinator's store (pushed per worker link at most once) and the
        refs inside the trials weigh a digest each.  Nothing to unlink on
        exit — eviction is the store's LRU concern.
        """
        with _active_recorder().span("fleet/host_arrays", segments=len(arrays)) as span:
            refs = tuple(publish_array(array) for array in arrays)
            span.set("bytes", sum(ref.nbytes for ref in refs))
        yield refs

    @contextmanager
    def host_network(self, spnn) -> Iterator[Any]:
        """Content-address a compiled network's tuned parameters; yield its ref."""
        with _active_recorder().span("fleet/host_network") as span:
            ref = publish_network(spnn)
            span.set("digest", ref.digest)
        yield ref

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    @property
    def request_log(self) -> List[dict]:
        """Per-request transfer stats (see ``FleetServer.request_log``)."""
        return self.server.request_log


def _dehydrate_tasks(tasks: List[Any]) -> Tuple[List[Any], Tuple[str, ...]]:
    """Replace each chunk task's trial with a :class:`TrialRef`; collect deps.

    Chunk tasks across the engine share the ``(start, trial, streams)``
    layout; anything else passes through untouched (its nested refs are
    still collected so the coordinator pushes their blobs).  Identical
    trials dedupe to one digest — for a plain Monte Carlo run the whole
    request then ships one trial blob plus per-chunk seed recipes.
    """
    required: dict = {}  # insertion-ordered digest set
    prepared: List[Any] = []
    for task in tasks:
        if (
            isinstance(task, tuple)
            and len(task) == 3
            and isinstance(task[0], int)
            and callable(task[1])
        ):
            ref, deps = publish_trial(task[1])
            for digest in deps:
                required.setdefault(digest, None)
            required.setdefault(ref.digest, None)
            prepared.append((task[0], ref, task[2]))
        else:
            for nested in iter_refs(task):
                required.setdefault(nested.digest, None)
            prepared.append(task)
    return prepared, tuple(required)


@contextmanager
def local_fleet(
    workers: int = 2,
    address: str = "127.0.0.1:0",
    timeout: float = 300.0,
    connect_timeout: float = 60.0,
    via_cli: bool = False,
    scheduling: Optional[str] = None,
    worker_env: Optional[Sequence[Optional[dict]]] = None,
) -> Iterator[FleetBackend]:
    """A localhost fleet: coordinator plus ``workers`` worker processes.

    The one-liner behind the tests, the example and the CI smoke job::

        with local_fleet(workers=2) as fleet:
            sweep = yield_sweep(..., backend=fleet)

    ``via_cli=True`` launches real ``python -m repro.cli worker --connect``
    subprocesses (exercising the CLI entry point end to end); the default
    uses ``multiprocessing`` children, which start faster.  Teardown closes
    the coordinator — the workers see EOF and exit — then reaps the
    processes.

    ``scheduling`` forwards to the coordinator (weighted/fifo).
    ``worker_env`` optionally gives per-worker environment overlays (one
    dict or ``None`` per worker, applied in the child before it dials) —
    the scheduling tests and the skewed-fleet benchmark use it to slow a
    single worker via ``REPRO_SYNTH_SLEEP`` without touching the others.
    """
    if worker_env is not None and len(worker_env) != workers:
        raise ValueError(
            f"worker_env must list one overlay per worker "
            f"({workers}), got {len(worker_env)}"
        )
    backend = FleetBackend(
        address=address, min_workers=workers, timeout=timeout,
        connect_timeout=connect_timeout, scheduling=scheduling,
    )
    bound = backend.address  # bind before the workers dial
    processes: List[Any] = []
    try:
        if via_cli:
            for slot in range(workers):
                overlay = worker_env[slot] if worker_env is not None else None
                env = None
                if overlay:
                    env = dict(os.environ)
                    env.update({str(k): str(v) for k, v in overlay.items()})
                processes.append(
                    subprocess.Popen(
                        [sys.executable, "-m", "repro.cli", "worker", "--connect", bound],
                        stdout=subprocess.DEVNULL,
                        stderr=subprocess.DEVNULL,
                        env=env,
                    )
                )
        else:
            import multiprocessing

            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            context = multiprocessing.get_context(method)
            for slot in range(workers):
                overlay = worker_env[slot] if worker_env is not None else None
                process = context.Process(
                    target=_worker_entry, args=(bound, overlay), daemon=True
                )
                process.start()
                processes.append(process)
        backend.wait_for_workers(workers)
        yield backend
    finally:
        backend.close()
        for process in processes:
            try:
                if hasattr(process, "join"):
                    process.join(timeout=10)
                    if process.is_alive():  # pragma: no cover - stuck worker
                        process.terminate()
                        process.join(timeout=5)
                else:
                    process.wait(timeout=10)
            except Exception:  # pragma: no cover - teardown is best effort
                try:
                    process.kill()
                except Exception:
                    pass


def _worker_entry(address: str, env_overlay: Optional[dict] = None) -> None:
    """Module-level multiprocessing target for :func:`local_fleet` workers."""
    if env_overlay:
        os.environ.update({str(k): str(v) for k, v in env_overlay.items()})
    from .worker import run_worker

    run_worker(address)
