"""Spec-hash artifact cache: content-addressed payloads for the fleet.

The multiprocess backend ships heavy read-only payloads through POSIX
shared memory (:mod:`repro.execution.shared`); shared memory does not
cross machines, so the fleet replaces segment names with **spec hashes**:
every heavy artifact — an eval array, a compiled network's tuned
parameters, a whole trial dataclass — is content-addressed by a SHA-256
digest of its defining bytes and stored once per process in the
:class:`ArtifactStore`.  What travels in a chunk task is a tiny
:class:`ArrayRef` / :class:`NetworkRef` / :class:`TrialRef` (a digest,
pickled via ``__reduce__`` to stay within a few dozen bytes of the
``StreamSlice`` per-chunk floor); the coordinator pushes each referenced
blob to each worker exactly once, and a repeat request over the same spec
transfers *only the hashes* — the worker rehydrates from its store and
reuses the already-rebuilt network (skipping both retransfer and
recompilation).

Rehydration rides the existing resolution seam: refs expose the same
``.array`` / ``.spnn`` duck-type as :class:`~repro.execution.shared.
SharedArray` / :class:`~repro.execution.shared.SharedNetwork` (flagged via
``provides_array`` / ``provides_network``), so
:func:`~repro.execution.shared.resolve_array` and ``resolve_network`` —
and therefore every existing trial dataclass — work on refs unchanged.
Networks rebuild through
:meth:`~repro.mesh.svd_layer.PhotonicLinearLayer.from_tuned_parameters`,
the same bit-exact path ``SharedNetwork`` uses.

This module is numpy-free (enforced by ``tools/check_numpy_seam.py``):
digests read ``tobytes()``/``dtype``/``shape`` metadata only, and the
store holds whatever objects it is given without constructing arrays.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ArtifactRef",
    "ArrayRef",
    "NetworkRef",
    "TrialRef",
    "ArtifactStore",
    "artifact_store",
    "array_digest",
    "network_digest",
    "publish_array",
    "publish_network",
    "publish_trial",
    "iter_refs",
    "rehydrate_task",
]

#: Digest length kept in refs: 32 hex characters (128 bits) — far beyond
#: collision reach for a cache, and half the wire weight of full SHA-256.
DIGEST_HEX = 32

#: Default store budget per process; a long-lived worker evicts least
#: recently used blobs beyond it (override via ``ArtifactStore(max_bytes=)``).
DEFAULT_MAX_BYTES = 1 << 30


def _digest(parts: Sequence[bytes]) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part)
    return hasher.hexdigest()[:DIGEST_HEX]


def array_digest(array) -> str:
    """Spec hash of an ndarray: dtype + shape + raw bytes."""
    return _digest(
        [
            b"array\0",
            str(array.dtype.str).encode("ascii"),
            repr(tuple(array.shape)).encode("ascii"),
            array.tobytes(),
        ]
    )


def _array_nbytes(array) -> int:
    return int(getattr(array, "nbytes", 0))


class ArtifactStore:
    """Process-local, content-addressed, LRU-bounded blob store.

    Keys are spec-hash digests; values are the live artifact objects
    (ndarrays, network parameter states, trial dataclasses).  Content
    addressing makes ``put`` idempotent, so the coordinator, its local
    client and every worker can share one store per process without
    coordination.  Thread-safe: the coordinator's per-worker link threads
    read it concurrently.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES):
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: Dict[str, Tuple[Any, int]] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def put(self, digest: str, artifact: Any, nbytes: int = 0) -> None:
        with self._lock:
            previous = self._entries.pop(digest, None)
            if previous is not None:
                self._bytes -= previous[1]
            nbytes = int(nbytes)
            self._entries[digest] = (artifact, nbytes)
            self._bytes += nbytes
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                oldest = next(iter(self._entries))
                if oldest == digest:  # never evict the blob just inserted
                    break
                _, evicted = self._entries.pop(oldest)
                self._bytes -= evicted

    def get(self, digest: str) -> Any:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                raise KeyError(
                    f"artifact {digest!r} is not in this process's store "
                    f"({len(self._entries)} cached) — the coordinator must push it first"
                )
            self.hits += 1
            # Refresh recency: dict preserves insertion order, so re-inserting
            # moves the entry to the MRU end.
            self._entries[digest] = self._entries.pop(digest)
            return entry[0]

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def missing(self, digests: Sequence[str]) -> Tuple[str, ...]:
        with self._lock:
            return tuple(digest for digest in digests if digest not in self._entries)

    @property
    def entries(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
            }


_STORE = ArtifactStore()


def artifact_store() -> ArtifactStore:
    """The process-wide artifact store (coordinator and workers alike)."""
    return _STORE


# --------------------------------------------------------------------------- #
# refs — what actually travels inside a task payload
# --------------------------------------------------------------------------- #


class ArtifactRef:
    """Base class for content-addressed handles; ``digest`` is the identity."""

    __slots__ = ("digest",)

    def __init__(self, digest: str):
        self.digest = digest

    def __eq__(self, other: Any) -> bool:
        return type(other) is type(self) and other.digest == self.digest

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.digest))

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"{type(self).__name__}({self.digest!r})"


class ArrayRef(ArtifactRef):
    """Content-addressed handle to a hosted eval array.

    Duck-typed like :class:`~repro.execution.shared.SharedArray`
    (``provides_array`` + ``.array``), so ``resolve_array`` hands trial
    code the real ndarray in whatever process holds the blob.
    """

    __slots__ = ()
    provides_array = True

    @property
    def array(self):
        return _STORE.get(self.digest)

    @property
    def nbytes(self) -> int:
        return _array_nbytes(_STORE.get(self.digest))

    def __reduce__(self):
        return (ArrayRef, (self.digest,))


class NetworkRef(ArtifactRef):
    """Content-addressed handle to a compiled network's tuned parameters.

    The blob is the ``tuned_parameters`` state of every photonic layer
    (exactly what :class:`~repro.execution.shared.SharedNetwork` hosts);
    :attr:`spnn` rebuilds the network bit-identically via
    ``PhotonicLinearLayer.from_tuned_parameters`` and caches the rebuild
    per digest, so a repeat request skips recompilation entirely.
    """

    __slots__ = ()
    provides_network = True

    @property
    def spnn(self):
        cached = _REBUILT_NETWORKS.get(self.digest)
        if cached is None:
            cached = _rebuild_network(_STORE.get(self.digest))
            while len(_REBUILT_NETWORKS) >= _MAX_REBUILT:
                _REBUILT_NETWORKS.pop(next(iter(_REBUILT_NETWORKS)))
            _REBUILT_NETWORKS[self.digest] = cached
        return cached

    def __reduce__(self):
        return (NetworkRef, (self.digest,))


class TrialRef(ArtifactRef):
    """Content-addressed handle to a whole (picklable) trial dataclass.

    The trial is the per-chunk-invariant part of a task; deduplicating it
    through the store leaves the chunk payload as
    ``(start, TrialRef, StreamSlice)`` — a few hundred bytes regardless of
    the trial's contents.
    """

    __slots__ = ()

    def resolve(self):
        return _STORE.get(self.digest)

    def __reduce__(self):
        return (TrialRef, (self.digest,))


#: Worker-side cache of rebuilt networks, keyed by digest; bounded like the
#: shared-memory network cache so a persistent worker serving many specs
#: does not accumulate compiled meshes.
_REBUILT_NETWORKS: Dict[str, Any] = {}
_MAX_REBUILT = 4


def _rebuild_network(state: dict):
    from ...mesh.svd_layer import PhotonicLinearLayer
    from ...onn.spnn import SPNN

    layers = []
    weights = []
    for layer_state in state["layers"]:
        weights.append(layer_state["weight"])
        layers.append(
            PhotonicLinearLayer.from_tuned_parameters(
                layer_state["weight"],
                layer_state["scheme"],
                layer_state["gain"],
                layer_state["parameters"],
            )
        )
    spnn = SPNN(weights, architecture=state["architecture"], compile_hardware=False)
    spnn.photonic_layers = layers
    return spnn


# --------------------------------------------------------------------------- #
# publishing — owner side: register a blob, hand back its ref
# --------------------------------------------------------------------------- #


def publish_array(array) -> ArrayRef:
    """Register an eval array in the process store and return its ref."""
    digest = array_digest(array)
    if digest not in _STORE:
        _STORE.put(digest, array, nbytes=_array_nbytes(array))
    return ArrayRef(digest)


def network_digest(spnn) -> str:
    """Spec hash of a compiled network: architecture + per-layer tuning."""
    parts: List[bytes] = [b"network\0", repr(spnn.architecture).encode()]
    for layer in spnn.photonic_layers:
        parts.append(f"{layer.scheme}:{float(layer.gain)!r}".encode())
        parts.append(array_digest(layer.weight).encode("ascii"))
        for name, value in sorted(layer.tuned_parameters().items()):
            parts.append(name.encode())
            parts.append(array_digest(value).encode("ascii"))
    return _digest(parts)


def publish_network(spnn) -> NetworkRef:
    """Register a compiled network's tuned parameters; return its ref.

    The blob mirrors :class:`~repro.execution.shared.SharedNetwork`'s layer
    states with plain arrays instead of shared-memory handles.
    """
    digest = network_digest(spnn)
    if digest not in _STORE:
        layers = [
            {
                "weight": layer.weight,
                "scheme": layer.scheme,
                "gain": float(layer.gain),
                "parameters": dict(layer.tuned_parameters()),
            }
            for layer in spnn.photonic_layers
        ]
        nbytes = sum(
            _array_nbytes(state["weight"])
            + sum(_array_nbytes(value) for value in state["parameters"].values())
            for state in layers
        )
        _STORE.put(
            digest, {"architecture": spnn.architecture, "layers": layers}, nbytes=nbytes
        )
    ref = NetworkRef(digest)
    # The owner already holds the compiled instance — seed the rebuild cache
    # so local resolution never recompiles.
    if digest not in _REBUILT_NETWORKS:
        while len(_REBUILT_NETWORKS) >= _MAX_REBUILT:
            _REBUILT_NETWORKS.pop(next(iter(_REBUILT_NETWORKS)))
        _REBUILT_NETWORKS[digest] = spnn
    return ref


def publish_trial(trial) -> Tuple[TrialRef, Tuple[str, ...]]:
    """Register a trial dataclass by its pickled bytes; return (ref, deps).

    ``deps`` are the digests of every artifact ref nested inside the trial
    (eval arrays, the network) — the coordinator pushes those alongside the
    trial blob.  Pickled bytes are deterministic for the repo's trial
    dataclasses (module-level types, refs with fixed ``__reduce__``), so a
    repeat sweep over the same spec re-derives the same digest and hits the
    cache.
    """
    blob = pickle.dumps(trial, protocol=pickle.HIGHEST_PROTOCOL)
    digest = _digest([b"trial\0", blob])
    if digest not in _STORE:
        _STORE.put(digest, trial, nbytes=len(blob))
    return TrialRef(digest), tuple(ref.digest for ref in iter_refs(trial))


# --------------------------------------------------------------------------- #
# walking and rehydrating task payloads
# --------------------------------------------------------------------------- #


def iter_refs(value: Any, _depth: int = 0) -> Iterator[ArtifactRef]:
    """Every :class:`ArtifactRef` nested inside ``value`` (bounded walk).

    Walks tuples/lists/dict values and dataclass-style ``__dict__`` /
    ``__dataclass_fields__`` attributes — the shapes task payloads actually
    take — without touching array contents.
    """
    if _depth > 4:
        return
    if isinstance(value, ArtifactRef):
        yield value
        return
    if isinstance(value, (tuple, list)):
        for item in value:
            yield from iter_refs(item, _depth + 1)
        return
    if isinstance(value, dict):
        for item in value.values():
            yield from iter_refs(item, _depth + 1)
        return
    fields = getattr(value, "__dataclass_fields__", None)
    if fields is not None:
        for name in fields:
            yield from iter_refs(getattr(value, name, None), _depth + 1)


def rehydrate_task(task: Any) -> Any:
    """Resolve the :class:`TrialRef` level of a wire task back to objects.

    Only ``TrialRef`` needs eager resolution (the evaluator *calls* the
    trial); ``ArrayRef``/``NetworkRef`` nested inside the trial resolve
    lazily through ``resolve_array``/``resolve_network`` at evaluation
    time, exactly like shared-memory handles.
    """
    if isinstance(task, TrialRef):
        return task.resolve()
    if isinstance(task, tuple):
        return tuple(
            item.resolve() if isinstance(item, TrialRef) else item for item in task
        )
    return task


class TaskRehydrator:
    """Picklable evaluator wrapper resolving refs before evaluation.

    Installed worker-side *inside* any instrumentation wrapper, so a traced
    chunk's ``task_bytes`` measures the wire payload (refs), not the
    rehydrated one.
    """

    __slots__ = ("evaluator",)

    def __init__(self, evaluator: Callable[[Any], Any]):
        self.evaluator = evaluator

    def __call__(self, task: Any) -> Any:
        return self.evaluator(rehydrate_task(task))

    def __reduce__(self):  # pragma: no cover - workers never re-pickle it
        return (TaskRehydrator, (self.evaluator,))
