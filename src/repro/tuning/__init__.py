"""Auto-calibrated cost models for shape-aware kernel dispatch.

``repro.tuning`` measures, stores and consults per-machine cost tables
for the sweep-kernel registry:

* :mod:`repro.tuning.costmodel` — the :class:`CostTable` data model,
  machine fingerprinting, XDG cache paths (numpy-free).
* :mod:`repro.tuning.calibrate` — the one-shot ``spnn-repro calibrate``
  micro-benchmark that fits a table (seconds, cached per machine).
* :mod:`repro.tuning.policy` — the dispatch consultation
  (:func:`choose_kernel_name`), lazy calibration on first hinted
  dispatch, and the live-dispatch feedback loop.

Escape hatches: ``REPRO_AUTOTUNE=off`` disables consultation entirely;
``REPRO_SWEEP_KERNEL`` pins a kernel and always wins over the table.
"""

from .costmodel import (
    AUTOTUNE_ENV,
    CostTable,
    CostTableError,
    autotune_enabled,
    cache_dir,
    cache_path,
    fingerprint_digest,
    machine_fingerprint,
)
from .policy import (
    active_table,
    choose_kernel_name,
    ensure_table,
    install_table,
    reset_tuning_state,
    tuning_status,
)

__all__ = [
    "AUTOTUNE_ENV",
    "CostTable",
    "CostTableError",
    "autotune_enabled",
    "cache_dir",
    "cache_path",
    "fingerprint_digest",
    "machine_fingerprint",
    "active_table",
    "choose_kernel_name",
    "ensure_table",
    "install_table",
    "reset_tuning_state",
    "tuning_status",
    "run_calibration",
]


def run_calibration(*args, **kwargs):
    """Lazy re-export of :func:`repro.tuning.calibrate.run_calibration`.

    The calibration pulls in the mesh/scipy stack; importing it lazily
    keeps ``repro.tuning`` importable from the numpy-free dispatch path.
    """
    from .calibrate import run_calibration as _run

    return _run(*args, **kwargs)
