"""Per-machine sweep-kernel cost tables: the data model behind autotuning.

A :class:`CostTable` holds, per sweep kernel, the measured cost of the
column sweep over a small calibration grid of ``(scheme, n, batch)``
points (:mod:`repro.tuning.calibrate` produces them) plus an *observed*
layer fed online from live dispatch records with exponential decay.
:meth:`CostTable.predict` interpolates between grid points, so the
dispatch policy (:mod:`repro.tuning.policy`) can compare kernels at
shapes the calibration never timed directly.

Tables are JSON on disk, cached under ``$XDG_CACHE_HOME/spnn-repro``
(``~/.cache/spnn-repro`` by default) and keyed by a machine/backend
fingerprint — platform, CPU budget, python, and which kernels were
available when the table was fitted.  A table whose stored fingerprint no
longer matches the running machine is *stale* and must not silently steer
dispatch; loading raises :class:`CostTableError` and the policy falls
back to the static preference order with a loud warning.

This module is numpy-free (enforced by ``tools/check_numpy_seam.py``):
cost tables are consulted from the numpy-free kernel registry, so they
are plain dicts, floats and JSON — never arrays.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AUTOTUNE_ENV",
    "SCHEMA_VERSION",
    "CostTableError",
    "CostTable",
    "autotune_enabled",
    "machine_fingerprint",
    "fingerprint_digest",
    "cache_dir",
    "cache_path",
]

#: Escape hatch: ``REPRO_AUTOTUNE=off`` (or 0/false/no) disables the
#: cost-model consultation entirely — dispatch reverts to the static
#: preference order and no calibration is ever triggered.
AUTOTUNE_ENV = "REPRO_AUTOTUNE"

#: Bump when the on-disk payload layout changes; older files are stale.
SCHEMA_VERSION = 1

#: Exponential-decay weight of a fresh observation folded into the
#: observed layer: ``new = DECAY * sample + (1 - DECAY) * old``.
OBSERVED_DECAY = 0.3


class CostTableError(RuntimeError):
    """A cost-table cache file is corrupt, stale, or malformed."""


def autotune_enabled() -> bool:
    """Whether the shape-aware dispatch layer may consult cost tables."""
    return os.environ.get(AUTOTUNE_ENV, "").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


def machine_fingerprint(kernels: Tuple[str, ...] = ()) -> Dict[str, object]:
    """The identity a calibration is valid for.

    Coarse on purpose: measured kernel costs move with the machine class,
    the interpreter line and the set of importable kernels — not with the
    OS patch level.  ``kernels`` should be the *available* kernel names at
    calibration time: installing numba later must invalidate a table that
    has no numba column rather than silently never choosing it.
    """
    return {
        "machine": platform.machine(),
        "system": platform.system(),
        "python": ".".join(platform.python_version_tuple()[:2]),
        "cpu_count": os.cpu_count() or 1,
        "kernels": sorted(kernels),
    }


def fingerprint_digest(fingerprint: Dict[str, object]) -> str:
    """Short stable digest of a fingerprint (the cache file name key)."""
    canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def cache_dir() -> Path:
    """The per-user autotune cache directory (XDG convention)."""
    base = os.environ.get("XDG_CACHE_HOME", "").strip()
    root = Path(base) if base else Path.home() / ".cache"
    return root / "spnn-repro"


def cache_path(fingerprint: Dict[str, object]) -> Path:
    """Where the cost table for ``fingerprint`` lives on disk."""
    return cache_dir() / f"cost_table_{fingerprint_digest(fingerprint)}.json"


def _interp1(points: List[Tuple[float, float]], x: float) -> float:
    """Piecewise-linear interpolation over sorted ``(x, y)`` points.

    Outside the sampled range the nearest *segment* extrapolates linearly
    — sweep cost keeps growing past the largest calibrated batch, so
    clamping would systematically undersell big shapes.  A single point
    is treated as flat.
    """
    if len(points) == 1:
        return points[0][1]
    if x <= points[0][0]:
        (x0, y0), (x1, y1) = points[0], points[1]
    elif x >= points[-1][0]:
        (x0, y0), (x1, y1) = points[-2], points[-1]
    else:
        for index in range(1, len(points)):
            if x <= points[index][0]:
                (x0, y0), (x1, y1) = points[index - 1], points[index]
                break
    if x1 == x0:
        return y0
    fraction = (x - x0) / (x1 - x0)
    return max(0.0, y0 + fraction * (y1 - y0))


class CostTable:
    """Measured per-kernel sweep costs with grid interpolation.

    Two layers, consulted in order:

    * **observed** — exact ``(kernel, n, batch, columns)`` shapes fed from
      live dispatch records, exponentially decayed (recent runs dominate);
      a shape the workload actually executes beats any interpolation.
    * **grid** — the calibration micro-benchmark's ``(scheme, n, batch)``
      lattice, normalized to seconds *per column* so schemes of different
      depth share one scale; predictions interpolate bilinearly over
      ``(n, batch)`` (scheme-matched points preferred when present).
    """

    def __init__(self, fingerprint: Optional[Dict[str, object]] = None, backend: str = "numpy"):
        self.fingerprint: Dict[str, object] = dict(fingerprint or {})
        self.backend = backend
        #: kernel -> {(scheme, n, batch): {"seconds": s, "columns": c}}
        self.grid: Dict[str, Dict[Tuple[str, int, int], Dict[str, float]]] = {}
        #: kernel -> {(n, batch, columns): seconds-per-column EWMA}
        self.observed: Dict[str, Dict[Tuple[int, int, int], float]] = {}
        #: Bumped on every mutation so decision caches can invalidate.
        self.generation = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_grid(
        self, kernel: str, scheme: str, n: int, batch: int, columns: int, seconds: float
    ) -> None:
        """Store one calibration measurement (seconds per sweep call)."""
        self.grid.setdefault(kernel, {})[(scheme, int(n), int(batch))] = {
            "seconds": float(seconds),
            "columns": float(max(1, columns)),
        }
        self.generation += 1

    def observe(
        self,
        kernel: str,
        n: int,
        batch: int,
        columns: int,
        seconds: float,
        decay: float = OBSERVED_DECAY,
    ) -> None:
        """Fold one live dispatch (seconds per call) into the observed layer."""
        per_column = float(seconds) / float(max(1, columns))
        shapes = self.observed.setdefault(kernel, {})
        key = (int(n), int(batch), int(columns))
        previous = shapes.get(key)
        shapes[key] = per_column if previous is None else decay * per_column + (1.0 - decay) * previous
        self.generation += 1

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def kernels(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.grid) | set(self.observed)))

    def predict(
        self,
        kernel: str,
        n: int,
        batch: int,
        columns: int,
        scheme: Optional[str] = None,
    ) -> Optional[float]:
        """Estimated seconds for one sweep call, or ``None`` when unknown."""
        columns = max(1, int(columns))
        observed = self.observed.get(kernel, {}).get((int(n), int(batch), columns))
        if observed is not None:
            return observed * columns
        points = self.grid.get(kernel)
        if not points:
            return None
        if scheme is not None and any(key[0] == scheme for key in points):
            points = {key: value for key, value in points.items() if key[0] == scheme}
        # Group per-column seconds by n, interpolate along batch within
        # each n row, then along n across the row results.
        rows: Dict[int, List[Tuple[float, float]]] = {}
        for (_, grid_n, grid_batch), value in points.items():
            rows.setdefault(grid_n, []).append(
                (float(grid_batch), value["seconds"] / value["columns"])
            )
        row_points: List[Tuple[float, float]] = []
        for grid_n in sorted(rows):
            samples = sorted(rows[grid_n])
            merged: List[Tuple[float, float]] = []
            for x, y in samples:  # duplicate batch points (schemes) average
                if merged and merged[-1][0] == x:
                    merged[-1] = (x, 0.5 * (merged[-1][1] + y))
                else:
                    merged.append((x, y))
            row_points.append((float(grid_n), _interp1(merged, float(batch))))
        return _interp1(row_points, float(n)) * columns

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "backend": self.backend,
            "fingerprint": self.fingerprint,
            "grid": [
                {
                    "kernel": kernel,
                    "scheme": scheme,
                    "n": n,
                    "batch": batch,
                    "columns": value["columns"],
                    "seconds": value["seconds"],
                }
                for kernel, points in sorted(self.grid.items())
                for (scheme, n, batch), value in sorted(points.items())
            ],
            "observed": [
                {
                    "kernel": kernel,
                    "n": n,
                    "batch": batch,
                    "columns": columns,
                    "seconds_per_column": seconds,
                }
                for kernel, shapes in sorted(self.observed.items())
                for (n, batch, columns), seconds in sorted(shapes.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: object) -> "CostTable":
        if not isinstance(payload, dict):
            raise CostTableError("cost-table payload is not a JSON object")
        if payload.get("schema") != SCHEMA_VERSION:
            raise CostTableError(
                f"cost-table schema {payload.get('schema')!r} does not match "
                f"{SCHEMA_VERSION} (stale cache file)"
            )
        table = cls(
            fingerprint=payload.get("fingerprint") or {},
            backend=str(payload.get("backend", "numpy")),
        )
        try:
            for entry in payload.get("grid", ()):
                table.record_grid(
                    str(entry["kernel"]),
                    str(entry["scheme"]),
                    int(entry["n"]),
                    int(entry["batch"]),
                    int(entry["columns"]),
                    float(entry["seconds"]),
                )
            for entry in payload.get("observed", ()):
                table.observed.setdefault(str(entry["kernel"]), {})[
                    (int(entry["n"]), int(entry["batch"]), int(entry["columns"]))
                ] = float(entry["seconds_per_column"])
        except (KeyError, TypeError, ValueError) as error:
            raise CostTableError(f"malformed cost-table entry: {error}") from error
        if not table.grid:
            raise CostTableError("cost table holds no calibration grid points")
        table.generation = 0
        return table

    def save(self, path: Path) -> Path:
        """Write the table atomically (temp file + rename) to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = path.with_suffix(f".tmp{os.getpid()}")
        staging.write_text(json.dumps(self.to_payload(), indent=2) + "\n")
        os.replace(staging, path)
        return path

    @classmethod
    def load(cls, path: Path, expected_fingerprint: Optional[Dict[str, object]] = None) -> "CostTable":
        """Read and validate a table; raise :class:`CostTableError` loudly.

        ``expected_fingerprint`` (the running machine's) rejects tables
        calibrated on a different machine/interpreter/kernel set — using
        them would steer dispatch with numbers measured somewhere else.
        """
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise CostTableError(f"unreadable cost table {path}: {error}") from error
        table = cls.from_payload(payload)
        if expected_fingerprint is not None and table.fingerprint != expected_fingerprint:
            raise CostTableError(
                f"cost table {path} was calibrated for a different machine/"
                f"environment (stale fingerprint); re-run 'spnn-repro calibrate'"
            )
        return table

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        points = sum(len(v) for v in self.grid.values())
        observed = sum(len(v) for v in self.observed.values())
        return (
            f"CostTable(backend={self.backend!r}, kernels={list(self.kernels())}, "
            f"grid_points={points}, observed={observed})"
        )
