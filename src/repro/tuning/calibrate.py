"""One-shot micro-benchmark that fits the per-machine sweep cost table.

``run_calibration`` times every available host-capable sweep kernel over
a small ``(scheme, n, batch)`` grid — real :class:`~repro.mesh.mesh.
MZIMesh` column programs with real perturbation batches, the exact
inputs ``apply_column_sweep`` sees in production — and records the
measurements into a :class:`~repro.tuning.costmodel.CostTable`.

The grid is deliberately tiny (seconds total, run once per machine):
the dispatch policy interpolates between points and the observed layer
sharpens them online, so the calibration only has to capture the broad
crossover structure (fused wins growing with ``batch × n²``, looped
near-parity at single-matrix shapes), not the exact surface.

Budget discipline: cheap points get best-of-``repeats`` timing; a point
whose first measurement is already slow (> ``_ONE_SHOT_SECONDS``) keeps
that single sample — at that cost scheduler noise is relatively small
and extra repeats would triple the calibration price for nothing.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Sequence, Tuple

from ..arrays.namespace import HOST_BACKEND
from ..arrays.sweep import apply_column_sweep, available_sweep_kernels, get_sweep_kernel
from ..observability.dispatch import use_collector
from ..utils.rng import spawn_rngs
from ..variation.models import UncertaintyModel
from .costmodel import CostTable, machine_fingerprint

__all__ = ["run_calibration", "DEFAULT_NS", "DEFAULT_BATCHES", "DEFAULT_SCHEMES"]

DEFAULT_NS: Tuple[int, ...] = (4, 8, 16, 32)
DEFAULT_BATCHES: Tuple[int, ...] = (1, 16, 128, 1024)
DEFAULT_SCHEMES: Tuple[str, ...] = ("clements", "reck")

#: A measurement at least this long is trusted from a single sample.
_ONE_SHOT_SECONDS = 0.05


def _grid_inputs(scheme: str, n: int, max_batch: int):
    """Build one calibration point's sweep inputs (sized for ``max_batch``)."""
    from scipy.stats import unitary_group

    from ..mesh.mesh import MZIMesh
    from ..variation.sampler import sample_mesh_perturbation_batch

    mesh = MZIMesh.from_unitary(
        unitary_group.rvs(n, random_state=n), scheme=scheme
    )
    perturbation = sample_mesh_perturbation_batch(
        mesh, UncertaintyModel.both(0.01), spawn_rngs(17, max_batch)
    )
    backend = HOST_BACKEND
    components, _ = mesh._blocks_and_phases(perturbation, backend)
    program = mesh.column_program(backend)
    sorted_components = tuple(c[..., program.perm] for c in components)
    xp = backend.xp
    eye = xp.eye(n, dtype=xp.complex128)
    return program, sorted_components, eye


def _time_point(kernel_name: str, program, sorted_components, eye, batch: int, repeats: int) -> float:
    backend = HOST_BACKEND
    xp = backend.xp
    components = tuple(c[:batch] for c in sorted_components)
    work = backend.empty((batch, program.n, program.n), dtype=xp.complex128)
    best: Optional[float] = None
    for _ in range(max(1, repeats)):
        work[...] = eye
        start = perf_counter()
        apply_column_sweep(backend, work, components, program, kernel=kernel_name)
        elapsed = perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        if elapsed > _ONE_SHOT_SECONDS:
            break
    return best if best is not None else 0.0


def run_calibration(
    ns: Sequence[int] = DEFAULT_NS,
    batches: Sequence[int] = DEFAULT_BATCHES,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    kernels: Optional[Sequence[str]] = None,
    repeats: int = 3,
    progress=None,
) -> CostTable:
    """Measure the host-kernel cost grid and return the fitted table.

    ``kernels`` defaults to every registered kernel that is available and
    supports the host backend.  ``progress`` (callable taking one string)
    receives a line per grid point for the CLI.  Runs with the dispatch
    collector shadowed to ``None`` so calibration noise never pollutes an
    active trace's kernel metrics.
    """
    backend = HOST_BACKEND
    names = tuple(kernels) if kernels is not None else available_sweep_kernels(backend)
    names = tuple(n for n in names if get_sweep_kernel(n).supports(backend))
    if not names:
        raise RuntimeError("no sweep kernels available to calibrate")
    table = CostTable(
        fingerprint=machine_fingerprint(tuple(available_sweep_kernels())),
        backend=backend.name,
    )
    with use_collector(None):
        for scheme in schemes:
            for n in ns:
                max_batch = max(batches)
                program, sorted_components, eye = _grid_inputs(scheme, n, max_batch)
                for batch in sorted(batches):
                    for name in names:
                        seconds = _time_point(
                            name, program, sorted_components, eye, batch, repeats
                        )
                        table.record_grid(
                            name, scheme, n, batch, program.num_columns, seconds
                        )
                        if progress is not None:
                            progress(
                                f"{name:>10s}  {scheme:<8s} n={n:<3d} batch={batch:<5d} "
                                f"{seconds * 1e6:10.1f} us"
                            )
    table.generation = 0
    return table
