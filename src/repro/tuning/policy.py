"""Shape-aware kernel choice: the consultation side of autotuning.

:func:`choose_kernel_name` is what the sweep-kernel registry calls (via
:func:`repro.arrays.sweep.select_sweep_kernel`) when it has a shape hint
and more than one available kernel.  It loads — or, exactly once per
machine, lazily builds — the per-machine :class:`~repro.tuning.costmodel.
CostTable` and returns the kernel the table predicts cheapest, or
``None`` to keep the static preference order (autotune off, non-host
backend, no usable table, or no prediction advantage).

Failure discipline: a corrupt or stale cache file must *never* silently
steer dispatch and must *never* crash the sweep.  It warns loudly
(``RuntimeWarning``), memoizes the failure, and the process runs on the
static order until ``spnn-repro calibrate`` refreshes the file.

Live refinement: whenever a table is active, a feedback sink installed at
the dispatch-metrics seam (:func:`repro.observability.dispatch.
set_feedback`) folds every timed ``apply_column_sweep`` call back into
the table's observed layer with exponential decay, so real workload
shapes sharpen the calibration-grid estimates as the process runs.

Numpy-free (enforced by ``tools/check_numpy_seam.py``): everything here
is dict lookups and floats; the measurement side lives in
:mod:`repro.tuning.calibrate`.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Dict, Optional, Sequence, Tuple

from .costmodel import (
    CostTable,
    CostTableError,
    autotune_enabled,
    cache_path,
    machine_fingerprint,
)

__all__ = [
    "choose_kernel_name",
    "ensure_table",
    "install_table",
    "active_table",
    "reset_tuning_state",
    "tuning_status",
]

#: An in-progress calibration elsewhere (another process) is assumed live
#: for this long; a lock file older than this is stale and taken over.
_LOCK_TIMEOUT_SECONDS = 300.0

#: Decision-memo size cap; shapes repeat heavily so this rarely evicts.
_MEMO_CAP = 4096

# Per-backend memo: backend name -> CostTable, or None once a load/build
# attempt failed (static fallback for the rest of the process).
_TABLES: Dict[str, Optional[CostTable]] = {}
_DECISIONS: Dict[Tuple[str, int, Tuple[int, int, int, Optional[str]], Tuple[str, ...]], Optional[str]] = {}
_FEEDBACK_INSTALLED = False
_CALIBRATING = False


def reset_tuning_state() -> None:
    """Forget memoized tables/decisions (tests and re-calibration)."""
    global _FEEDBACK_INSTALLED
    _TABLES.clear()
    _DECISIONS.clear()
    if _FEEDBACK_INSTALLED:
        from ..observability import dispatch

        dispatch.set_feedback(None)
        _FEEDBACK_INSTALLED = False


def _host_fingerprint() -> Dict[str, object]:
    from ..arrays.sweep import available_sweep_kernels

    return machine_fingerprint(tuple(available_sweep_kernels()))


def _install_feedback() -> None:
    """Route live dispatch records into active tables' observed layers."""
    global _FEEDBACK_INSTALLED
    if _FEEDBACK_INSTALLED:
        return
    from ..observability import dispatch

    def _sink(backend: str, kernel: str, n: int, batch: int, columns: int, seconds: float) -> None:
        table = _TABLES.get(backend)
        if table is not None:
            table.observe(kernel, n, batch, columns, seconds)

    dispatch.set_feedback(_sink)
    _FEEDBACK_INSTALLED = True


def install_table(table: CostTable, backend_name: str = "numpy") -> None:
    """Activate ``table`` for ``backend_name`` dispatch (tests, benchmarks,
    and the CLI after an explicit calibration)."""
    _TABLES[backend_name] = table
    _DECISIONS.clear()
    _install_feedback()


def active_table(backend_name: str = "numpy") -> Optional[CostTable]:
    """The table currently steering ``backend_name`` dispatch, if any."""
    return _TABLES.get(backend_name)


def _lazy_calibrate(path) -> Optional[CostTable]:
    """Build the table on first dispatch, guarded against stampedes.

    An ``O_EXCL`` lock file serializes concurrent first-dispatchers
    (multiprocess workers all hitting a cold cache): losers skip to the
    static order for this process instead of calibrating N times.
    """
    lock = path.with_suffix(".lock")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        try:
            if time.time() - lock.stat().st_mtime < _LOCK_TIMEOUT_SECONDS:
                return None  # someone else is calibrating; stay static
            fd = os.open(lock, os.O_WRONLY)  # stale lock: take over
        except OSError:
            return None
    except OSError:
        return None  # unwritable cache dir: stay static, no warning spam
    global _CALIBRATING
    try:
        os.close(fd)
        from .calibrate import run_calibration

        _CALIBRATING = True
        table = run_calibration()
        table.save(path)
        return table
    except Exception as error:  # noqa: BLE001 - never crash dispatch
        warnings.warn(
            f"autotune calibration failed ({error}); using static kernel order",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    finally:
        _CALIBRATING = False
        try:
            os.unlink(lock)
        except OSError:
            pass


def ensure_table(backend_name: str = "numpy") -> Optional[CostTable]:
    """Load (or lazily build) the cost table for ``backend_name``.

    Memoized per process — including the *failed* outcome, so a corrupt
    cache warns once and the process stays on the static order rather
    than re-parsing the bad file on every dispatch.
    """
    global _CALIBRATING
    if backend_name in _TABLES:
        return _TABLES[backend_name]
    if _CALIBRATING:
        # A sweep dispatched *by* the calibration itself (mesh builds
        # verify via matrix()) must not recurse into another calibration;
        # stay static, unmemoized, until the outer run finishes.
        return None
    fingerprint = _host_fingerprint()
    path = cache_path(fingerprint)
    table: Optional[CostTable] = None
    if path.exists():
        try:
            table = CostTable.load(path, expected_fingerprint=fingerprint)
        except CostTableError as error:
            warnings.warn(
                f"ignoring unusable autotune cache: {error}; "
                f"using static kernel order (re-run 'spnn-repro calibrate')",
                RuntimeWarning,
                stacklevel=3,
            )
            table = None
    else:
        table = _lazy_calibrate(path)
    _TABLES[backend_name] = table
    if table is not None:
        _install_feedback()
    return table


def choose_kernel_name(backend, shape, candidates: Sequence[str]) -> Optional[str]:
    """Pick the predicted-cheapest kernel for ``shape``, or ``None``.

    ``None`` means "no opinion — keep the static preference order": that
    is the answer whenever autotune is off, the backend is not the host
    (device kernels are not what we calibrated), no table is usable, or
    the table can't separate the candidates.  Ties keep static order
    (strict ``<`` comparison), and a candidate the table has never seen
    is never chosen over one it has.
    """
    if len(candidates) < 2 or not autotune_enabled():
        return None
    if not getattr(backend, "is_host", False):
        return None
    table = ensure_table(backend.name)
    if table is None:
        return None
    key = (
        backend.name,
        table.generation,
        (int(shape.n), int(shape.batch), int(shape.columns), shape.scheme),
        tuple(candidates),
    )
    if key in _DECISIONS:
        return _DECISIONS[key]
    best_name: Optional[str] = None
    best_cost: Optional[float] = None
    for name in candidates:
        cost = table.predict(name, shape.n, shape.batch, shape.columns, scheme=shape.scheme)
        if cost is None:
            continue
        if best_cost is None or cost < best_cost:
            best_name, best_cost = name, cost
    if best_name == candidates[0]:
        best_name = None  # static order already picks it; no override
    if len(_DECISIONS) >= _MEMO_CAP:
        _DECISIONS.clear()
    _DECISIONS[key] = best_name
    return best_name


def tuning_status(backend_name: str = "numpy") -> Dict[str, object]:
    """Diagnostics for ``spnn-repro info``: cache state without side
    effects (never triggers a lazy calibration)."""
    fingerprint = _host_fingerprint()
    path = cache_path(fingerprint)
    status: Dict[str, object] = {
        "enabled": autotune_enabled(),
        "cache_path": str(path),
        "cached": path.exists(),
        "loaded": _TABLES.get(backend_name) is not None,
        "grid_points": 0,
        "observed_shapes": 0,
    }
    table = _TABLES.get(backend_name)
    if table is None and path.exists():
        try:
            table = CostTable.load(path, expected_fingerprint=fingerprint)
        except CostTableError:
            status["cached"] = "stale"
            table = None
    if table is not None:
        status["grid_points"] = sum(len(v) for v in table.grid.values())
        status["observed_shapes"] = sum(len(v) for v in table.observed.values())
        status["kernels"] = list(table.kernels())
    return status
