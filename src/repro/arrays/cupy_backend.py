"""CuPy array backend: the GPU namespace behind ``--device gpu``.

CuPy is an *optional* dependency — this module imports it lazily and the
backend reports itself unavailable (rather than raising at import time)
when CuPy or a CUDA device is missing, so CPU-only machines and CI keep
working untouched.  The strict mock backend (:mod:`repro.arrays.mock`)
stands in for it there.

**Tolerance contract.**  Randomness is drawn on the host from the same
NumPy child streams as every other backend (see
:meth:`~repro.arrays.namespace.ArrayBackend.standard_normal_rows`), so a
GPU run consumes identical sampled values; only the floating-point
reduction order of the device linear algebra differs from the reference
path.  GPU results therefore agree with the NumPy path to ``allclose``
tolerance at a fixed seed — asserted by the conformance suite whenever
CuPy is importable — rather than the bit-identity the NumPy and mock
backends guarantee.
"""

from __future__ import annotations

import numpy as np

from .namespace import ArrayBackend

__all__ = ["CupyArrayBackend"]

try:  # pragma: no cover - exercised only on machines with CuPy
    import cupy as _cupy
except Exception:  # ImportError, or a broken CUDA installation
    _cupy = None


def _device_usable() -> bool:
    if _cupy is None:
        return False
    try:  # pragma: no cover - requires a CUDA device
        return int(_cupy.cuda.runtime.getDeviceCount()) > 0
    except Exception:
        return False


class CupyArrayBackend(ArrayBackend):
    """GPU backend binding the kernel namespace ``xp`` to CuPy."""

    name = "cupy"
    is_host = False

    @classmethod
    def available(cls) -> bool:
        return _device_usable()

    @property
    def xp(self):  # pragma: no cover - requires a CUDA device
        return _cupy

    def owns(self, value: object) -> bool:  # pragma: no cover - requires CUDA
        return _cupy is not None and isinstance(value, _cupy.ndarray)

    def asarray(self, value, dtype=None):  # pragma: no cover - requires CUDA
        return _cupy.asarray(value, dtype=dtype)

    def to_host(self, value) -> np.ndarray:  # pragma: no cover - requires CUDA
        return _cupy.asnumpy(value)
